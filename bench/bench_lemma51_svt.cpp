// Lemma 5.1 / Claim 2 (Section 5, Appendix A): empirical demonstration
// that the binary SVT and the vanilla SVT are not ε-differentially private
// with a k-independent noise scale.
//
// For each k, the table reports the realized privacy loss
// ln(Pr[D1→E]/Pr[D3→E]) of the counterexample event against the 2ε bound
// that Claims 1/2 would imply (ε = 1, λ = 2/ε = 2).  The loss grows
// linearly in k and crosses the bound, refuting the claims; Monte-Carlo
// estimates over the actual algorithm corroborate the quadrature for the
// k where the event probability is large enough to sample.
#include <cmath>
#include <cstdio>
#include <limits>

#include "dp/rng.h"
#include "eval/table.h"
#include "svt/privacy_loss.h"

int main() {
  using privtree::FormatCell;
  std::printf(
      "Reproduction of Lemma 5.1 and the Claim-2 refutation (PrivTree,\n"
      "SIGMOD 2016).  epsilon = 1, lambda = 2 (the scale Claims 1/2 say\n"
      "suffices); an epsilon-DP algorithm would keep the loss <= 2.\n");

  privtree::TablePrinter binary(
      "Binary SVT (Algorithm 3) privacy loss on the Lemma 5.1 event",
      "k", {"loss(quadrature)", "loss(paper bound k/2l)", "2eps bound",
            "loss(monte-carlo)"});
  privtree::Rng rng(0x571);
  const double lambda = 2.0;
  for (int k : {2, 4, 8, 16, 32, 64}) {
    const double loss = privtree::BinarySvtLossLemma51(k, lambda);
    const double monte_carlo =
        (k <= 8) ? privtree::BinarySvtLossLemma51MonteCarlo(k, lambda,
                                                            200000, rng)
                 : std::numeric_limits<double>::quiet_NaN();
    binary.AddRow(std::to_string(k),
                  {loss, static_cast<double>(k) / (2.0 * lambda), 2.0,
                   monte_carlo});
  }
  binary.Print();

  privtree::TablePrinter vanilla(
      "Vanilla SVT (Algorithm 4) privacy loss on the Claim-2 event",
      "k", {"loss(quadrature)", "paper closed form k/l", "2eps bound"});
  for (int k : {2, 4, 8, 16, 32, 64}) {
    vanilla.AddRow(std::to_string(k),
                   {privtree::VanillaSvtLossClaim2(k, lambda),
                    static_cast<double>(k) / lambda, 2.0});
  }
  vanilla.Print();

  std::printf(
      "\nReading: both losses exceed the 2*eps bound once k > 8, so\n"
      "Claims 1 and 2 are false; the noise scale must grow with k.\n");
  return 0;
}
