// Figure 10 (Appendix C): sensitivity of AG to its grid granularities —
// both levels' cell counts are scaled by r ∈ {1/9, 1/3, 1, 3, 9}.
// 2-d datasets only (AG's heuristics are 2-d-specific).
//
// Expected shape: r = 1 gives the best overall results.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "hist/ag.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<double> scales = {1.0 / 9.0, 1.0 / 3.0, 1.0, 3.0, 9.0};
  const std::vector<std::string> columns = {"r=1/9", "r=1/3", "r=1", "r=3",
                                            "r=9"};
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 10: " + name + " - " + BandNames()[band] +
                           " queries, AG grid-scale sweep",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      for (double r : scales) {
        row.push_back(SweepError(
            data, band, reps,
            0xF1A ^ static_cast<std::uint64_t>(r * 100 + epsilon * 1e4),
            [&, r](Rng& rng) -> AnswerFn {
              AdaptiveGridOptions options;
              options.cell_scale = r;
              auto grid = std::make_shared<AdaptiveGrid>(
                  data.points, data.domain, epsilon, options, rng);
              return [grid](const Box& q) { return grid->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 10 (PrivTree, SIGMOD 2016): impact of the\n"
      "grid granularity scale r on AG (2-d datasets only).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
