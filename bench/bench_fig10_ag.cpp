// Figure 10 (Appendix C): sensitivity of AG to its grid granularities —
// both levels' cell counts are scaled by r ∈ {1/9, 1/3, 1, 3, 9}.
// 2-d datasets only (AG's heuristics are 2-d-specific).
//
// Expected shape: r = 1 gives the best overall results.
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<double> scales = {1.0 / 9.0, 1.0 / 3.0, 1.0, 3.0, 9.0};
  const std::vector<std::string> columns = {"r=1/9", "r=1/3", "r=1", "r=3",
                                            "r=9"};
  std::vector<std::vector<std::vector<double>>> errors(
      BandNames().size(),
      std::vector<std::vector<double>>(PaperEpsilons().size()));
  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    const double epsilon = PaperEpsilons()[e];
    for (double r : scales) {
      const MethodSpec spec{"ag", "AG", {{"cell_scale", OptionValue(r)}}};
      const std::vector<double> band_errors = RegistryBandErrors(
          data, spec, epsilon, reps,
          0xF1A ^ static_cast<std::uint64_t>(r * 100 + epsilon * 1e4));
      for (std::size_t band = 0; band < band_errors.size(); ++band) {
        errors[band][e].push_back(band_errors[band]);
      }
    }
  }
  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Figure 10: " + name + " - " + BandNames()[band] +
                           " queries, AG grid-scale sweep",
                       "epsilon", columns);
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      table.AddRow(FormatCell(PaperEpsilons()[e]), errors[band][e]);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Reproduction of Figure 10 (PrivTree, SIGMOD 2016): impact of the\n"
      "grid granularity scale r on AG (2-d datasets only).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
