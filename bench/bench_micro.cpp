// Google-benchmark microbenchmarks of the library's hot paths: Laplace
// sampling, Morton counting, PrivTree construction, range queries, PST
// construction.  These are engineering benchmarks (not paper artifacts)
// used to keep the reproduction fast enough for the paper-scale sweeps.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/privtree.h"
#include "core/privtree_params.h"
#include "data/seq_gen.h"
#include "data/spatial_gen.h"
#include "dp/distributions.h"
#include "dp/rng.h"
#include "eval/workload.h"
#include "seq/pst_privtree.h"
#include "spatial/morton_index.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

void BM_SampleLaplace(benchmark::State& state) {
  Rng rng(1);
  double sink = 0.0;
  for (auto _ : state) {
    sink += SampleLaplace(rng, 2.0);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SampleLaplace);

void BM_MortonIndexBuild(benchmark::State& state) {
  Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = GenerateGowallaLike(n, rng);
  for (auto _ : state) {
    MortonIndex index(points, Box::UnitCube(2));
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MortonIndexBuild)->Arg(10000)->Arg(100000);

void BM_MortonCountPrefix(benchmark::State& state) {
  Rng rng(3);
  const PointSet points = GenerateGowallaLike(100000, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  MortonKey prefix = 0b1001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountPrefix(prefix, 4));
  }
}
BENCHMARK(BM_MortonCountPrefix);

void BM_PrivTreeBuild(benchmark::State& state) {
  Rng data_rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const PointSet points = GenerateRoadLike(n, data_rng);
  Rng rng(5);
  for (auto _ : state) {
    const auto hist =
        BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
    benchmark::DoNotOptimize(hist.tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PrivTreeBuild)->Arg(10000)->Arg(100000);

void BM_RangeQuery(benchmark::State& state) {
  Rng data_rng(6);
  const PointSet points = GenerateRoadLike(100000, data_rng);
  Rng rng(7);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 256, kMediumQueries, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Query(queries[i++ & 255]));
  }
}
BENCHMARK(BM_RangeQuery);

void BM_PrivatePstBuild(benchmark::State& state) {
  Rng data_rng(8);
  const SequenceDataset data =
      GenerateMsnbcLike(static_cast<std::size_t>(state.range(0)), data_rng)
          .Truncate(kMsnbcLTop);
  Rng rng(9);
  PrivatePstOptions options;
  options.l_top = kMsnbcLTop;
  for (auto _ : state) {
    const auto result = BuildPrivatePst(data, 1.0, options, rng);
    benchmark::DoNotOptimize(result.model.size());
  }
}
BENCHMARK(BM_PrivatePstBuild)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace privtree

BENCHMARK_MAIN();
