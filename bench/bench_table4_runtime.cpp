// Table 4: running time of PrivTree (seconds) on all six datasets as a
// function of ε.  The paper's shape to check: road and msnbc are the
// slowest (largest cardinality), and the cost *increases* with ε because a
// smaller ε means a larger bias term and therefore earlier stopping.
//
// Also reports tree sizes next to the noiseless reference |T*| (making the
// Lemma 3.2 bound E[|T|] <= 2|T*| observable), a registry-wide build-time
// comparison, and — new with the serving layer — batch-query throughput for
// every backend.  The whole (ε × rep) fit sweep is sharded across a
// serve::ThreadPool via serve::ParallelRunner, so runtime is a function of
// --threads; the released synopses are bit-for-bit independent of the
// thread count (each job carries its own pre-forked Rng).
//
//   bench_table4_runtime [--threads=N] [--json=PATH] [--datasets=a,b,...]
//                        [--queries=N] [--clients=N]
//
// The serving phase of the registry sweep runs through the *real* serving
// path — a server::AsyncEngine (request queue + admission control +
// completion futures) over the pool and the shared synopsis cache — so the
// --threads numbers measure what a privtree_server process would deliver.
// --clients=N drives a closed-loop load test per method: N client threads
// each submit query batches back to back (next request only after the
// previous response), reported as aggregate queries/second.
//
// --json writes machine-readable per-method wall-clock (fit seconds,
// aggregate fit throughput, batch vs per-query serving time, async engine
// serving time and closed-loop throughput) so successive PRs can track a
// BENCH_*.json trajectory.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "data/seq_gen.h"
#include "eval/table.h"
#include "release/registry.h"
#include "seq/pst_privtree.h"
#include "serve/parallel_runner.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/request.h"

namespace privtree {
namespace bench {
namespace {

double Seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Per-dataset sweep results, for the tables and the JSON trail.
struct DatasetPerf {
  std::string dataset;
  std::string kind;  // "spatial" or "sequence".
  std::vector<double> fit_seconds;     // Mean per ε, in PaperEpsilons order.
  std::vector<double> synopsis_sizes;  // Mean per ε.
  std::size_t jobs = 0;                // ε grid × reps.
  double wall_seconds = 0.0;           // Aggregate wall clock of the sweep.
};

/// Per-method serving results on one dataset at ε = 1.
struct MethodPerf {
  std::string method;
  double fit_seconds_mean = 0.0;
  double synopsis_size_mean = 0.0;
  std::size_t query_count = 0;
  double batch_query_seconds = 0.0;  // One QueryBatch over the workload.
  double loop_query_seconds = 0.0;   // The same workload, one Query at a time.
  // The serving path itself: the workload submitted through the
  // AsyncEngine (queue + admission + future), and a closed loop of
  // `clients` concurrent clients (aggregate answered queries / second).
  double async_batch_seconds = 0.0;
  double closed_loop_qps = 0.0;
};

DatasetPerf RunSpatial(serve::ThreadPool& pool, const std::string& name) {
  const SpatialCase data = MakeSpatialCase(name, /*queries_per_band=*/0);
  const std::size_t reps = Repetitions(3);
  const serve::ParallelRunner runner(pool);  // Uncached: this bench times fits.

  // One job per (ε, rep); randomness pre-forked per ε exactly as the serial
  // bench derived it, so the fitted trees match any earlier run bit for bit.
  std::vector<serve::FitJob> jobs;
  jobs.reserve(PaperEpsilons().size() * reps);
  for (double epsilon : PaperEpsilons()) {
    Rng master(0x7E57);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({"privtree", {}, epsilon, master.Fork()});
    }
  }

  DatasetPerf perf{name, "spatial", {}, {}, jobs.size(), 0.0};
  std::vector<serve::FitResult> results;
  perf.wall_seconds = Seconds([&] {
    results = runner.FitAllTimed(data.points, data.domain, std::move(jobs));
  });

  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    double total_time = 0.0, total_nodes = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const serve::FitResult& r = results[e * reps + rep];
      total_time += r.fit_seconds;
      total_nodes +=
          static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds.push_back(total_time / static_cast<double>(reps));
    perf.synopsis_sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  return perf;
}

DatasetPerf RunSequence(serve::ThreadPool& pool, const std::string& name) {
  Rng data_rng(0x5EC);
  const bool mooc = name == "mooc";
  const std::size_t n = ScaledCardinality(
      mooc ? kMoocCardinality : kMsnbcCardinality, mooc ? 40000 : 80000);
  const SequenceDataset raw =
      mooc ? GenerateMoocLike(n, data_rng) : GenerateMsnbcLike(n, data_rng);
  const std::size_t l_top = mooc ? kMoocLTop : kMsnbcLTop;
  const SequenceDataset data = raw.Truncate(l_top);
  const std::size_t reps = Repetitions(3);

  // The sequence pipeline has no registry adapter yet (see ROADMAP), so the
  // reps are sharded directly over the pool with the same pre-forked-Rng
  // discipline the runner uses.
  struct Job {
    double epsilon;
    Rng rng;
  };
  std::vector<Job> jobs;
  jobs.reserve(PaperEpsilons().size() * reps);
  for (double epsilon : PaperEpsilons()) {
    Rng master(0x7E58);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({epsilon, master.Fork()});
    }
  }

  std::vector<double> seconds(jobs.size(), 0.0);
  std::vector<double> nodes(jobs.size(), 0.0);
  DatasetPerf perf{name, "sequence", {}, {}, jobs.size(), 0.0};
  perf.wall_seconds = Seconds([&] {
    pool.ParallelFor(jobs.size(), [&](std::size_t i) {
      Rng rng = jobs[i].rng;
      PrivatePstOptions options;
      options.l_top = l_top;
      seconds[i] = Seconds([&] {
        const auto result =
            BuildPrivatePst(data, jobs[i].epsilon, options, rng);
        nodes[i] = static_cast<double>(result.model.size());
      });
    });
  });

  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    double total_time = 0.0, total_nodes = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      total_time += seconds[e * reps + rep];
      total_nodes += nodes[e * reps + rep];
    }
    perf.fit_seconds.push_back(total_time / static_cast<double>(reps));
    perf.synopsis_sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  return perf;
}

/// Companion sweep: build + serving time of *every* registered method on one
/// 2-d dataset at ε = 1, one row per registry entry.  The batch column is
/// one QueryBatch over a `query_count`-query workload; the loop column
/// answers the same workload one Query at a time.
std::vector<MethodPerf> RunRegistrySweep(serve::ThreadPool& pool,
                                         const std::string& dataset,
                                         std::size_t query_count,
                                         std::size_t clients) {
  const SpatialCase data = MakeSpatialCase(dataset, /*queries_per_band=*/0);
  const std::size_t reps = Repetitions(3);
  const double epsilon = 1.0;
  const serve::ParallelRunner runner(pool, &serve::SharedSynopsisCache());
  // The serving measurements run through the real serving path: an
  // AsyncEngine over the same pool and cache a privtree_server would use.
  server::AsyncEngine engine(data.points, data.domain, pool,
                             serve::SharedSynopsisCache());

  Rng workload_rng(0xBA7C4);
  std::vector<Box> queries;
  for (const QuerySizeBand& band : kPaperBands) {
    const auto band_queries = GenerateRangeQueries(
        data.domain, query_count / std::size(kPaperBands), band, workload_rng);
    queries.insert(queries.end(), band_queries.begin(), band_queries.end());
  }

  std::vector<MethodPerf> out;
  for (const MethodSpec& spec :
       AllRegisteredSpecs(data.points.dim(), DiscretizationCells())) {
    Rng master(0x7E59 ^ std::hash<std::string>{}(spec.name));
    std::vector<serve::FitJob> jobs;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
    }
    const auto results =
        runner.FitAllTimed(data.points, data.domain, std::move(jobs));

    MethodPerf perf;
    perf.method = spec.name;
    perf.query_count = queries.size();
    for (const serve::FitResult& r : results) {
      perf.fit_seconds_mean += r.fit_seconds;
      perf.synopsis_size_mean +=
          static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds_mean /= static_cast<double>(reps);
    perf.synopsis_size_mean /= static_cast<double>(reps);

    const release::Method& method = *results.front().method;
    std::vector<double> batch_answers;
    perf.batch_query_seconds =
        Seconds([&] { batch_answers = method.QueryBatch(queries); });
    double loop_total = 0.0;
    perf.loop_query_seconds = Seconds([&] {
      for (const Box& q : queries) loop_total += method.Query(q);
    });
    // Keep the loop honest: the sum depends on every Query call.
    if (loop_total == 0.0 && !batch_answers.empty()) {
      std::fprintf(stderr, "(workload sum exactly zero on %s)\n",
                   spec.name.c_str());
    }

    // The same workload through the AsyncEngine.  The spec's seed recreates
    // the first rep's randomness (Rng(seed).Fork() — the ReleaseSession
    // derivation), so the engine serves the already-cached synopsis and the
    // measurement isolates the queue + dispatch + query cost.
    const server::FitSpec fit_spec{
        spec.name, spec.options, epsilon,
        0x7E59 ^ std::hash<std::string>{}(spec.name)};
    perf.async_batch_seconds = Seconds([&] {
      const auto response = engine.SubmitQueryBatch(fit_spec, queries).Get();
      if (!response.status.ok()) {
        std::fprintf(stderr, "error: async serving %s: %s\n",
                     spec.name.c_str(),
                     response.status.ToString().c_str());
      }
    });

    // Closed loop: `clients` concurrent clients, each submitting the
    // workload `rounds` times back to back.
    const std::size_t rounds = 3;
    std::size_t answered = 0;
    const double closed_loop_seconds = Seconds([&] {
      std::vector<std::thread> threads;
      std::atomic<std::size_t> total{0};
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
          std::size_t mine = 0;
          for (std::size_t r = 0; r < rounds; ++r) {
            const auto response =
                engine.SubmitQueryBatch(fit_spec, queries).Get();
            if (response.status.ok()) mine += response.answers.size();
          }
          total.fetch_add(mine, std::memory_order_relaxed);
        });
      }
      for (std::thread& t : threads) t.join();
      answered = total.load();
    });
    perf.closed_loop_qps = closed_loop_seconds > 0.0
                               ? static_cast<double>(answered) /
                                     closed_loop_seconds
                               : 0.0;
    out.push_back(perf);
  }
  return out;
}

void WriteJson(const std::string& path, std::size_t threads, std::size_t reps,
               std::size_t clients, const std::vector<DatasetPerf>& datasets,
               const std::string& sweep_dataset,
               const std::vector<MethodPerf>& methods) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"reps\": %zu,\n", threads, reps);
  std::fprintf(f, "  \"clients\": %zu,\n", clients);
  std::fprintf(f, "  \"paper_scale\": %s,\n", PaperScale() ? "true" : "false");
  std::fprintf(f, "  \"table4\": [\n");
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const DatasetPerf& d = datasets[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"kind\": \"%s\",\n",
                 d.dataset.c_str(), d.kind.c_str());
    std::fprintf(f, "     \"epsilons\": [");
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      std::fprintf(f, "%s%g", e ? ", " : "", PaperEpsilons()[e]);
    }
    std::fprintf(f, "],\n     \"fit_seconds_mean\": [");
    for (std::size_t e = 0; e < d.fit_seconds.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.fit_seconds[e]);
    }
    std::fprintf(f, "],\n     \"synopsis_size_mean\": [");
    for (std::size_t e = 0; e < d.synopsis_sizes.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.synopsis_sizes[e]);
    }
    std::fprintf(f,
                 "],\n     \"fit_jobs\": %zu, \"fit_wall_seconds\": %.6g, "
                 "\"fits_per_second\": %.6g}%s\n",
                 d.jobs, d.wall_seconds,
                 d.wall_seconds > 0.0
                     ? static_cast<double>(d.jobs) / d.wall_seconds
                     : 0.0,
                 i + 1 < datasets.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"registry_sweep\": {\"dataset\": \"%s\", "
                  "\"epsilon\": 1, \"methods\": [\n",
               sweep_dataset.c_str());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const MethodPerf& m = methods[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"fit_seconds_mean\": %.6g, "
        "\"synopsis_size_mean\": %.6g, \"queries\": %zu, "
        "\"batch_query_seconds\": %.6g, \"loop_query_seconds\": %.6g, "
        "\"async_batch_seconds\": %.6g, \"closed_loop_qps\": %.6g}%s\n",
        m.method.c_str(), m.fit_seconds_mean, m.synopsis_size_mean,
        m.query_count, m.batch_query_seconds, m.loop_query_seconds,
        m.async_batch_seconds, m.closed_loop_qps,
        i + 1 < methods.size() ? "," : "");
  }
  std::fprintf(f, "  ]}\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main(int argc, char** argv) {
  using privtree::FormatCell;
  using privtree::TablePrinter;
  using privtree::bench::DatasetPerf;
  using privtree::bench::MethodPerf;

  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::string json_path;
  std::vector<std::string> datasets = {"road", "gowalla", "nyc",
                                       "beijing", "mooc", "msnbc"};
  std::size_t query_count = privtree::PaperScale() ? 10000 : 2000;
  std::size_t clients = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--threads=")));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--clients=")));
      if (clients == 0) clients = 1;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      query_count = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--queries=")));
    } else if (arg.rfind("--datasets=", 0) == 0) {
      datasets.clear();
      std::string rest = arg.substr(std::strlen("--datasets="));
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        datasets.push_back(rest.substr(0, comma));
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=N] [--json=PATH] "
                   "[--datasets=a,b,...] [--queries=N] [--clients=N]\n",
                   argv[0]);
      return 2;
    }
  }
  privtree::serve::SetDefaultThreadCount(threads);
  privtree::serve::ThreadPool pool(threads);

  std::printf(
      "Reproduction of Table 4 (PrivTree, SIGMOD 2016): PrivTree running\n"
      "time in seconds; larger epsilon => deeper trees => more time.\n"
      "Fit sweep sharded across %zu thread(s).\n",
      pool.worker_count());

  std::vector<std::string> columns;
  for (double epsilon : privtree::PaperEpsilons()) {
    columns.push_back("eps=" + FormatCell(epsilon));
  }
  TablePrinter time_table("Table 4: PrivTree running time (seconds)",
                          "dataset", columns);
  TablePrinter size_table("Companion: mean output tree size (nodes)",
                          "dataset", columns);
  TablePrinter agg_table("Companion: aggregate fit throughput",
                         "dataset", {"jobs", "wall s", "fits/s"});

  std::vector<DatasetPerf> perfs;
  std::string sweep_dataset;
  for (const std::string& name : datasets) {
    const bool sequence = name == "mooc" || name == "msnbc";
    DatasetPerf perf = sequence
                           ? privtree::bench::RunSequence(pool, name)
                           : privtree::bench::RunSpatial(pool, name);
    if (!sequence && sweep_dataset.empty()) sweep_dataset = name;
    time_table.AddRow(name, perf.fit_seconds);
    size_table.AddRow(name, perf.synopsis_sizes);
    agg_table.AddRow(name,
                     {static_cast<double>(perf.jobs), perf.wall_seconds,
                      perf.wall_seconds > 0.0
                          ? static_cast<double>(perf.jobs) / perf.wall_seconds
                          : 0.0});
    perfs.push_back(std::move(perf));
  }
  time_table.Print();
  size_table.Print();
  agg_table.Print();

  std::vector<MethodPerf> methods;
  if (!sweep_dataset.empty()) {
    methods = privtree::bench::RunRegistrySweep(pool, sweep_dataset,
                                                query_count, clients);
    TablePrinter sweep_table(
        "Companion: registry sweep on " + sweep_dataset +
            " (eps=1): fit + serving a " + std::to_string(query_count) +
            "-query workload (async columns via AsyncEngine, " +
            std::to_string(clients) + " closed-loop client" +
            (clients == 1 ? "" : "s") + ")",
        "method",
        {"fit s", "synopsis", "batch q s", "loop q s", "async q s", "qps"});
    for (const MethodPerf& m : methods) {
      sweep_table.AddRow(m.method,
                         {m.fit_seconds_mean, m.synopsis_size_mean,
                          m.batch_query_seconds, m.loop_query_seconds,
                          m.async_batch_seconds, m.closed_loop_qps});
    }
    sweep_table.Print();
  }

  if (!json_path.empty()) {
    privtree::bench::WriteJson(json_path, pool.worker_count(),
                               privtree::Repetitions(3), clients, perfs,
                               sweep_dataset, methods);
  }
  return 0;
}
