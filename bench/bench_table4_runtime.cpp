// Table 4: running time of PrivTree (seconds) on all six datasets as a
// function of ε.  The paper's shape to check: road and msnbc are the
// slowest (largest cardinality), and the cost *increases* with ε because a
// smaller ε means a larger bias term and therefore earlier stopping.
//
// Also reports tree sizes next to the noiseless reference |T*| (making the
// Lemma 3.2 bound E[|T|] <= 2|T*| observable), registry-wide build-time
// comparisons for both dataset kinds, and batch-query throughput for every
// backend.  The whole (ε × rep) fit sweep — spatial *and* sequence — is
// sharded through one serve::ParallelRunner over a release::Dataset, so
// there is no per-dataset special case anywhere: every name resolves
// through one descriptor table (unknown names fail loudly), every fit goes
// through the registry, and the released synopses are bit-for-bit
// independent of the thread count (each job carries its own pre-forked
// Rng).
//
//   bench_table4_runtime [--threads=N] [--json=PATH] [--datasets=a,b,...]
//                        [--queries=N] [--clients=N]
//
// The serving phase runs through the *real* serving path for every listed
// dataset — a server::AsyncEngine (request queue + admission control +
// completion futures) over the pool and the shared synopsis cache — boxes
// for the spatial datasets, SequenceQuery frames for mooc/msnbc.  A
// dataset that bypasses the served path is a hard error, not a silent
// skip.  --clients=N drives a closed-loop load test per dataset and per
// sweep method: N client threads each submit query batches back to back
// (next request only after the previous response), reported as aggregate
// queries/second.
//
// --json writes machine-readable per-dataset and per-method wall-clock so
// successive PRs can track a BENCH_*.json trajectory.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_seq_common.h"
#include "eval/table.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "serve/parallel_runner.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/request.h"

namespace privtree {
namespace bench {
namespace {

double Seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// One benchmarked dataset behind the uniform release::Dataset view: the
/// descriptor every phase (fit sweep, serving, registry sweeps) works
/// from, with no per-name branching outside MakeDatasetHolder.
struct DatasetHolder {
  std::string name;
  release::DatasetKind kind = release::DatasetKind::kSpatial;
  std::optional<SpatialCase> spatial;
  std::optional<SequenceCase> sequence;

  release::Dataset View() const {
    return kind == release::DatasetKind::kSpatial
               ? release::Dataset(spatial->points, spatial->domain)
               : release::Dataset(sequence->truncated);
  }
  /// The Table-4 method for this kind: the paper's PrivTree, over points
  /// or over sequences.
  std::string FitMethod() const {
    return kind == release::DatasetKind::kSpatial ? "privtree"
                                                  : "pst_privtree";
  }
  release::MethodOptions FitOptions() const {
    release::MethodOptions options;
    if (kind == release::DatasetKind::kSequence) {
      options.Set("l_top", std::to_string(sequence->l_top));
    }
    return options;
  }
  /// Distinct master seeds per kind (0x7E57 spatial — unchanged from the
  /// pre-registry bench, so spatial rows stay comparable across the JSON
  /// trajectory — and 0x7E58 sequence; the sequence datasets themselves
  /// now come from the shared MakeSequenceCase generator, so their rows
  /// start a fresh trajectory with this PR).
  std::uint64_t FitSeed() const {
    return kind == release::DatasetKind::kSpatial ? 0x7E57 : 0x7E58;
  }
};

const std::vector<std::string>& SpatialNames() {
  static const std::vector<std::string> names = {"road", "gowalla", "nyc",
                                                 "beijing"};
  return names;
}

const std::vector<std::string>& SequenceNames() {
  static const std::vector<std::string> names = {"mooc", "msnbc"};
  return names;
}

/// Resolves a dataset name through the descriptor table; unknown names are
/// a usage error, reported loudly (never a silently skipped row).
DatasetHolder MakeDatasetHolder(const std::string& name) {
  DatasetHolder holder;
  holder.name = name;
  const auto& spatial = SpatialNames();
  const auto& sequences = SequenceNames();
  if (std::find(spatial.begin(), spatial.end(), name) != spatial.end()) {
    holder.kind = release::DatasetKind::kSpatial;
    holder.spatial.emplace(MakeSpatialCase(name, /*queries_per_band=*/0));
    return holder;
  }
  if (std::find(sequences.begin(), sequences.end(), name) !=
      sequences.end()) {
    holder.kind = release::DatasetKind::kSequence;
    holder.sequence.emplace(MakeSequenceCase(name));
    return holder;
  }
  std::fprintf(stderr,
               "error: unknown dataset \"%s\" (spatial: road, gowalla, "
               "nyc, beijing; sequence: mooc, msnbc)\n",
               name.c_str());
  std::exit(2);
}

/// Per-dataset sweep results, for the tables and the JSON trail.
struct DatasetPerf {
  std::string dataset;
  std::string kind;  // "spatial" or "sequence".
  std::vector<double> fit_seconds;     // Mean per ε, in PaperEpsilons order.
  std::vector<double> synopsis_sizes;  // Mean per ε.
  std::size_t jobs = 0;                // ε grid × reps.
  double wall_seconds = 0.0;           // Aggregate wall clock of the sweep.
  // The served path: this dataset's default method answering a workload
  // through the AsyncEngine (queue + admission + future) and a closed loop
  // of `clients` concurrent clients.
  std::string served_method;
  std::size_t served_queries = 0;
  double async_batch_seconds = 0.0;
  double closed_loop_qps = 0.0;
  bool served = false;
};

/// Per-method serving results on one dataset at ε = 1.
struct MethodPerf {
  std::string method;
  double fit_seconds_mean = 0.0;
  double synopsis_size_mean = 0.0;
  std::size_t query_count = 0;
  double batch_query_seconds = 0.0;  // One QueryBatch over the workload.
  double loop_query_seconds = 0.0;   // Spatial only: one Query at a time.
  double async_batch_seconds = 0.0;
  double closed_loop_qps = 0.0;
  bool served = false;  // The AsyncEngine closed loop completed cleanly.
};

/// The Table-4 fit sweep — one code path for both kinds: per-(ε, rep) jobs
/// with pre-forked Rngs, sharded by the runner over the registry method.
DatasetPerf RunFitSweep(serve::ThreadPool& pool, const DatasetHolder& h) {
  const std::size_t reps = Repetitions(3);
  const serve::ParallelRunner runner(pool);  // Uncached: this bench times fits.

  std::vector<serve::FitJob> jobs;
  jobs.reserve(PaperEpsilons().size() * reps);
  for (double epsilon : PaperEpsilons()) {
    Rng master(h.FitSeed());
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({h.FitMethod(), h.FitOptions(), epsilon, master.Fork()});
    }
  }

  DatasetPerf perf;
  perf.dataset = h.name;
  perf.kind = std::string(release::DatasetKindName(h.kind));
  perf.jobs = jobs.size();
  std::vector<serve::FitResult> results;
  perf.wall_seconds = Seconds([&] {
    results = runner.FitAllTimed(h.View(), std::move(jobs));
  });

  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    double total_time = 0.0, total_nodes = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const serve::FitResult& r = results[e * reps + rep];
      total_time += r.fit_seconds;
      total_nodes += static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds.push_back(total_time / static_cast<double>(reps));
    perf.synopsis_sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  return perf;
}

/// One closed-loop AsyncEngine measurement: submit the workload once for
/// the async-batch column, then `clients` threads × `rounds` back-to-back
/// submissions for aggregate throughput.  `submit` wraps the kind-specific
/// Submit*QueryBatch call; returns false (with a diagnostic) when the
/// served path failed.
bool ClosedLoopServe(
    const std::string& label, std::size_t clients, std::size_t query_count,
    const std::function<server::Future<server::QueryBatchResponse>()>&
        submit,
    double* async_batch_seconds, double* closed_loop_qps) {
  bool ok = true;
  *async_batch_seconds = Seconds([&] {
    const auto response = submit().Get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "error: async serving %s: %s\n", label.c_str(),
                   response.status.ToString().c_str());
      ok = false;
    }
  });
  if (!ok) return false;

  const std::size_t rounds = 3;
  std::size_t answered = 0;
  const double closed_loop_seconds = Seconds([&] {
    std::vector<std::thread> threads;
    std::atomic<std::size_t> total{0};
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        std::size_t mine = 0;
        for (std::size_t r = 0; r < rounds; ++r) {
          const auto response = submit().Get();
          if (response.status.ok()) mine += response.answers.size();
        }
        total.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();
    answered = total.load();
  });
  *closed_loop_qps =
      closed_loop_seconds > 0.0
          ? static_cast<double>(answered) / closed_loop_seconds
          : 0.0;
  return answered >= query_count * clients * rounds;
}

/// The served path for one dataset: its default method answering a
/// kind-appropriate workload through a real AsyncEngine.  Every listed
/// dataset goes through here; a failure is reported by the caller as a
/// hard error (the closed-loop JSON must never under-report coverage).
void RunServingPhase(serve::ThreadPool& pool, const DatasetHolder& h,
                     std::size_t query_count, std::size_t clients,
                     DatasetPerf* perf) {
  server::AsyncEngine engine(h.View(), pool, serve::SharedSynopsisCache());
  const server::FitSpec spec{h.FitMethod(), h.FitOptions(), /*epsilon=*/1.0,
                             h.FitSeed()};
  perf->served_method = spec.method;

  if (h.kind == release::DatasetKind::kSpatial) {
    Rng workload_rng(0xBA7C4);
    std::vector<Box> queries;
    for (const QuerySizeBand& band : kPaperBands) {
      const auto band_queries = GenerateRangeQueries(
          h.spatial->domain, query_count / std::size(kPaperBands), band,
          workload_rng);
      queries.insert(queries.end(), band_queries.begin(),
                     band_queries.end());
    }
    perf->served_queries = queries.size();
    perf->served = ClosedLoopServe(
        h.name + "/" + spec.method, clients, queries.size(),
        [&] { return engine.SubmitQueryBatch(spec, queries); },
        &perf->async_batch_seconds, &perf->closed_loop_qps);
    return;
  }
  Rng workload_rng(0xBA7C5);
  const std::vector<release::SequenceQuery> queries =
      GenerateSequenceQueries(h.sequence->truncated, query_count,
                              workload_rng);
  perf->served_queries = queries.size();
  perf->served = ClosedLoopServe(
      h.name + "/" + spec.method, clients, queries.size(),
      [&] { return engine.SubmitSeqQueryBatch(spec, queries); },
      &perf->async_batch_seconds, &perf->closed_loop_qps);
}

/// Companion sweep: build + serving time of every registered method of the
/// dataset's kind at ε = 1, one row per registry entry, all through the
/// same AsyncEngine closed loop.
std::vector<MethodPerf> RunRegistrySweep(serve::ThreadPool& pool,
                                         const DatasetHolder& h,
                                         std::size_t query_count,
                                         std::size_t clients) {
  const std::size_t reps = Repetitions(3);
  const double epsilon = 1.0;
  const serve::ParallelRunner runner(pool, &serve::SharedSynopsisCache());
  server::AsyncEngine engine(h.View(), pool, serve::SharedSynopsisCache());

  // Kind-appropriate workload, generated once for every method row.
  std::vector<Box> boxes;
  std::vector<release::SequenceQuery> seq_queries;
  if (h.kind == release::DatasetKind::kSpatial) {
    Rng workload_rng(0xBA7C4);
    for (const QuerySizeBand& band : kPaperBands) {
      const auto band_queries = GenerateRangeQueries(
          h.spatial->domain, query_count / std::size(kPaperBands), band,
          workload_rng);
      boxes.insert(boxes.end(), band_queries.begin(), band_queries.end());
    }
  } else {
    Rng workload_rng(0xBA7C5);
    seq_queries = GenerateSequenceQueries(h.sequence->truncated, query_count,
                                          workload_rng);
  }

  const std::vector<MethodSpec> specs =
      h.kind == release::DatasetKind::kSpatial
          ? AllRegisteredSpecs(h.spatial->points.dim(), DiscretizationCells())
          : SequenceSpecs(h.sequence->l_top);

  std::vector<MethodPerf> out;
  for (const MethodSpec& spec : specs) {
    const std::uint64_t seed =
        0x7E59 ^ std::hash<std::string>{}(spec.name);
    Rng master(seed);
    std::vector<serve::FitJob> jobs;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
    }
    const auto results = runner.FitAllTimed(h.View(), std::move(jobs));

    MethodPerf perf;
    perf.method = spec.name;
    for (const serve::FitResult& r : results) {
      perf.fit_seconds_mean += r.fit_seconds;
      perf.synopsis_size_mean +=
          static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds_mean /= static_cast<double>(reps);
    perf.synopsis_size_mean /= static_cast<double>(reps);

    const release::Method& method = *results.front().method;
    // The spec's seed recreates the first rep's randomness (Rng(seed).
    // Fork() — the ReleaseSession derivation), so the engine serves the
    // already-cached synopsis and the measurement isolates the queue +
    // dispatch + query cost.
    const server::FitSpec fit_spec{spec.name, spec.options, epsilon, seed};
    if (h.kind == release::DatasetKind::kSpatial) {
      perf.query_count = boxes.size();
      std::vector<double> batch_answers;
      perf.batch_query_seconds =
          Seconds([&] { batch_answers = method.QueryBatch(boxes); });
      double loop_total = 0.0;
      perf.loop_query_seconds = Seconds([&] {
        for (const Box& q : boxes) loop_total += method.Query(q);
      });
      // Keep the loop honest: the sum depends on every Query call.
      if (loop_total == 0.0 && !batch_answers.empty()) {
        std::fprintf(stderr, "(workload sum exactly zero on %s)\n",
                     spec.name.c_str());
      }
      perf.served = ClosedLoopServe(
          h.name + "/" + spec.name, clients, boxes.size(),
          [&] { return engine.SubmitQueryBatch(fit_spec, boxes); },
          &perf.async_batch_seconds, &perf.closed_loop_qps);
    } else {
      perf.query_count = seq_queries.size();
      perf.batch_query_seconds = Seconds(
          [&] { (void)method.QueryBatch(std::span(seq_queries)); });
      // Sequence methods have no per-box Query; the batch is the only
      // client-visible path.
      perf.loop_query_seconds = 0.0;
      perf.served = ClosedLoopServe(
          h.name + "/" + spec.name, clients, seq_queries.size(),
          [&] { return engine.SubmitSeqQueryBatch(fit_spec, seq_queries); },
          &perf.async_batch_seconds, &perf.closed_loop_qps);
    }
    out.push_back(perf);
  }
  return out;
}

void WriteMethodsJson(std::FILE* f, const std::vector<MethodPerf>& methods) {
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const MethodPerf& m = methods[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"fit_seconds_mean\": %.6g, "
        "\"synopsis_size_mean\": %.6g, \"queries\": %zu, "
        "\"batch_query_seconds\": %.6g, \"loop_query_seconds\": %.6g, "
        "\"async_batch_seconds\": %.6g, \"closed_loop_qps\": %.6g}%s\n",
        m.method.c_str(), m.fit_seconds_mean, m.synopsis_size_mean,
        m.query_count, m.batch_query_seconds, m.loop_query_seconds,
        m.async_batch_seconds, m.closed_loop_qps,
        i + 1 < methods.size() ? "," : "");
  }
}

void WriteJson(const std::string& path, std::size_t threads, std::size_t reps,
               std::size_t clients, const std::vector<DatasetPerf>& datasets,
               const std::string& sweep_dataset,
               const std::vector<MethodPerf>& methods,
               const std::string& seq_sweep_dataset,
               const std::vector<MethodPerf>& seq_methods) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"reps\": %zu,\n", threads, reps);
  std::fprintf(f, "  \"clients\": %zu,\n", clients);
  std::fprintf(f, "  \"paper_scale\": %s,\n", PaperScale() ? "true" : "false");
  std::fprintf(f, "  \"table4\": [\n");
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const DatasetPerf& d = datasets[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"kind\": \"%s\",\n",
                 d.dataset.c_str(), d.kind.c_str());
    std::fprintf(f, "     \"epsilons\": [");
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      std::fprintf(f, "%s%g", e ? ", " : "", PaperEpsilons()[e]);
    }
    std::fprintf(f, "],\n     \"fit_seconds_mean\": [");
    for (std::size_t e = 0; e < d.fit_seconds.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.fit_seconds[e]);
    }
    std::fprintf(f, "],\n     \"synopsis_size_mean\": [");
    for (std::size_t e = 0; e < d.synopsis_sizes.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.synopsis_sizes[e]);
    }
    std::fprintf(f,
                 "],\n     \"fit_jobs\": %zu, \"fit_wall_seconds\": %.6g, "
                 "\"fits_per_second\": %.6g,\n",
                 d.jobs, d.wall_seconds,
                 d.wall_seconds > 0.0
                     ? static_cast<double>(d.jobs) / d.wall_seconds
                     : 0.0);
    std::fprintf(f,
                 "     \"served\": %s, \"served_method\": \"%s\", "
                 "\"served_queries\": %zu, \"async_batch_seconds\": %.6g, "
                 "\"closed_loop_qps\": %.6g}%s\n",
                 d.served ? "true" : "false", d.served_method.c_str(),
                 d.served_queries, d.async_batch_seconds, d.closed_loop_qps,
                 i + 1 < datasets.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"registry_sweep\": {\"dataset\": \"%s\", "
                  "\"epsilon\": 1, \"methods\": [\n",
               sweep_dataset.c_str());
  WriteMethodsJson(f, methods);
  std::fprintf(f, "  ]},\n  \"sequence_sweep\": {\"dataset\": \"%s\", "
                  "\"epsilon\": 1, \"methods\": [\n",
               seq_sweep_dataset.c_str());
  WriteMethodsJson(f, seq_methods);
  std::fprintf(f, "  ]}\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main(int argc, char** argv) {
  using privtree::FormatCell;
  using privtree::TablePrinter;
  using privtree::bench::DatasetHolder;
  using privtree::bench::DatasetPerf;
  using privtree::bench::MethodPerf;

  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::string json_path;
  std::vector<std::string> datasets = {"road", "gowalla", "nyc",
                                       "beijing", "mooc", "msnbc"};
  std::size_t query_count = privtree::PaperScale() ? 10000 : 2000;
  std::size_t clients = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--threads=")));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--clients=")));
      if (clients == 0) clients = 1;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--queries=", 0) == 0) {
      query_count = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--queries=")));
    } else if (arg.rfind("--datasets=", 0) == 0) {
      datasets.clear();
      std::string rest = arg.substr(std::strlen("--datasets="));
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        datasets.push_back(rest.substr(0, comma));
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=N] [--json=PATH] "
                   "[--datasets=a,b,...] [--queries=N] [--clients=N]\n",
                   argv[0]);
      return 2;
    }
  }
  privtree::serve::SetDefaultThreadCount(threads);
  privtree::serve::ThreadPool pool(threads);

  std::printf(
      "Reproduction of Table 4 (PrivTree, SIGMOD 2016): PrivTree running\n"
      "time in seconds; larger epsilon => deeper trees => more time.\n"
      "Fit sweep sharded across %zu thread(s); every dataset — spatial and\n"
      "sequence — fits through the release registry and serves through an\n"
      "AsyncEngine.\n",
      pool.worker_count());

  std::vector<std::string> columns;
  for (double epsilon : privtree::PaperEpsilons()) {
    columns.push_back("eps=" + FormatCell(epsilon));
  }
  TablePrinter time_table("Table 4: PrivTree running time (seconds)",
                          "dataset", columns);
  TablePrinter size_table("Companion: mean output tree size (nodes)",
                          "dataset", columns);
  TablePrinter agg_table(
      "Companion: aggregate fit throughput + served workload (" +
          std::to_string(clients) + " closed-loop client" +
          (clients == 1 ? "" : "s") + ")",
      "dataset", {"jobs", "wall s", "fits/s", "async q s", "qps"});

  std::vector<DatasetPerf> perfs;
  std::string sweep_dataset, seq_sweep_dataset;
  std::vector<MethodPerf> methods, seq_methods;
  for (const std::string& name : datasets) {
    const DatasetHolder holder = privtree::bench::MakeDatasetHolder(name);
    DatasetPerf perf = privtree::bench::RunFitSweep(pool, holder);
    privtree::bench::RunServingPhase(pool, holder, query_count, clients,
                                     &perf);
    time_table.AddRow(name, perf.fit_seconds);
    size_table.AddRow(name, perf.synopsis_sizes);
    agg_table.AddRow(name,
                     {static_cast<double>(perf.jobs), perf.wall_seconds,
                      perf.wall_seconds > 0.0
                          ? static_cast<double>(perf.jobs) / perf.wall_seconds
                          : 0.0,
                      perf.async_batch_seconds, perf.closed_loop_qps});
    // One registry sweep per kind, on the first dataset of that kind.
    const bool spatial =
        holder.kind == privtree::release::DatasetKind::kSpatial;
    if (spatial && sweep_dataset.empty()) {
      sweep_dataset = name;
      methods = privtree::bench::RunRegistrySweep(pool, holder, query_count,
                                                  clients);
    } else if (!spatial && seq_sweep_dataset.empty()) {
      seq_sweep_dataset = name;
      seq_methods = privtree::bench::RunRegistrySweep(pool, holder,
                                                      query_count, clients);
    }
    perfs.push_back(std::move(perf));
  }
  time_table.Print();
  size_table.Print();
  agg_table.Print();

  const auto print_sweep = [&](const std::string& dataset,
                               const std::vector<MethodPerf>& rows) {
    if (dataset.empty()) return;
    TablePrinter sweep_table(
        "Companion: registry sweep on " + dataset +
            " (eps=1): fit + serving a " + std::to_string(query_count) +
            "-query workload (async columns via AsyncEngine, " +
            std::to_string(clients) + " closed-loop client" +
            (clients == 1 ? "" : "s") + ")",
        "method",
        {"fit s", "synopsis", "batch q s", "loop q s", "async q s", "qps"});
    for (const MethodPerf& m : rows) {
      sweep_table.AddRow(m.method,
                         {m.fit_seconds_mean, m.synopsis_size_mean,
                          m.batch_query_seconds, m.loop_query_seconds,
                          m.async_batch_seconds, m.closed_loop_qps});
    }
    sweep_table.Print();
  };
  print_sweep(sweep_dataset, methods);
  print_sweep(seq_sweep_dataset, seq_methods);

  // The closed-loop JSON must never under-report serving coverage: every
  // listed dataset — sequence ones included — and every sweep method row
  // goes through the AsyncEngine path, or this bench fails.
  bool all_served = true;
  for (const DatasetPerf& perf : perfs) {
    if (!perf.served) {
      std::fprintf(stderr,
                   "error: dataset \"%s\" bypassed the AsyncEngine serving "
                   "phase\n",
                   perf.dataset.c_str());
      all_served = false;
    }
  }
  for (const auto& [dataset, rows] :
       {std::make_pair(sweep_dataset, &methods),
        std::make_pair(seq_sweep_dataset, &seq_methods)}) {
    for (const MethodPerf& m : *rows) {
      if (!m.served) {
        std::fprintf(stderr,
                     "error: sweep method %s/%s failed the AsyncEngine "
                     "closed loop\n",
                     dataset.c_str(), m.method.c_str());
        all_served = false;
      }
    }
  }
  if (!all_served) return 1;

  if (!json_path.empty()) {
    privtree::bench::WriteJson(json_path, pool.worker_count(),
                               privtree::Repetitions(3), clients, perfs,
                               sweep_dataset, methods, seq_sweep_dataset,
                               seq_methods);
  }
  return 0;
}
