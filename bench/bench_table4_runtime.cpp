// Table 4: running time of PrivTree (seconds) on all six datasets as a
// function of ε.  The paper's shape to check: road and msnbc are the
// slowest (largest cardinality), and the cost *increases* with ε because a
// smaller ε means a larger bias term and therefore earlier stopping.
//
// Also reports tree sizes next to the noiseless reference |T*| (making the
// Lemma 3.2 bound E[|T|] <= 2|T*| observable), registry-wide build-time
// comparisons for both dataset kinds, and batch-query throughput for every
// backend.  The whole (ε × rep) fit sweep — spatial *and* sequence — is
// sharded through one serve::ParallelRunner over a release::Dataset, so
// there is no per-dataset special case anywhere: every name resolves
// through one descriptor table (unknown names fail loudly), every fit goes
// through the registry, and the released synopses are bit-for-bit
// independent of the thread count (each job carries its own pre-forked
// Rng).
//
//   bench_table4_runtime [--threads=N] [--json[=PATH]] [--datasets=a,b,...]
//                        [--queries=N] [--clients=N] [--loop=epoll|threads]
//                        [--chaos] [--kernels[=PATH]]
//
// PRIVTREE_SOCKET_ROUNDS=<r> overrides the closed-loop requests per
// connection in the socket phase (default 3) — useful for longer, less
// noisy throughput comparisons (e.g. metrics-on vs PRIVTREE_NO_METRICS).
//
// --kernels replaces the sweep with the compression/kernel microbench:
// compressed (v3) vs raw (v2) envelope bytes and decode GB/s per backend,
// batch-query throughput of the reference paths vs the flat scalar and
// SIMD kernels, and a bit-for-bit parity gate over every compressed or
// vectorized served answer (any divergence exits non-zero).  Writes
// BENCH_kernels.json, the committed snapshot CI's smoke step checks.
//
// --chaos replaces the sweep with a resilience run: closed-loop resilient
// clients drive one tenant over the epoll loop while the server loop is
// restarted on the same port mid-run; every client must ride through the
// restart transparently (0 failed requests, answers bit-for-bit identical
// to the pre-restart reference).  Writes BENCH_chaos.json — recovery time,
// retry/reconnect counts, error rate — and exits non-zero on any failure.
//
// The serving phase runs through the *real* serving path for every listed
// dataset — a server::AsyncEngine (request queue + admission control +
// completion futures) over the pool and the shared synopsis cache — boxes
// for the spatial datasets, SequenceQuery frames for mooc/msnbc.  A
// dataset that bypasses the served path is a hard error, not a silent
// skip.
//
// On top of the in-process engine measurements, a *socket* phase hosts
// every dataset as a tenant of one DatasetRegistry behind the selected
// wire loop (--loop=epoll, the default, or --loop=threads for the
// thread-per-connection oracle) and drives it with --clients=N concurrent
// TCP connections from a single-threaded epoll client driver: each
// connection runs a closed loop of pre-encoded query-batch frames
// (round-robin across the tenants, so spatial and sequence traffic mix),
// and every request's wall-clock latency is recorded for p50/p99.  The
// driver multiplexes all N connections on one thread, so --clients=1000+
// measures connection scaling of the server loop, not of the driver.  The
// phase ends with a parity check: the answers served over the socket must
// be bit-for-bit identical to the in-process AsyncEngine answers (and, in
// epoll mode, to a thread-per-connection ServerLoop on the same
// dispatcher).
//
// --clients also sizes the in-process closed loop, capped at 16 threads
// there (that loop measures engine dispatch, not connection scaling — the
// socket phase is the one that takes the full count).
//
// --json writes machine-readable per-dataset and per-method wall-clock so
// successive PRs can track a BENCH_*.json trajectory; a bare --json
// defaults to BENCH_table4.json for the committed repo-root snapshot.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_seq_common.h"
#include "core/byteio.h"
#include "core/codec.h"
#include "core/fault.h"
#include "core/simd.h"
#include "core/tree.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "hist/ag.h"
#include "hist/grid.h"
#include "hist/grid_codec.h"
#include "hist/grid_kernels.h"
#include "obs/metrics.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/serialization.h"
#include "release/tree_batch.h"
#include "serve/parallel_runner.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/event/event_loop.h"
#include "server/protocol.h"
#include "server/request.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace bench {
namespace {

double Seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// One benchmarked dataset behind the uniform release::Dataset view: the
/// descriptor every phase (fit sweep, serving, registry sweeps) works
/// from, with no per-name branching outside MakeDatasetHolder.
struct DatasetHolder {
  std::string name;
  release::DatasetKind kind = release::DatasetKind::kSpatial;
  std::optional<SpatialCase> spatial;
  std::optional<SequenceCase> sequence;

  release::Dataset View() const {
    return kind == release::DatasetKind::kSpatial
               ? release::Dataset(spatial->points, spatial->domain)
               : release::Dataset(sequence->truncated);
  }
  /// The Table-4 method for this kind: the paper's PrivTree, over points
  /// or over sequences.
  std::string FitMethod() const {
    return kind == release::DatasetKind::kSpatial ? "privtree"
                                                  : "pst_privtree";
  }
  release::MethodOptions FitOptions() const {
    release::MethodOptions options;
    if (kind == release::DatasetKind::kSequence) {
      options.Set("l_top", std::to_string(sequence->l_top));
    }
    return options;
  }
  /// Distinct master seeds per kind (0x7E57 spatial — unchanged from the
  /// pre-registry bench, so spatial rows stay comparable across the JSON
  /// trajectory — and 0x7E58 sequence; the sequence datasets themselves
  /// now come from the shared MakeSequenceCase generator, so their rows
  /// start a fresh trajectory with this PR).
  std::uint64_t FitSeed() const {
    return kind == release::DatasetKind::kSpatial ? 0x7E57 : 0x7E58;
  }
};

const std::vector<std::string>& SpatialNames() {
  static const std::vector<std::string> names = {"road", "gowalla", "nyc",
                                                 "beijing"};
  return names;
}

const std::vector<std::string>& SequenceNames() {
  static const std::vector<std::string> names = {"mooc", "msnbc"};
  return names;
}

/// Resolves a dataset name through the descriptor table; unknown names are
/// a usage error, reported loudly (never a silently skipped row).
DatasetHolder MakeDatasetHolder(const std::string& name) {
  DatasetHolder holder;
  holder.name = name;
  const auto& spatial = SpatialNames();
  const auto& sequences = SequenceNames();
  if (std::find(spatial.begin(), spatial.end(), name) != spatial.end()) {
    holder.kind = release::DatasetKind::kSpatial;
    holder.spatial.emplace(MakeSpatialCase(name, /*queries_per_band=*/0));
    return holder;
  }
  if (std::find(sequences.begin(), sequences.end(), name) !=
      sequences.end()) {
    holder.kind = release::DatasetKind::kSequence;
    holder.sequence.emplace(MakeSequenceCase(name));
    return holder;
  }
  std::fprintf(stderr,
               "error: unknown dataset \"%s\" (spatial: road, gowalla, "
               "nyc, beijing; sequence: mooc, msnbc)\n",
               name.c_str());
  std::exit(2);
}

/// Server-side latency breakdown lifted from the obs metrics registry:
/// one histogram's sample count and nearest-rank quantiles (microseconds,
/// bucket lower bounds — ≤25% below the true value by construction).
struct LatencyBreakdown {
  std::uint64_t count = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
};

LatencyBreakdown SnapshotBreakdown(const char* histogram_name) {
  const obs::Histogram& h =
      obs::Registry::Global().GetHistogram(histogram_name);
  return {h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999)};
}

/// Per-dataset sweep results, for the tables and the JSON trail.
struct DatasetPerf {
  std::string dataset;
  std::string kind;  // "spatial" or "sequence".
  std::vector<double> fit_seconds;     // Mean per ε, in PaperEpsilons order.
  std::vector<double> synopsis_sizes;  // Mean per ε.
  std::size_t jobs = 0;                // ε grid × reps.
  double wall_seconds = 0.0;           // Aggregate wall clock of the sweep.
  // The served path: this dataset's default method answering a workload
  // through the AsyncEngine (queue + admission + future) and a closed loop
  // of `clients` concurrent clients.
  std::string served_method;
  std::size_t served_queries = 0;
  double async_batch_seconds = 0.0;
  double closed_loop_qps = 0.0;
  // Engine-side breakdown of the served workload, from the metrics
  // registry (reset at the start of this dataset's serving phase).
  LatencyBreakdown queue_wait;
  LatencyBreakdown kernel;
  bool served = false;
};

/// Per-method serving results on one dataset at ε = 1.
struct MethodPerf {
  std::string method;
  double fit_seconds_mean = 0.0;
  double synopsis_size_mean = 0.0;
  std::size_t query_count = 0;
  double batch_query_seconds = 0.0;  // One QueryBatch over the workload.
  double loop_query_seconds = 0.0;   // Spatial only: one Query at a time.
  double async_batch_seconds = 0.0;
  double closed_loop_qps = 0.0;
  bool served = false;  // The AsyncEngine closed loop completed cleanly.
};

/// The Table-4 fit sweep — one code path for both kinds: per-(ε, rep) jobs
/// with pre-forked Rngs, sharded by the runner over the registry method.
DatasetPerf RunFitSweep(serve::ThreadPool& pool, const DatasetHolder& h) {
  const std::size_t reps = Repetitions(3);
  const serve::ParallelRunner runner(pool);  // Uncached: this bench times fits.

  std::vector<serve::FitJob> jobs;
  jobs.reserve(PaperEpsilons().size() * reps);
  for (double epsilon : PaperEpsilons()) {
    Rng master(h.FitSeed());
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({h.FitMethod(), h.FitOptions(), epsilon, master.Fork()});
    }
  }

  DatasetPerf perf;
  perf.dataset = h.name;
  perf.kind = std::string(release::DatasetKindName(h.kind));
  perf.jobs = jobs.size();
  std::vector<serve::FitResult> results;
  perf.wall_seconds = Seconds([&] {
    results = runner.FitAllTimed(h.View(), std::move(jobs));
  });

  for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
    double total_time = 0.0, total_nodes = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const serve::FitResult& r = results[e * reps + rep];
      total_time += r.fit_seconds;
      total_nodes += static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds.push_back(total_time / static_cast<double>(reps));
    perf.synopsis_sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  return perf;
}

/// One closed-loop AsyncEngine measurement: submit the workload once for
/// the async-batch column, then `clients` threads × `rounds` back-to-back
/// submissions for aggregate throughput.  `submit` wraps the kind-specific
/// Submit*QueryBatch call; returns false (with a diagnostic) when the
/// served path failed.
bool ClosedLoopServe(
    const std::string& label, std::size_t clients, std::size_t query_count,
    const std::function<server::Future<server::QueryBatchResponse>()>&
        submit,
    double* async_batch_seconds, double* closed_loop_qps) {
  bool ok = true;
  *async_batch_seconds = Seconds([&] {
    const auto response = submit().Get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "error: async serving %s: %s\n", label.c_str(),
                   response.status.ToString().c_str());
      ok = false;
    }
  });
  if (!ok) return false;

  const std::size_t rounds = 3;
  std::size_t answered = 0;
  const double closed_loop_seconds = Seconds([&] {
    std::vector<std::thread> threads;
    std::atomic<std::size_t> total{0};
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        std::size_t mine = 0;
        for (std::size_t r = 0; r < rounds; ++r) {
          const auto response = submit().Get();
          if (response.status.ok()) mine += response.answers.size();
        }
        total.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();
    answered = total.load();
  });
  *closed_loop_qps =
      closed_loop_seconds > 0.0
          ? static_cast<double>(answered) / closed_loop_seconds
          : 0.0;
  return answered >= query_count * clients * rounds;
}

/// The served path for one dataset: its default method answering a
/// kind-appropriate workload through a real AsyncEngine.  Every listed
/// dataset goes through here; a failure is reported by the caller as a
/// hard error (the closed-loop JSON must never under-report coverage).
void RunServingPhase(serve::ThreadPool& pool, const DatasetHolder& h,
                     std::size_t query_count, std::size_t clients,
                     DatasetPerf* perf) {
  server::AsyncEngine engine(h.View(), pool, serve::SharedSynopsisCache());
  const server::FitSpec spec{h.FitMethod(), h.FitOptions(), /*epsilon=*/1.0,
                             h.FitSeed()};
  perf->served_method = spec.method;

  // Scope the engine's queue-wait and kernel histograms to this dataset's
  // serving phase: datasets run serially, so a Reset here makes the
  // snapshot below a per-dataset breakdown.
  obs::Registry::Global().GetHistogram("engine.queue_wait_us").Reset();
  obs::Registry::Global().GetHistogram("engine.kernel_us").Reset();

  if (h.kind == release::DatasetKind::kSpatial) {
    Rng workload_rng(0xBA7C4);
    std::vector<Box> queries;
    for (const QuerySizeBand& band : kPaperBands) {
      const auto band_queries = GenerateRangeQueries(
          h.spatial->domain, query_count / std::size(kPaperBands), band,
          workload_rng);
      queries.insert(queries.end(), band_queries.begin(),
                     band_queries.end());
    }
    perf->served_queries = queries.size();
    perf->served = ClosedLoopServe(
        h.name + "/" + spec.method, clients, queries.size(),
        [&] { return engine.SubmitQueryBatch(spec, queries); },
        &perf->async_batch_seconds, &perf->closed_loop_qps);
  } else {
    Rng workload_rng(0xBA7C5);
    const std::vector<release::SequenceQuery> queries =
        GenerateSequenceQueries(h.sequence->truncated, query_count,
                                workload_rng);
    perf->served_queries = queries.size();
    perf->served = ClosedLoopServe(
        h.name + "/" + spec.method, clients, queries.size(),
        [&] { return engine.SubmitSeqQueryBatch(spec, queries); },
        &perf->async_batch_seconds, &perf->closed_loop_qps);
  }
  perf->queue_wait = SnapshotBreakdown("engine.queue_wait_us");
  perf->kernel = SnapshotBreakdown("engine.kernel_us");
}

/// Companion sweep: build + serving time of every registered method of the
/// dataset's kind at ε = 1, one row per registry entry, all through the
/// same AsyncEngine closed loop.
std::vector<MethodPerf> RunRegistrySweep(serve::ThreadPool& pool,
                                         const DatasetHolder& h,
                                         std::size_t query_count,
                                         std::size_t clients) {
  const std::size_t reps = Repetitions(3);
  const double epsilon = 1.0;
  const serve::ParallelRunner runner(pool, &serve::SharedSynopsisCache());
  server::AsyncEngine engine(h.View(), pool, serve::SharedSynopsisCache());

  // Kind-appropriate workload, generated once for every method row.
  std::vector<Box> boxes;
  std::vector<release::SequenceQuery> seq_queries;
  if (h.kind == release::DatasetKind::kSpatial) {
    Rng workload_rng(0xBA7C4);
    for (const QuerySizeBand& band : kPaperBands) {
      const auto band_queries = GenerateRangeQueries(
          h.spatial->domain, query_count / std::size(kPaperBands), band,
          workload_rng);
      boxes.insert(boxes.end(), band_queries.begin(), band_queries.end());
    }
  } else {
    Rng workload_rng(0xBA7C5);
    seq_queries = GenerateSequenceQueries(h.sequence->truncated, query_count,
                                          workload_rng);
  }

  const std::vector<MethodSpec> specs =
      h.kind == release::DatasetKind::kSpatial
          ? AllRegisteredSpecs(h.spatial->points.dim(), DiscretizationCells())
          : SequenceSpecs(h.sequence->l_top);

  std::vector<MethodPerf> out;
  for (const MethodSpec& spec : specs) {
    const std::uint64_t seed =
        0x7E59 ^ std::hash<std::string>{}(spec.name);
    Rng master(seed);
    std::vector<serve::FitJob> jobs;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      jobs.push_back({spec.name, spec.options, epsilon, master.Fork()});
    }
    const auto results = runner.FitAllTimed(h.View(), std::move(jobs));

    MethodPerf perf;
    perf.method = spec.name;
    for (const serve::FitResult& r : results) {
      perf.fit_seconds_mean += r.fit_seconds;
      perf.synopsis_size_mean +=
          static_cast<double>(r.method->Metadata().synopsis_size);
    }
    perf.fit_seconds_mean /= static_cast<double>(reps);
    perf.synopsis_size_mean /= static_cast<double>(reps);

    const release::Method& method = *results.front().method;
    // The spec's seed recreates the first rep's randomness (Rng(seed).
    // Fork() — the ReleaseSession derivation), so the engine serves the
    // already-cached synopsis and the measurement isolates the queue +
    // dispatch + query cost.
    const server::FitSpec fit_spec{spec.name, spec.options, epsilon, seed};
    if (h.kind == release::DatasetKind::kSpatial) {
      perf.query_count = boxes.size();
      std::vector<double> batch_answers;
      perf.batch_query_seconds =
          Seconds([&] { batch_answers = method.QueryBatch(boxes); });
      double loop_total = 0.0;
      perf.loop_query_seconds = Seconds([&] {
        for (const Box& q : boxes) loop_total += method.Query(q);
      });
      // Keep the loop honest: the sum depends on every Query call.
      if (loop_total == 0.0 && !batch_answers.empty()) {
        std::fprintf(stderr, "(workload sum exactly zero on %s)\n",
                     spec.name.c_str());
      }
      perf.served = ClosedLoopServe(
          h.name + "/" + spec.name, clients, boxes.size(),
          [&] { return engine.SubmitQueryBatch(fit_spec, boxes); },
          &perf.async_batch_seconds, &perf.closed_loop_qps);
    } else {
      perf.query_count = seq_queries.size();
      perf.batch_query_seconds = Seconds(
          // lint-ok: discarded-status — timing-only pass; answers unused.
          [&] { (void)method.QueryBatch(std::span(seq_queries)); });
      // Sequence methods have no per-box Query; the batch is the only
      // client-visible path.
      perf.loop_query_seconds = 0.0;
      perf.served = ClosedLoopServe(
          h.name + "/" + spec.name, clients, seq_queries.size(),
          [&] { return engine.SubmitSeqQueryBatch(fit_spec, seq_queries); },
          &perf.async_batch_seconds, &perf.closed_loop_qps);
    }
    out.push_back(perf);
  }
  return out;
}

/// Socket-phase results: the selected wire loop serving every dataset as a
/// tenant, driven by `clients` concurrent connections.
struct SocketPerf {
  std::string loop;            // "epoll" or "threads".
  std::size_t clients = 0;     // Concurrent connections.
  std::size_t rounds = 0;      // Closed-loop requests per connection.
  std::size_t batch = 0;       // Queries per request frame.
  std::size_t requests = 0;    // Completed request/reply pairs.
  std::size_t failed = 0;      // Connections that errored or stalled.
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  double queries_per_second = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t peak_connections = 0;  // Epoll loop's max_concurrent.
  // Server-side breakdown of the closed-loop traffic, from the metrics
  // registry (reset after warm-up, so counts cover exactly the loop).
  LatencyBreakdown queue_wait;
  LatencyBreakdown kernel;
  LatencyBreakdown request;  // End-to-end per-frame; epoll loop only.
  // The GetStats-over-the-wire consistency gate: counters the server
  // reports must agree bit-for-bit with this driver's own accounting.
  std::uint64_t stats_admitted = 0;
  std::uint64_t stats_shed = 0;
  bool stats_consistent = false;
  bool parity = false;  // Socket answers == in-process (== oracle loop).
  bool ok = false;
};

/// The integer right after `"name":` in a JSON snapshot (searching from
/// `from`, so histogram sub-objects can be scoped); 0 when absent.
std::uint64_t JsonUintField(const std::string& json, const std::string& name,
                            std::size_t from = 0) {
  const std::string key = "\"" + name + "\":";
  const std::size_t at = json.find(key, from);
  if (at == std::string::npos) return 0;
  return std::strtoull(json.c_str() + at + key.size(), nullptr, 10);
}

/// Latency percentile over the recorded per-request samples (nearest-rank
/// on the sorted vector; sorts in place).
double PercentileMs(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const double rank = q * static_cast<double>(samples->size() - 1);
  const std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  return (*samples)[std::min(idx, samples->size() - 1)];
}

/// Raises RLIMIT_NOFILE towards `want` descriptors (driver + server ends
/// of every connection live in this one process); best effort.
void EnsureFdHeadroom(std::size_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  const rlim_t target = static_cast<rlim_t>(want);
  if (rl.rlim_cur >= target) return;
  rl.rlim_cur =
      rl.rlim_max == RLIM_INFINITY ? target : std::min(target, rl.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

/// Single-threaded epoll client driver: `clients` concurrent non-blocking
/// connections, each a closed loop of `rounds` pre-framed requests (peer i
/// replays wires[i % wires.size()], so traffic round-robins the tenants).
/// Per-request latency — first request byte to last reply byte — lands in
/// `latencies_ms`.  Returns true when every connection completed all its
/// rounds with well-formed QueryBatchReply frames.
bool DriveSocketClosedLoop(std::uint16_t port,
                           const std::vector<std::string>& wires,
                           std::size_t clients, std::size_t rounds,
                           std::vector<double>* latencies_ms,
                           std::size_t* failed) {
  struct Peer {
    int fd = -1;
    const std::string* wire = nullptr;
    std::size_t sent = 0;
    std::string reply;
    std::size_t rounds_done = 0;
    bool connecting = true;
    bool done = false;
    std::chrono::steady_clock::time_point start;
  };
  const auto read_u32 = [](const char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;  // Wire scalars are little-endian; so is every target here.
  };

  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  std::vector<Peer> peers(clients);
  std::size_t active = 0;
  const auto fail_peer = [&](Peer& p, const char* why) {
    if (*failed < 5 && !p.done) {
      std::fprintf(stderr,
                   "warning: socket client failed: %s (errno=%d, "
                   "completed rounds=%zu)\n",
                   why, errno, p.rounds_done);
    }
    if (p.fd >= 0) {
      ::close(p.fd);  // close() drops the epoll registration with the fd.
      p.fd = -1;
    }
    if (!p.done) {
      p.done = true;
      ++*failed;
      --active;
    }
  };
  const auto start_round = [&](Peer& p, std::uint64_t idx) {
    p.sent = 0;
    p.reply.clear();
    p.start = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = idx;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, p.fd, &ev);
  };

  for (std::size_t i = 0; i < clients; ++i) {
    Peer& p = peers[i];
    p.wire = &wires[i % wires.size()];
    p.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (p.fd < 0) {
      p.done = true;
      ++*failed;
      continue;
    }
    int one = 1;
    ::setsockopt(p.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int rc =
        ::connect(p.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(p.fd);
      p.fd = -1;
      p.done = true;
      ++*failed;
      continue;
    }
    p.connecting = rc != 0;
    ++active;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    if (::epoll_ctl(ep, EPOLL_CTL_ADD, p.fd, &ev) != 0) {
      fail_peer(p, "ctl-add");
      continue;
    }
    if (!p.connecting) start_round(p, i);
  }

  epoll_event events[256];
  while (active > 0) {
    const int n = ::epoll_wait(ep, events, 256, 30000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // 30 s of total silence: the loop under test hung.
    for (int e = 0; e < n; ++e) {
      const std::uint64_t idx = events[e].data.u64;
      Peer& p = peers[idx];
      if (p.done) continue;
      if ((events[e].events & (EPOLLERR | EPOLLHUP)) != 0) {
        fail_peer(p, "err/hup");
        continue;
      }
      if ((events[e].events & EPOLLOUT) != 0) {
        if (p.connecting) {
          int err = 0;
          socklen_t len = sizeof(err);
          if (::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
              err != 0) {
            fail_peer(p, "connect");
            continue;
          }
          p.connecting = false;
          start_round(p, idx);
        }
        bool dead = false;
        while (p.sent < p.wire->size()) {
          const ssize_t w =
              ::send(p.fd, p.wire->data() + p.sent, p.wire->size() - p.sent,
                     MSG_NOSIGNAL);
          if (w > 0) {
            p.sent += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          fail_peer(p, "send");
          dead = true;
          break;
        }
        if (dead) continue;
        if (p.sent == p.wire->size()) {
          epoll_event ev{};  // Level-triggered: stop polling writability.
          ev.events = EPOLLIN;
          ev.data.u64 = idx;
          ::epoll_ctl(ep, EPOLL_CTL_MOD, p.fd, &ev);
        }
      }
      if ((events[e].events & EPOLLIN) == 0 || p.connecting) continue;
      bool dead = false;
      while (true) {
        char buf[65536];
        const ssize_t r = ::recv(p.fd, buf, sizeof(buf), 0);
        if (r > 0) {
          p.reply.append(buf, static_cast<std::size_t>(r));
          continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        fail_peer(p, "recv");  // 0 = server closed mid-conversation: a failure.
        dead = true;
        break;
      }
      if (dead) continue;
      if (p.reply.size() < 4) continue;
      const std::uint32_t frame_len = read_u32(p.reply.data());
      if (p.reply.size() < 4 + static_cast<std::size_t>(frame_len)) continue;
      if (p.reply.size() != 4 + static_cast<std::size_t>(frame_len) ||
          frame_len < 4 ||
          read_u32(p.reply.data() + 4) !=
              static_cast<std::uint32_t>(
                  server::MessageType::kQueryBatchReply)) {
        fail_peer(p, "reply");  // ErrorReply or garbage: the served path failed.
        continue;
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - p.start)
                            .count();
      latencies_ms->push_back(ms);
      if (++p.rounds_done == rounds) {
        ::close(p.fd);
        p.fd = -1;
        p.done = true;
        --active;
      } else {
        start_round(p, idx);
      }
    }
  }
  for (Peer& p : peers) {
    if (!p.done) fail_peer(p, "leftover");
  }
  ::close(ep);
  return *failed == 0;
}

/// One tenant's socket-phase material: its registry fingerprint, the warm
/// spec, the pre-encoded request frame and the decoded workload for the
/// parity check.
struct TenantTraffic {
  std::uint64_t fingerprint = 0;
  server::FitSpec spec;
  std::string payload;  // Encoded QueryBatch/SeqQueryBatch frame payload.
  std::vector<Box> boxes;
  std::vector<release::SequenceQuery> seq_queries;
};

/// Fetches every tenant's workload answers through one blocking client on
/// `port`; clears *ok on any failure.
std::vector<std::vector<double>> FetchSocketAnswers(
    std::uint16_t port, const std::vector<TenantTraffic>& traffic, bool* ok) {
  std::vector<std::vector<double>> out;
  auto client = server::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    *ok = false;
    return out;
  }
  for (const TenantTraffic& t : traffic) {
    client.value().SelectDataset(t.fingerprint);
    auto answers =
        t.boxes.empty()
            ? client.value().SeqQueryBatch(t.spec, t.seq_queries)
            : client.value().QueryBatch(t.spec, t.boxes);
    if (!answers.ok()) {
      std::fprintf(stderr, "error: socket parity fetch: %s\n",
                   answers.status().ToString().c_str());
      *ok = false;
      return out;
    }
    out.push_back(std::move(answers.value()));
  }
  return out;
}

/// The socket serving phase: every dataset registered as a tenant of one
/// DatasetRegistry, served by the selected loop, load-tested by the epoll
/// client driver, then parity-checked against the in-process engines (and,
/// in epoll mode, against a ServerLoop oracle on the same dispatcher).
SocketPerf RunSocketPhase(serve::ThreadPool& pool,
                          const std::vector<DatasetHolder>& holders,
                          const std::string& loop_kind, std::size_t clients) {
  SocketPerf perf;
  perf.loop = loop_kind;
  perf.clients = clients;
  perf.rounds = 3;
  if (const char* value = std::getenv("PRIVTREE_SOCKET_ROUNDS")) {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) perf.rounds = static_cast<std::size_t>(parsed);
  }
  perf.batch = 16;
  EnsureFdHeadroom(2 * clients + 256);

  // A deployment sized for N concurrent connections provisions its request
  // queue for N in-flight requests — otherwise admission control correctly
  // sheds the burst (that behaviour has its own tests; this phase measures
  // sustained serving, so every request must be admitted).
  server::DatasetRegistryOptions registry_options;
  registry_options.engine.admission.max_queue_depth =
      std::max<std::size_t>(256, 2 * clients);
  server::DatasetRegistry registry(pool, serve::SharedSynopsisCache(),
                                   registry_options);
  server::Dispatcher dispatcher(registry);
  std::vector<TenantTraffic> traffic;
  std::vector<std::string> wires;
  for (const DatasetHolder& h : holders) {
    const auto fingerprint = registry.Register(h.name, h.View());
    if (!fingerprint.ok()) {
      std::fprintf(stderr, "error: registering %s: %s\n", h.name.c_str(),
                   fingerprint.status().ToString().c_str());
      return perf;
    }
    TenantTraffic t;
    t.fingerprint = fingerprint.value();
    t.spec = {h.FitMethod(), h.FitOptions(), /*epsilon=*/1.0, h.FitSeed()};
    if (h.kind == release::DatasetKind::kSpatial) {
      Rng workload_rng(0xBA7C6);
      t.boxes = GenerateRangeQueries(h.spatial->domain, perf.batch,
                                     kPaperBands[0], workload_rng);
      t.payload = server::EncodeQueryBatch(
          {t.spec, /*deadline=*/0, t.fingerprint, t.boxes});
    } else {
      Rng workload_rng(0xBA7C7);
      t.seq_queries = GenerateSequenceQueries(h.sequence->truncated,
                                              perf.batch, workload_rng);
      t.payload = server::EncodeSeqQueryBatch(
          {t.spec, /*deadline=*/0, t.fingerprint, t.seq_queries});
    }
    std::string wire;
    const std::uint32_t len = static_cast<std::uint32_t>(t.payload.size());
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire += t.payload;
    wires.push_back(std::move(wire));
    traffic.push_back(std::move(t));
  }

  auto listener = server::ListenSocket::Listen(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: socket phase listen: %s\n",
                 listener.status().ToString().c_str());
    return perf;
  }
  std::optional<server::EventLoop> event_loop;
  std::optional<server::ServerLoop> thread_loop;
  std::uint16_t port = 0;
  std::thread server_thread;
  if (loop_kind == "epoll") {
    event_loop.emplace(dispatcher, std::move(listener).value());
    port = event_loop->port();
    server_thread = std::thread([&] { (void)event_loop->Run(); });
  } else {
    thread_loop.emplace(dispatcher, std::move(listener).value());
    port = thread_loop->port();
    server_thread = std::thread([&] { (void)thread_loop->Run(); });
  }
  const auto stop_server = [&] {
    if (event_loop) event_loop->Stop();
    if (thread_loop) thread_loop->Stop();
    if (server_thread.joinable()) server_thread.join();
  };

  // Warm every tenant's ε=1 synopsis through the wire, so the load test
  // measures serving (queue + dispatch + query), not first-fit cost.
  {
    auto warm = server::Client::Connect("127.0.0.1", port);
    if (!warm.ok()) {
      std::fprintf(stderr, "error: socket phase warm connect: %s\n",
                   warm.status().ToString().c_str());
      stop_server();
      return perf;
    }
    for (const TenantTraffic& t : traffic) {
      warm.value().SelectDataset(t.fingerprint);
      const auto fit = warm.value().Fit(t.spec);
      if (!fit.ok()) {
        std::fprintf(stderr, "error: warming %s: %s\n",
                     t.spec.method.c_str(), fit.status().ToString().c_str());
        stop_server();
        return perf;
      }
    }
  }

  // Zero the registry so its counters cover exactly the closed loop.  The
  // admission / engine / served-frame increments all land strictly before
  // their reply bytes — which this thread has already received — so none
  // of the warm traffic can trickle in after the Reset.  (The one
  // exception: the final warm request's *trace* finishes after its reply
  // flushes, so "server.request_us" may carry one stray sample; no
  // consistency check below leans on it.)
  obs::Registry::Global().Reset();

  std::vector<double> latencies_ms;
  latencies_ms.reserve(clients * perf.rounds);
  const double wall = Seconds([&] {
    perf.ok = DriveSocketClosedLoop(port, wires, clients, perf.rounds,
                                    &latencies_ms, &perf.failed);
  });
  perf.requests = latencies_ms.size();
  perf.wall_seconds = wall;
  perf.requests_per_second =
      wall > 0.0 ? static_cast<double>(perf.requests) / wall : 0.0;
  perf.queries_per_second =
      perf.requests_per_second * static_cast<double>(perf.batch);
  perf.p50_ms = PercentileMs(&latencies_ms, 0.50);
  perf.p99_ms = PercentileMs(&latencies_ms, 0.99);
  perf.queue_wait = SnapshotBreakdown("engine.queue_wait_us");
  perf.kernel = SnapshotBreakdown("engine.kernel_us");
  perf.request = SnapshotBreakdown("server.request_us");

  // GetStats over the wire — fetched *before* the parity traffic below
  // adds requests: the snapshot's admission and engine counters must agree
  // bit-for-bit with this driver's closed-loop accounting.  Every driver
  // frame is one admitted request, one queue wait, and one kernel batch;
  // the shed counters must read zero (the queue was provisioned for
  // 2x clients above).  On the epoll loop, served frames additionally
  // equal the driver's requests plus this client's Hello and the GetStats
  // frame itself.
#ifdef PRIVTREE_NO_METRICS
  // Nothing to compare: the registry is compiled out and GetStats
  // truthfully reports empty sections.  The gate passes vacuously so the
  // metrics-off build still runs end to end for throughput comparison.
  perf.stats_consistent = true;
#else
  if (perf.ok) {
    auto stats_client = server::Client::Connect("127.0.0.1", port);
    if (!stats_client.ok()) {
      std::fprintf(stderr, "error: GetStats connect: %s\n",
                   stats_client.status().ToString().c_str());
      perf.ok = false;
    } else {
      const auto json = stats_client.value().GetStatsJson();
      if (!json.ok()) {
        std::fprintf(stderr, "error: GetStats fetch: %s\n",
                     json.status().ToString().c_str());
        perf.ok = false;
      } else {
        const std::string& snapshot = json.value();
        perf.stats_admitted = JsonUintField(snapshot, "admission.admitted");
        perf.stats_shed =
            JsonUintField(snapshot, "admission.shed_queue_full") +
            JsonUintField(snapshot, "admission.shed_cache_saturated");
        const std::size_t queue_at =
            snapshot.find("\"engine.queue_wait_us\":");
        const std::size_t kernel_at = snapshot.find("\"engine.kernel_us\":");
        const std::uint64_t queue_count =
            queue_at == std::string::npos
                ? 0
                : JsonUintField(snapshot, "count", queue_at);
        const std::uint64_t kernel_count =
            kernel_at == std::string::npos
                ? 0
                : JsonUintField(snapshot, "count", kernel_at);
        perf.stats_consistent =
            perf.stats_admitted == perf.requests && perf.stats_shed == 0 &&
            queue_count == perf.requests && kernel_count == perf.requests;
        if (loop_kind == "epoll") {
          const std::uint64_t served_frames =
              JsonUintField(snapshot, "event.served_frames");
          perf.stats_consistent = perf.stats_consistent &&
                                  served_frames == perf.requests + 2;
        }
        if (!perf.stats_consistent) {
          std::fprintf(stderr,
                       "error: GetStats counters disagree with the driver: "
                       "admitted=%llu shed=%llu queue_wait=%llu "
                       "kernel=%llu vs %zu driver requests\n",
                       static_cast<unsigned long long>(perf.stats_admitted),
                       static_cast<unsigned long long>(perf.stats_shed),
                       static_cast<unsigned long long>(queue_count),
                       static_cast<unsigned long long>(kernel_count),
                       perf.requests);
          perf.ok = false;
        }
      }
    }
  }
#endif  // PRIVTREE_NO_METRICS

  // Parity: the answers this loop serves vs. the in-process AsyncEngine
  // answers for the same (spec, fingerprint, workload) — and, in epoll
  // mode, vs. a thread-per-connection oracle sharing the dispatcher.
  bool parity = true;
  const auto socket_answers = FetchSocketAnswers(port, traffic, &parity);
  std::vector<std::vector<double>> local_answers;
  for (const TenantTraffic& t : traffic) {
    server::AsyncEngine* engine = registry.Find(t.fingerprint);
    if (engine == nullptr) {
      parity = false;
      break;
    }
    auto response = t.boxes.empty()
                        ? engine->SubmitSeqQueryBatch(t.spec, t.seq_queries)
                              .Get()
                        : engine->SubmitQueryBatch(t.spec, t.boxes).Get();
    if (!response.status.ok()) {
      parity = false;
      break;
    }
    local_answers.push_back(std::move(response.answers));
  }
  parity = parity && socket_answers == local_answers;
  if (loop_kind == "epoll" && parity) {
    auto oracle_listener = server::ListenSocket::Listen(0);
    if (oracle_listener.ok()) {
      server::ServerLoop oracle(dispatcher,
                                std::move(oracle_listener).value());
      // lint-ok: discarded-status — the bench tolerates a failed oracle
      // loop (oracle_ok tracks per-query success below).
      std::thread oracle_thread([&] { (void)oracle.Run(); });
      bool oracle_ok = true;
      const auto oracle_answers =
          FetchSocketAnswers(oracle.port(), traffic, &oracle_ok);
      oracle.Stop();
      oracle_thread.join();
      parity = oracle_ok && oracle_answers == socket_answers;
    } else {
      parity = false;
    }
  }
  perf.parity = parity;
  perf.ok = perf.ok && parity;

  if (event_loop) perf.peak_connections = event_loop->stats().max_concurrent;
  stop_server();
  return perf;
}

// ── Chaos phase (--chaos) ─────────────────────────────────────────────────
//
// A closed-loop resilience run instead of the Table-4 sweep: N resilient
// server::Clients hammer one tenant over the epoll loop, the server loop is
// torn down and restarted on the same port mid-run, and every client must
// ride through the restart via its reconnect + retry discipline with zero
// failed requests and answers bit-for-bit identical to the pre-restart
// reference.  The committed BENCH_chaos.json tracks recovery time, retry
// counts, and the error rate across PRs.

struct ChaosPerf {
  std::size_t clients = 0;
  std::size_t rounds_per_phase = 0;   // Requests per client per phase.
  std::size_t requests = 0;           // Completed request/reply pairs.
  std::size_t failed = 0;             // Requests that exhausted retries.
  std::size_t mismatches = 0;         // Served answers != reference bits.
  std::uint64_t retries = 0;          // Summed client telemetry.
  std::uint64_t reconnects = 0;
  double recovery_millis = 0.0;       // Restart start -> first served reply.
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  bool ok = false;
};

ChaosPerf RunChaosPhase(serve::ThreadPool& pool, const DatasetHolder& holder,
                        std::size_t clients) {
  ChaosPerf perf;
  perf.clients = std::max<std::size_t>(2, std::min<std::size_t>(clients, 16));
  perf.rounds_per_phase = 40;

  server::DatasetRegistry registry(pool, serve::SharedSynopsisCache());
  server::Dispatcher dispatcher(registry);
  const auto fingerprint = registry.Register(holder.name, holder.View());
  if (!fingerprint.ok()) {
    std::fprintf(stderr, "error: chaos registering %s: %s\n",
                 holder.name.c_str(),
                 fingerprint.status().ToString().c_str());
    return perf;
  }
  const server::FitSpec spec{holder.FitMethod(), holder.FitOptions(),
                             /*epsilon=*/1.0, holder.FitSeed()};
  Rng workload_rng(0xBA7C6);
  const std::vector<Box> boxes =
      GenerateRangeQueries(holder.spatial->domain, 16, kPaperBands[0],
                           workload_rng);

  auto listener = server::ListenSocket::Listen(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "error: chaos listen: %s\n",
                 listener.status().ToString().c_str());
    return perf;
  }
  const std::uint16_t port = listener.value().port();
  auto loop = std::make_unique<server::EventLoop>(
      dispatcher, std::move(listener).value());
  std::thread serving([&loop] { (void)loop->Run(); });

  server::ClientOptions options;
  options.max_attempts = 10;
  options.base_backoff_millis = 10;
  options.max_backoff_millis = 500;

  // The reference bits every later answer must reproduce exactly (the fit
  // is deterministic in the spec, and the synopsis cache outlives the
  // server-loop restart).
  std::vector<double> reference;
  {
    auto warm = server::Client::Connect("127.0.0.1", port, options);
    if (!warm.ok()) {
      std::fprintf(stderr, "error: chaos warm connect: %s\n",
                   warm.status().ToString().c_str());
      loop->Stop();
      serving.join();
      return perf;
    }
    warm.value().SelectDataset(fingerprint.value());
    auto answers = warm.value().QueryBatch(spec, boxes);
    if (!answers.ok()) {
      std::fprintf(stderr, "error: chaos warm query: %s\n",
                   answers.status().ToString().c_str());
      loop->Stop();
      serving.join();
      return perf;
    }
    reference = std::move(answers).value();
  }

  // Two phases per worker with a barrier between: every client finishes
  // phase 1, the server restarts while all of them hold live (now dead)
  // connections, then phase 2 forces each one through reconnect + resend.
  std::atomic<std::size_t> at_barrier{0};
  std::atomic<bool> barrier_open{false};
  std::atomic<std::size_t> requests{0}, failed{0}, mismatches{0};
  std::atomic<std::uint64_t> retries{0}, reconnects{0};
  const auto worker = [&](std::uint64_t index) {
    server::ClientOptions worker_options = options;
    worker_options.backoff_seed = 0xC4A05 + index;
    auto connected = server::Client::Connect("127.0.0.1", port,
                                             worker_options);
    if (!connected.ok()) {
      failed += 2 * perf.rounds_per_phase;
      ++at_barrier;
      return;
    }
    server::Client client = std::move(connected).value();
    client.SelectDataset(fingerprint.value());
    const auto run_phase = [&] {
      for (std::size_t r = 0; r < perf.rounds_per_phase; ++r) {
        auto answers = client.QueryBatch(spec, boxes);
        ++requests;
        if (!answers.ok()) {
          ++failed;
        } else if (answers.value() != reference) {
          ++mismatches;
        }
      }
    };
    run_phase();
    ++at_barrier;
    while (!barrier_open.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    run_phase();
    retries += client.telemetry().retries;
    reconnects += client.telemetry().reconnects;
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < perf.clients; ++i) {
    workers.emplace_back(worker, i);
  }
  while (at_barrier.load() < perf.clients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The restart: tear the loop down and bring a fresh one up on the same
  // port.  Recovery time is restart initiation to the first served reply.
  const auto restart_start = std::chrono::steady_clock::now();
  loop->Stop();
  serving.join();
  auto relisten = server::ListenSocket::Listen(port);
  if (!relisten.ok()) {
    std::fprintf(stderr, "error: chaos re-listen: %s\n",
                 relisten.status().ToString().c_str());
    barrier_open.store(true, std::memory_order_release);
    for (std::thread& t : workers) t.join();
    return perf;
  }
  loop = std::make_unique<server::EventLoop>(dispatcher,
                                             std::move(relisten).value());
  serving = std::thread([&loop] { (void)loop->Run(); });
  {
    auto probe = server::Client::Connect("127.0.0.1", port, options);
    if (probe.ok()) {
      probe.value().SelectDataset(fingerprint.value());
      auto answers = probe.value().QueryBatch(spec, boxes);
      if (answers.ok()) {
        perf.recovery_millis =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - restart_start)
                .count();
        if (answers.value() != reference) ++mismatches;
      }
    }
    if (perf.recovery_millis == 0.0) {
      std::fprintf(stderr, "error: chaos recovery probe never served\n");
    }
  }
  barrier_open.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();
  perf.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  loop->Stop();
  serving.join();

  perf.requests = requests.load();
  perf.failed = failed.load();
  perf.mismatches = mismatches.load();
  perf.retries = retries.load();
  perf.reconnects = reconnects.load();
  perf.requests_per_second =
      perf.wall_seconds > 0.0
          ? static_cast<double>(perf.requests) / perf.wall_seconds
          : 0.0;
  perf.ok = perf.failed == 0 && perf.mismatches == 0 &&
            perf.recovery_millis > 0.0 &&
            perf.requests == 2 * perf.clients * perf.rounds_per_phase;
  return perf;
}

void WriteChaosJson(const std::string& path, std::size_t threads,
                    const std::string& dataset, const ChaosPerf& chaos) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  const double error_rate =
      chaos.requests > 0
          ? static_cast<double>(chaos.failed) /
                static_cast<double>(chaos.requests)
          : 1.0;
  std::fprintf(
      f,
      "{\n  \"threads\": %zu,\n  \"dataset\": \"%s\",\n"
      "  \"clients\": %zu,\n  \"rounds_per_phase\": %zu,\n"
      "  \"server_restarts\": 1,\n  \"requests\": %zu,\n"
      "  \"failed\": %zu,\n  \"error_rate\": %.6g,\n"
      "  \"parity_mismatches\": %zu,\n  \"retries\": %llu,\n"
      "  \"reconnects\": %llu,\n  \"recovery_millis\": %.6g,\n"
      "  \"wall_seconds\": %.6g,\n  \"requests_per_second\": %.6g,\n",
      threads, dataset.c_str(), chaos.clients, chaos.rounds_per_phase,
      chaos.requests, chaos.failed, error_rate, chaos.mismatches,
      static_cast<unsigned long long>(chaos.retries),
      static_cast<unsigned long long>(chaos.reconnects),
      chaos.recovery_millis, chaos.wall_seconds, chaos.requests_per_second);
  // Which fault-injection points actually fired (armed via
  // PRIVTREE_FAULTS; empty object on a fault-free run) — so a chaos
  // snapshot records not just that the run survived, but what it survived.
  auto fault_stats = fault::Injector::Global().AllStats();
  std::sort(fault_stats.begin(), fault_stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::fprintf(f, "  \"faults\": {");
  for (std::size_t i = 0; i < fault_stats.size(); ++i) {
    std::fprintf(f, "%s\"%s\": {\"hits\": %llu, \"fired\": %llu}",
                 i ? ", " : "", fault_stats[i].first.c_str(),
                 static_cast<unsigned long long>(fault_stats[i].second.hits),
                 static_cast<unsigned long long>(fault_stats[i].second.fired));
  }
  std::fprintf(f, "},\n  \"ok\": %s\n}\n", chaos.ok ? "true" : "false");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/// One registry-histogram breakdown as an inline JSON object (no trailing
/// separator): {"count":N,"p50_us":a,"p99_us":b,"p999_us":c}.
void WriteBreakdownJson(std::FILE* f, const char* name,
                        const LatencyBreakdown& b) {
  std::fprintf(f,
               "\"%s\": {\"count\": %llu, \"p50_us\": %llu, "
               "\"p99_us\": %llu, \"p999_us\": %llu}",
               name, static_cast<unsigned long long>(b.count),
               static_cast<unsigned long long>(b.p50_us),
               static_cast<unsigned long long>(b.p99_us),
               static_cast<unsigned long long>(b.p999_us));
}

void WriteMethodsJson(std::FILE* f, const std::vector<MethodPerf>& methods) {
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const MethodPerf& m = methods[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"fit_seconds_mean\": %.6g, "
        "\"synopsis_size_mean\": %.6g, \"queries\": %zu, "
        "\"batch_query_seconds\": %.6g, \"loop_query_seconds\": %.6g, "
        "\"async_batch_seconds\": %.6g, \"closed_loop_qps\": %.6g}%s\n",
        m.method.c_str(), m.fit_seconds_mean, m.synopsis_size_mean,
        m.query_count, m.batch_query_seconds, m.loop_query_seconds,
        m.async_batch_seconds, m.closed_loop_qps,
        i + 1 < methods.size() ? "," : "");
  }
}

void WriteJson(const std::string& path, std::size_t threads, std::size_t reps,
               std::size_t clients, const std::vector<DatasetPerf>& datasets,
               const std::string& sweep_dataset,
               const std::vector<MethodPerf>& methods,
               const std::string& seq_sweep_dataset,
               const std::vector<MethodPerf>& seq_methods,
               const SocketPerf& socket) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"reps\": %zu,\n", threads, reps);
  std::fprintf(f, "  \"clients\": %zu,\n", clients);
  std::fprintf(f, "  \"paper_scale\": %s,\n", PaperScale() ? "true" : "false");
  std::fprintf(f, "  \"table4\": [\n");
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const DatasetPerf& d = datasets[i];
    std::fprintf(f, "    {\"dataset\": \"%s\", \"kind\": \"%s\",\n",
                 d.dataset.c_str(), d.kind.c_str());
    std::fprintf(f, "     \"epsilons\": [");
    for (std::size_t e = 0; e < PaperEpsilons().size(); ++e) {
      std::fprintf(f, "%s%g", e ? ", " : "", PaperEpsilons()[e]);
    }
    std::fprintf(f, "],\n     \"fit_seconds_mean\": [");
    for (std::size_t e = 0; e < d.fit_seconds.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.fit_seconds[e]);
    }
    std::fprintf(f, "],\n     \"synopsis_size_mean\": [");
    for (std::size_t e = 0; e < d.synopsis_sizes.size(); ++e) {
      std::fprintf(f, "%s%.6g", e ? ", " : "", d.synopsis_sizes[e]);
    }
    std::fprintf(f,
                 "],\n     \"fit_jobs\": %zu, \"fit_wall_seconds\": %.6g, "
                 "\"fits_per_second\": %.6g,\n",
                 d.jobs, d.wall_seconds,
                 d.wall_seconds > 0.0
                     ? static_cast<double>(d.jobs) / d.wall_seconds
                     : 0.0);
    std::fprintf(f,
                 "     \"served\": %s, \"served_method\": \"%s\", "
                 "\"served_queries\": %zu, \"async_batch_seconds\": %.6g, "
                 "\"closed_loop_qps\": %.6g,\n     ",
                 d.served ? "true" : "false", d.served_method.c_str(),
                 d.served_queries, d.async_batch_seconds, d.closed_loop_qps);
    WriteBreakdownJson(f, "queue_wait_us", d.queue_wait);
    std::fprintf(f, ", ");
    WriteBreakdownJson(f, "kernel_us", d.kernel);
    std::fprintf(f, "}%s\n", i + 1 < datasets.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"registry_sweep\": {\"dataset\": \"%s\", "
                  "\"epsilon\": 1, \"methods\": [\n",
               sweep_dataset.c_str());
  WriteMethodsJson(f, methods);
  std::fprintf(f, "  ]},\n  \"sequence_sweep\": {\"dataset\": \"%s\", "
                  "\"epsilon\": 1, \"methods\": [\n",
               seq_sweep_dataset.c_str());
  WriteMethodsJson(f, seq_methods);
  std::fprintf(
      f,
      "  ]},\n  \"socket\": {\"loop\": \"%s\", \"clients\": %zu, "
      "\"rounds\": %zu, \"batch\": %zu,\n"
      "    \"requests\": %zu, \"failed\": %zu, \"wall_seconds\": %.6g, "
      "\"requests_per_second\": %.6g,\n"
      "    \"served_qps\": %.6g, \"p50_ms\": %.6g, \"p99_ms\": %.6g, "
      "\"peak_connections\": %llu, \"parity\": %s,\n    ",
      socket.loop.c_str(), socket.clients, socket.rounds, socket.batch,
      socket.requests, socket.failed, socket.wall_seconds,
      socket.requests_per_second, socket.queries_per_second, socket.p50_ms,
      socket.p99_ms,
      static_cast<unsigned long long>(socket.peak_connections),
      socket.parity ? "true" : "false");
  WriteBreakdownJson(f, "queue_wait_us", socket.queue_wait);
  std::fprintf(f, ", ");
  WriteBreakdownJson(f, "kernel_us", socket.kernel);
  std::fprintf(f, ", ");
  WriteBreakdownJson(f, "request_us", socket.request);
  std::fprintf(
      f,
      ",\n    \"stats\": {\"admitted\": %llu, \"shed\": %llu, "
      "\"consistent\": %s}}\n",
      static_cast<unsigned long long>(socket.stats_admitted),
      static_cast<unsigned long long>(socket.stats_shed),
      socket.stats_consistent ? "true" : "false");
  const serve::SynopsisCache::Stats cache = serve::SharedSynopsisCache().stats();
  std::fprintf(
      f,
      "  , \"cache\": {\"resident_bytes\": %zu, \"spill_writes\": %zu, "
      "\"spill_bytes_written\": %zu, \"spill_hits\": %zu, "
      "\"spill_bytes_read\": %zu, \"spill_scan_bytes\": %zu}\n",
      cache.resident_bytes, cache.spill_writes, cache.spill_bytes_written,
      cache.spill_hits, cache.spill_bytes_read, cache.spill_scan_bytes);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

// ── --kernels: compression + batch-kernel microbench ───────────────────────
//
// Measures the v3 (compressed) synopsis envelopes against their transcoded
// v2 (raw-payload) form, times envelope decode, and races the batch-query
// kernels against their reference implementations — all under a
// bit-for-bit parity gate: any divergence between compressed/vectorized
// served answers and the originals fails the phase (exit 1).  Writes
// BENCH_kernels.json, the committed snapshot CI's smoke step regenerates.

/// Runs `body` repeatedly until the measurement is long enough to trust on
/// a busy CI box; returns elapsed seconds and the rep count.
double TimedReps(std::size_t* reps_out, const std::function<void()>& body) {
  std::size_t reps = 0;
  double elapsed = 0.0;
  const auto start = std::chrono::steady_clock::now();
  do {
    body();
    ++reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < 0.25 || reps < 3);
  *reps_out = reps;
  return elapsed;
}

struct KernelParity {
  bool ok = true;
  void Check(bool condition, const std::string& what) {
    if (!condition) {
      ok = false;
      std::fprintf(stderr, "kernels: PARITY FAILURE: %s\n", what.c_str());
    }
  }
};

std::string SaveMethodToString(const release::Method& method) {
  std::ostringstream out;
  PRIVTREE_CHECK(method.Save(out).ok());
  return std::move(out).str();
}

/// The v3 envelope pulled apart (header checked, body fields parsed,
/// per-backend payload kept raw) so the kernel bench can re-wrap the same
/// synopsis as a v2 envelope and compare sizes honestly.
struct ParsedSynopsis {
  release::MethodMetadata metadata;
  std::string options_text;
  std::string payload;
};

constexpr std::size_t kEnvelopeV3HeaderSize = 36;

ParsedSynopsis ParseV3Envelope(const std::string& bytes) {
  ParsedSynopsis parsed;
  PRIVTREE_CHECK(bytes.size() >= kEnvelopeV3HeaderSize);
  ByteReader body(std::string_view(bytes).substr(kEnvelopeV3HeaderSize));
  std::uint64_t dim = 0, synopsis_size = 0;
  std::int32_t height = 0;
  PRIVTREE_CHECK(body.Str(&parsed.metadata.method));
  PRIVTREE_CHECK(body.Str(&parsed.options_text));
  PRIVTREE_CHECK(body.U64(&dim));
  PRIVTREE_CHECK(body.F64(&parsed.metadata.epsilon_spent));
  PRIVTREE_CHECK(body.U64(&synopsis_size));
  PRIVTREE_CHECK(body.I32(&height));
  parsed.metadata.dim = static_cast<std::size_t>(dim);
  parsed.metadata.synopsis_size = static_cast<std::size_t>(synopsis_size);
  parsed.metadata.height = height;
  parsed.payload = bytes.substr(bytes.size() - body.remaining());
  return parsed;
}

/// Re-encodes a v3 compressed payload as the raw v2 payload the previous
/// format stored, through the public codecs.
std::string TranscodePayloadToV2(const ParsedSynopsis& env) {
  const std::string& name = env.metadata.method;
  ByteReader in(env.payload);
  std::string v2;
  ByteWriter out(&v2);
  if (name == "privtree" || name == "simpletree") {
    DecompTree<SpatialCell> tree;
    std::vector<double> counts;
    PRIVTREE_CHECK(
        ReadSpatialTreeBodyCompressed(in, env.metadata.dim, &tree, &counts)
            .ok());
    WriteSpatialTreeBody(out, tree, counts);
  } else if (name == "kdtree") {
    DecompTree<Box> tree;
    std::vector<double> counts;
    PRIVTREE_CHECK(
        ReadBoxTreeBodyCompressed(in, env.metadata.dim, &tree, &counts).ok());
    WriteBoxTreeBody(out, tree, counts);
  } else if (name == "ag") {
    auto grid = ReadAdaptiveGridBodyCompressed(in);
    PRIVTREE_CHECK(grid.ok());
    out.I64(grid.value().level1_granularity());
    WriteBox(out, grid.value().domain());
    out.F64Span(grid.value().level1_counts());
    for (const GridHistogram& sub : grid.value().level2()) {
      WriteGridHistogram(out, sub);
    }
  } else if (name == "pst_privtree" || name == "ngram") {
    std::uint64_t n = 0;
    std::string packed;
    std::vector<NodeId> parents;
    PRIVTREE_CHECK(in.U64(&n));
    PRIVTREE_CHECK(in.Str(&packed));
    PRIVTREE_CHECK(UnpackDeltaI32(packed, n, &parents));
    out.U64(n);
    if (name == "pst_privtree") {
      const std::size_t beta = env.metadata.dim + 1;  // dim = alphabet size.
      for (std::uint64_t i = 0; i < n; ++i) {
        std::vector<double> hist;
        PRIVTREE_CHECK(in.F64Vec(beta, &hist));
        out.I32(parents[i]);
        out.F64Span(hist);
      }
    } else {
      std::vector<double> counts;
      PRIVTREE_CHECK(in.F64Vec(n, &counts));
      for (std::uint64_t i = 0; i < n; ++i) {
        out.I32(parents[i]);
        out.F64(counts[i]);
      }
    }
  } else {
    // Grid-family payloads are unchanged in v3 (noisy doubles don't pack).
    v2 = env.payload;
    return v2;
  }
  PRIVTREE_CHECK(in.AtEnd());
  return v2;
}

struct EnvelopeRow {
  std::string method;
  std::size_t v3_bytes = 0;
  std::size_t v2_bytes = 0;
  double decode_gbps = 0.0;
};

struct BatchRow {
  std::string path;
  std::size_t queries = 0;
  double reference_qps = 0.0;
  double scalar_qps = 0.0;  ///< 0 when the path has no separate scalar form.
  double simd_qps = 0.0;    ///< The production kernel (simd where compiled).
};

int RunKernelPhase(std::string json_path) {
  if (json_path.empty() || json_path == "BENCH_table4.json") {
    json_path = "BENCH_kernels.json";  // The committed repo-root snapshot.
  }
  KernelParity parity;

  // One skewed 2-d dataset for everything spatial (same shape the tests
  // pin), one mildly-Markovian sequence set for the sequence envelopes.
  const std::size_t point_count = privtree::PaperScale() ? 200000 : 40000;
  Rng data_rng(0x5EED);
  PointSet points(2);
  {
    std::vector<double> p(2);
    for (std::size_t i = 0; i < point_count; ++i) {
      p[0] = data_rng.NextDouble() * data_rng.NextDouble();
      p[1] = data_rng.NextDouble();
      points.Add(p);
    }
  }
  const Box domain = Box::UnitCube(2);
  SequenceDataset sequences(4);
  {
    Rng rng(0x5EC7E57);
    std::vector<Symbol> s;
    for (std::size_t i = 0; i < 1000; ++i) {
      s.clear();
      Symbol last = static_cast<Symbol>(rng.NextBounded(4));
      for (std::size_t j = 0; j <= rng.NextBounded(13); ++j) {
        last = static_cast<Symbol>(rng.NextDouble() < 0.6 ? last
                                                          : rng.NextBounded(4));
        s.push_back(last);
      }
      sequences.Add(s);
    }
    sequences = sequences.Truncate(12);
  }

  Rng query_rng(0xBEEF);
  const std::size_t query_count = privtree::PaperScale() ? 20000 : 4000;
  const std::vector<Box> queries =
      GenerateRangeQueries(domain, query_count, kMediumQueries, query_rng);
  std::vector<release::SequenceQuery> seq_queries;
  seq_queries.push_back(release::SequenceQuery::Frequency({0}));
  seq_queries.push_back(release::SequenceQuery::Frequency({1, 2}));
  seq_queries.push_back(release::SequenceQuery::PrefixCount({0, 1}));
  seq_queries.push_back(release::SequenceQuery::TopK(5, 3));

  // Envelope sweep: size v3 vs v2, decode throughput, and the served-answer
  // parity CI's smoke step relies on (compressed round-trip vs the fit).
  struct EnvelopeCase {
    std::string name;
    release::MethodOptions options;
  };
  const std::vector<EnvelopeCase> cases = {
      {"privtree", {}},        {"simpletree", {{"height", "6"}}},
      {"kdtree", {}},          {"ag", {}},
      {"ug", {}},              {"pst_privtree", {{"l_top", "12"}}},
      {"ngram", {{"l_top", "12"}}},
  };
  std::vector<EnvelopeRow> envelope_rows;
  std::uint64_t seed = 17;
  for (const EnvelopeCase& c : cases) {
    const auto& entry = release::GlobalMethodRegistry().Get(c.name);
    const bool sequence_kind = entry.kind == release::DatasetKind::kSequence;
    auto method = release::GlobalMethodRegistry().Create(c.name, c.options);
    PrivacyBudget budget(1.0);
    Rng rng(seed++);
    if (sequence_kind) {
      method->Fit(release::Dataset(sequences), budget, rng);
    } else {
      method->Fit(points, domain, budget, rng);
    }

    EnvelopeRow row;
    row.method = c.name;
    const std::string v3 = SaveMethodToString(*method);
    row.v3_bytes = v3.size();
    const ParsedSynopsis env = ParseV3Envelope(v3);
    std::ostringstream v2_out;
    PRIVTREE_CHECK(release::WriteSynopsis(v2_out, env.metadata,
                                          env.options_text,
                                          TranscodePayloadToV2(env),
                                          release::kSynopsisFormatVersionV2)
                       .ok());
    row.v2_bytes = std::move(v2_out).str().size();

    // Decode throughput over the compressed envelope.
    std::size_t reps = 0;
    std::shared_ptr<const release::Method> loaded;
    const double secs = TimedReps(&reps, [&] {
      std::istringstream in(v3);
      auto result = release::LoadMethod(in);
      PRIVTREE_CHECK(result.ok());
      loaded = std::move(result.value());
    });
    row.decode_gbps =
        static_cast<double>(v3.size()) * static_cast<double>(reps) / secs / 1e9;

    // Compressed-vs-uncompressed served answers, bit for bit.
    if (sequence_kind) {
      const auto want = method->QueryBatch(std::span(seq_queries));
      const auto got = loaded->QueryBatch(std::span(seq_queries));
      parity.Check(want == got, c.name + ": loaded sequence answers diverge");
    } else {
      const auto want = method->QueryBatch(queries);
      const auto got = loaded->QueryBatch(queries);
      parity.Check(want == got, c.name + ": loaded answers diverge");
    }
    envelope_rows.push_back(row);
  }

  // Batch-kernel races.  Grid: reference vs flat scalar vs SIMD.
  std::vector<BatchRow> batch_rows;
  {
    GridHistogram grid =
        GridHistogram::FromPoints(points, domain, {256, 256});
    Rng noise(0xF00D);
    grid.AddLaplaceNoise(2.0, noise);
    grid.BuildPrefixSums();
    const Grid2DView view = grid.KernelView2D();
    std::vector<double> scalar(queries.size()), simd(queries.size());
    const std::vector<double> reference = grid.QueryBatchReference(queries);
    GridQueryBatch2DScalar(view, queries, scalar.data());
    GridQueryBatch2DSimd(view, queries, simd.data());
    parity.Check(reference == scalar, "grid scalar kernel diverges");
    parity.Check(reference == simd, "grid simd kernel diverges");
    parity.Check(reference == grid.QueryBatch(queries),
                 "grid QueryBatch diverges");

    BatchRow row;
    row.path = "grid_256x256";
    row.queries = queries.size();
    std::size_t reps = 0;
    double secs = TimedReps(&reps, [&] { grid.QueryBatchReference(queries); });
    row.reference_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    secs = TimedReps(&reps,
                     [&] { GridQueryBatch2DScalar(view, queries,
                                                  scalar.data()); });
    row.scalar_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    secs = TimedReps(
        &reps, [&] { GridQueryBatch2DSimd(view, queries, simd.data()); });
    row.simd_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    batch_rows.push_back(row);
  }
  // AG: the reference is the pre-kernel serving path — per query, every
  // overlapped level-1 cell answered through the sub-grid's generic scalar
  // code (GridHistogram::QueryReference), no summed-area table, no kernel
  // views.  The scalar column is QueryBatchReference (SAT interior +
  // GridHistogram::Query boundary, the parity oracle); the kernel column
  // is QueryBatch.  The baseline sums cells in its own order, so it is
  // timing-only; bitwise parity is checked oracle-vs-kernel.
  {
    Rng fit_rng(0xA6);
    const AdaptiveGrid grid(points, domain, 1.0, {}, fit_rng);
    const std::vector<double> reference = grid.QueryBatchReference(queries);
    parity.Check(reference == grid.QueryBatch(queries),
                 "ag QueryBatch diverges");
    const std::int64_t m1 = grid.level1_granularity();
    const Box& ag_domain = grid.domain();
    std::vector<double> naive(queries.size());
    const auto naive_batch = [&] {
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        const Box& q = queries[qi];
        std::int64_t lo_cell[2], hi_cell[2];
        bool overlaps = true;
        for (std::size_t j = 0; j < 2; ++j) {
          const double width =
              ag_domain.Width(j) / static_cast<double>(m1);
          const double rel_lo = (q.lo(j) - ag_domain.lo(j)) / width;
          const double rel_hi = (q.hi(j) - ag_domain.lo(j)) / width;
          lo_cell[j] = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::floor(rel_lo)), 0, m1 - 1);
          hi_cell[j] = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::ceil(rel_hi)) - 1, 0, m1 - 1);
          if (rel_hi <= 0.0 || rel_lo >= static_cast<double>(m1)) {
            overlaps = false;
          }
        }
        double ans = 0.0;
        if (overlaps) {
          for (std::int64_t cx = lo_cell[0]; cx <= hi_cell[0]; ++cx) {
            for (std::int64_t cy = lo_cell[1]; cy <= hi_cell[1]; ++cy) {
              const GridHistogram& sub =
                  grid.level2()[static_cast<std::size_t>(cx * m1 + cy)];
              if (q.Intersects(sub.domain())) ans += sub.QueryReference(q);
            }
          }
        }
        naive[qi] = ans;
      }
    };
    BatchRow row;
    row.path = "ag_sat";
    row.queries = queries.size();
    std::size_t reps = 0;
    double secs = TimedReps(&reps, naive_batch);
    row.reference_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    secs = TimedReps(&reps, [&] { grid.QueryBatchReference(queries); });
    row.scalar_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    secs = TimedReps(&reps, [&] { grid.QueryBatch(queries); });
    row.simd_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    batch_rows.push_back(row);
  }
  // Tree: the template sweep (reference) vs the SoA TreeBatchIndex.
  {
    Rng fit_rng(0x7EE);
    const SpatialHistogram hist =
        BuildPrivTreeHistogram(points, domain, 1.0, {}, fit_rng);
    const auto box_of = [](const SpatialCell& c) -> const Box& {
      return c.box;
    };
    const release::TreeBatchIndex index(hist.tree, hist.count, box_of);
    const std::vector<double> reference = release::BatchQueryTree(
        hist.tree, hist.count, std::span<const Box>(queries), box_of);
    parity.Check(reference == index.Query(queries),
                 "tree SoA batch index diverges");
    BatchRow row;
    row.path = "privtree_tree";
    row.queries = queries.size();
    std::size_t reps = 0;
    double secs = TimedReps(&reps, [&] {
      release::BatchQueryTree(hist.tree, hist.count,
                              std::span<const Box>(queries), box_of);
    });
    row.reference_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    secs = TimedReps(&reps, [&] { index.Query(queries); });
    row.simd_qps =
        static_cast<double>(queries.size()) * static_cast<double>(reps) / secs;
    batch_rows.push_back(row);
  }

  // Console report.
  std::printf("Kernel/compression microbench (%s kernels)\n",
              privtree::SimdKernelName());
  TablePrinter envelope_table(
      "Synopsis envelopes: compressed (v3) vs raw (v2) bytes + decode",
      "method", {"v3 bytes", "v2 bytes", "ratio", "decode GB/s"});
  bool size_target_met = true;
  for (const EnvelopeRow& row : envelope_rows) {
    const double ratio = row.v3_bytes > 0 ? static_cast<double>(row.v2_bytes) /
                                                static_cast<double>(row.v3_bytes)
                                          : 0.0;
    envelope_table.AddRow(row.method,
                          {static_cast<double>(row.v3_bytes),
                           static_cast<double>(row.v2_bytes), ratio,
                           row.decode_gbps});
    if ((row.method == "privtree" || row.method == "simpletree" ||
         row.method == "kdtree") &&
        row.v2_bytes < 2 * row.v3_bytes) {
      size_target_met = false;
    }
  }
  envelope_table.Print();
  TablePrinter batch_table(
      "Batch-query kernels: queries/second (reference vs kernels)", "path",
      {"queries", "reference q/s", "scalar q/s", "kernel q/s", "speedup"});
  bool throughput_target_met = true;
  for (const BatchRow& row : batch_rows) {
    const double speedup =
        row.reference_qps > 0.0 ? row.simd_qps / row.reference_qps : 0.0;
    batch_table.AddRow(row.path,
                       {static_cast<double>(row.queries), row.reference_qps,
                        row.scalar_qps, row.simd_qps, speedup});
    if ((row.path == "grid_256x256" || row.path == "ag_sat") &&
        speedup < 2.0) {
      throughput_target_met = false;
    }
  }
  batch_table.Print();
  std::printf("parity (compressed + vectorized vs originals): %s\n",
              parity.ok ? "bit-for-bit identical" : "MISMATCH");
  std::printf("targets: tree envelopes >= 2x smaller: %s; grid/SAT batch "
              ">= 2x faster: %s\n",
              size_target_met ? "met" : "MISSED",
              throughput_target_met ? "met" : "MISSED");

  // JSON snapshot.
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"simd_kernel\": \"%s\",\n",
               privtree::SimdKernelName());
  std::fprintf(f, "  \"paper_scale\": %s,\n",
               privtree::PaperScale() ? "true" : "false");
  std::fprintf(f, "  \"envelopes\": [\n");
  for (std::size_t i = 0; i < envelope_rows.size(); ++i) {
    const EnvelopeRow& row = envelope_rows[i];
    std::fprintf(
        f,
        "    {\"method\": \"%s\", \"v3_bytes\": %zu, \"v2_bytes\": %zu, "
        "\"compression_ratio\": %.4g, \"decode_gbps\": %.4g}%s\n",
        row.method.c_str(), row.v3_bytes, row.v2_bytes,
        row.v3_bytes > 0 ? static_cast<double>(row.v2_bytes) /
                               static_cast<double>(row.v3_bytes)
                         : 0.0,
        row.decode_gbps, i + 1 < envelope_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"batch_query\": [\n");
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& row = batch_rows[i];
    std::fprintf(
        f,
        "    {\"path\": \"%s\", \"queries\": %zu, \"reference_qps\": %.6g, "
        "\"scalar_qps\": %.6g, \"kernel_qps\": %.6g, \"speedup\": %.4g}%s\n",
        row.path.c_str(), row.queries, row.reference_qps, row.scalar_qps,
        row.simd_qps,
        row.reference_qps > 0.0 ? row.simd_qps / row.reference_qps : 0.0,
        i + 1 < batch_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"parity\": %s,\n  \"size_target_met\": %s,\n"
               "  \"throughput_target_met\": %s\n}\n",
               parity.ok ? "true" : "false",
               size_target_met ? "true" : "false",
               throughput_target_met ? "true" : "false");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return parity.ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main(int argc, char** argv) {
  using privtree::FormatCell;
  using privtree::TablePrinter;
  using privtree::bench::DatasetHolder;
  using privtree::bench::DatasetPerf;
  using privtree::bench::MethodPerf;

  std::size_t threads = privtree::serve::DefaultThreadCount();
  std::string json_path;
  std::string loop_kind = "epoll";
  std::vector<std::string> datasets = {"road", "gowalla", "nyc",
                                       "beijing", "mooc", "msnbc"};
  std::size_t query_count = privtree::PaperScale() ? 10000 : 2000;
  std::size_t clients = 1;
  bool chaos = false;
  bool kernels = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--kernels") {
      kernels = true;
    } else if (arg.rfind("--kernels=", 0) == 0) {
      kernels = true;
      json_path = arg.substr(std::strlen("--kernels="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--threads=")));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--clients=")));
      if (clients == 0) clients = 1;
    } else if (arg == "--json") {
      json_path = "BENCH_table4.json";  // The committed repo-root snapshot.
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--loop=", 0) == 0) {
      loop_kind = arg.substr(std::strlen("--loop="));
      if (loop_kind != "epoll" && loop_kind != "threads") {
        std::fprintf(stderr, "error: --loop must be epoll or threads\n");
        return 2;
      }
    } else if (arg.rfind("--queries=", 0) == 0) {
      query_count = static_cast<std::size_t>(
          std::atol(arg.c_str() + std::strlen("--queries=")));
    } else if (arg.rfind("--datasets=", 0) == 0) {
      datasets.clear();
      std::string rest = arg.substr(std::strlen("--datasets="));
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        datasets.push_back(rest.substr(0, comma));
        if (comma == std::string::npos) break;
        rest.erase(0, comma + 1);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=N] [--json[=PATH]] "
                   "[--datasets=a,b,...] [--queries=N] [--clients=N] "
                   "[--loop=epoll|threads] [--chaos] [--kernels[=PATH]]\n",
                   argv[0]);
      return 2;
    }
  }
  privtree::serve::SetDefaultThreadCount(threads);
  privtree::serve::ThreadPool pool(threads);

  if (kernels) {
    // Compression + batch-kernel microbench instead of the Table-4 sweep:
    // envelope sizes and decode rate, kernel races, bit-for-bit parity
    // gate.  Writes BENCH_kernels.json (or the --kernels=PATH override).
    return privtree::bench::RunKernelPhase(json_path);
  }

  if (chaos) {
    // Resilience run instead of the Table-4 sweep: restart the serving
    // loop under closed-loop load and require zero failed requests.  The
    // first listed spatial dataset carries the traffic.
    std::string chaos_dataset;
    for (const std::string& name : datasets) {
      const DatasetHolder holder = privtree::bench::MakeDatasetHolder(name);
      if (holder.kind != privtree::release::DatasetKind::kSpatial) continue;
      chaos_dataset = name;
      const privtree::bench::ChaosPerf perf =
          privtree::bench::RunChaosPhase(pool, holder, clients);
      std::printf(
          "chaos: %zu clients x 2x%zu rounds across one server restart: "
          "%zu requests, %zu failed, %zu parity mismatches,\n"
          "       %llu retries, %llu reconnects, recovery %.1f ms, "
          "%.0f req/s — %s\n",
          perf.clients, perf.rounds_per_phase, perf.requests, perf.failed,
          perf.mismatches, static_cast<unsigned long long>(perf.retries),
          static_cast<unsigned long long>(perf.reconnects),
          perf.recovery_millis, perf.requests_per_second,
          perf.ok ? "survived transparently" : "FAILED");
      if (json_path.empty() || json_path == "BENCH_table4.json") {
        json_path = "BENCH_chaos.json";  // The committed chaos snapshot.
      }
      privtree::bench::WriteChaosJson(json_path, pool.worker_count(),
                                      chaos_dataset, perf);
      return perf.ok ? 0 : 1;
    }
    std::fprintf(stderr, "error: --chaos needs a spatial dataset\n");
    return 2;
  }

  std::printf(
      "Reproduction of Table 4 (PrivTree, SIGMOD 2016): PrivTree running\n"
      "time in seconds; larger epsilon => deeper trees => more time.\n"
      "Fit sweep sharded across %zu thread(s); every dataset — spatial and\n"
      "sequence — fits through the release registry and serves through an\n"
      "AsyncEngine.\n",
      pool.worker_count());

  std::vector<std::string> columns;
  for (double epsilon : privtree::PaperEpsilons()) {
    columns.push_back("eps=" + FormatCell(epsilon));
  }
  TablePrinter time_table("Table 4: PrivTree running time (seconds)",
                          "dataset", columns);
  TablePrinter size_table("Companion: mean output tree size (nodes)",
                          "dataset", columns);
  // The in-process AsyncEngine closed loop spawns one std::thread per
  // client, so it takes a capped count; the socket phase below takes the
  // full --clients (its driver multiplexes them on one thread).
  const std::size_t engine_clients = std::min<std::size_t>(clients, 16);
  TablePrinter agg_table(
      "Companion: aggregate fit throughput + served workload (" +
          std::to_string(engine_clients) + " closed-loop client" +
          (engine_clients == 1 ? "" : "s") + ")",
      "dataset", {"jobs", "wall s", "fits/s", "async q s", "qps"});

  std::vector<DatasetHolder> holders;
  holders.reserve(datasets.size());
  for (const std::string& name : datasets) {
    holders.push_back(privtree::bench::MakeDatasetHolder(name));
  }

  std::vector<DatasetPerf> perfs;
  std::string sweep_dataset, seq_sweep_dataset;
  std::vector<MethodPerf> methods, seq_methods;
  for (const DatasetHolder& holder : holders) {
    const std::string& name = holder.name;
    DatasetPerf perf = privtree::bench::RunFitSweep(pool, holder);
    privtree::bench::RunServingPhase(pool, holder, query_count,
                                     engine_clients, &perf);
    time_table.AddRow(name, perf.fit_seconds);
    size_table.AddRow(name, perf.synopsis_sizes);
    agg_table.AddRow(name,
                     {static_cast<double>(perf.jobs), perf.wall_seconds,
                      perf.wall_seconds > 0.0
                          ? static_cast<double>(perf.jobs) / perf.wall_seconds
                          : 0.0,
                      perf.async_batch_seconds, perf.closed_loop_qps});
    // One registry sweep per kind, on the first dataset of that kind.
    const bool spatial =
        holder.kind == privtree::release::DatasetKind::kSpatial;
    if (spatial && sweep_dataset.empty()) {
      sweep_dataset = name;
      methods = privtree::bench::RunRegistrySweep(pool, holder, query_count,
                                                  engine_clients);
    } else if (!spatial && seq_sweep_dataset.empty()) {
      seq_sweep_dataset = name;
      seq_methods = privtree::bench::RunRegistrySweep(
          pool, holder, query_count, engine_clients);
    }
    perfs.push_back(std::move(perf));
  }
  time_table.Print();
  size_table.Print();
  agg_table.Print();

  const auto print_sweep = [&](const std::string& dataset,
                               const std::vector<MethodPerf>& rows) {
    if (dataset.empty()) return;
    TablePrinter sweep_table(
        "Companion: registry sweep on " + dataset +
            " (eps=1): fit + serving a " + std::to_string(query_count) +
            "-query workload (async columns via AsyncEngine, " +
            std::to_string(engine_clients) + " closed-loop client" +
            (engine_clients == 1 ? "" : "s") + ")",
        "method",
        {"fit s", "synopsis", "batch q s", "loop q s", "async q s", "qps"});
    for (const MethodPerf& m : rows) {
      sweep_table.AddRow(m.method,
                         {m.fit_seconds_mean, m.synopsis_size_mean,
                          m.batch_query_seconds, m.loop_query_seconds,
                          m.async_batch_seconds, m.closed_loop_qps});
    }
    sweep_table.Print();
  };
  print_sweep(sweep_dataset, methods);
  print_sweep(seq_sweep_dataset, seq_methods);

  // The socket phase: every dataset a tenant of one registry behind the
  // selected wire loop, --clients concurrent connections, p50/p99 per
  // request, and a bit-for-bit parity check against the in-process
  // engines.
  const privtree::bench::SocketPerf socket_perf =
      privtree::bench::RunSocketPhase(pool, holders, loop_kind, clients);
  TablePrinter socket_table(
      "Companion: socket serving (" + socket_perf.loop + " loop, " +
          std::to_string(socket_perf.clients) + " connection" +
          (socket_perf.clients == 1 ? "" : "s") + " x " +
          std::to_string(socket_perf.rounds) + " rounds, " +
          std::to_string(socket_perf.batch) + "-query frames)",
      "loop",
      {"requests", "wall s", "req/s", "qps", "p50 ms", "p99 ms", "peak"});
  socket_table.AddRow(
      socket_perf.loop,
      {static_cast<double>(socket_perf.requests), socket_perf.wall_seconds,
       socket_perf.requests_per_second, socket_perf.queries_per_second,
       socket_perf.p50_ms, socket_perf.p99_ms,
       static_cast<double>(socket_perf.peak_connections)});
  socket_table.Print();
  std::printf("socket parity (%s vs in-process%s): %s\n",
              socket_perf.loop.c_str(),
              socket_perf.loop == "epoll" ? " vs threads oracle" : "",
              socket_perf.parity ? "bit-for-bit identical" : "MISMATCH");
  std::printf(
      "socket GetStats: admitted=%llu shed=%llu vs %zu driver requests "
      "(queue-wait p50/p99 %llu/%llu us, kernel p50/p99 %llu/%llu us) — "
      "%s\n",
      static_cast<unsigned long long>(socket_perf.stats_admitted),
      static_cast<unsigned long long>(socket_perf.stats_shed),
      socket_perf.requests,
      static_cast<unsigned long long>(socket_perf.queue_wait.p50_us),
      static_cast<unsigned long long>(socket_perf.queue_wait.p99_us),
      static_cast<unsigned long long>(socket_perf.kernel.p50_us),
      static_cast<unsigned long long>(socket_perf.kernel.p99_us),
      socket_perf.stats_consistent ? "bit-consistent" : "MISMATCH");

  // The closed-loop JSON must never under-report serving coverage: every
  // listed dataset — sequence ones included — and every sweep method row
  // goes through the AsyncEngine path, or this bench fails.
  bool all_served = true;
  for (const DatasetPerf& perf : perfs) {
    if (!perf.served) {
      std::fprintf(stderr,
                   "error: dataset \"%s\" bypassed the AsyncEngine serving "
                   "phase\n",
                   perf.dataset.c_str());
      all_served = false;
    }
  }
  for (const auto& [dataset, rows] :
       {std::make_pair(sweep_dataset, &methods),
        std::make_pair(seq_sweep_dataset, &seq_methods)}) {
    for (const MethodPerf& m : *rows) {
      if (!m.served) {
        std::fprintf(stderr,
                     "error: sweep method %s/%s failed the AsyncEngine "
                     "closed loop\n",
                     dataset.c_str(), m.method.c_str());
        all_served = false;
      }
    }
  }
  if (!socket_perf.ok) {
    std::fprintf(stderr,
                 "error: socket phase failed (%zu failed connections, "
                 "parity %s)\n",
                 socket_perf.failed, socket_perf.parity ? "ok" : "broken");
    all_served = false;
  }
  if (!all_served) return 1;

  if (!json_path.empty()) {
    privtree::bench::WriteJson(json_path, pool.worker_count(),
                               privtree::Repetitions(3), clients, perfs,
                               sweep_dataset, methods, seq_sweep_dataset,
                               seq_methods, socket_perf);
  }
  return 0;
}
