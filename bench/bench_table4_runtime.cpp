// Table 4: running time of PrivTree (seconds) on all six datasets as a
// function of ε.  The paper's shape to check: road and msnbc are the
// slowest (largest cardinality), and the cost *increases* with ε because a
// smaller ε means a larger bias term and therefore earlier stopping.
//
// Also reports tree sizes next to the noiseless reference |T*|, making the
// Lemma 3.2 bound E[|T|] <= 2|T*| observable, and — new with the unified
// release API — a registry-wide build-time comparison: every method in
// release::GlobalMethodRegistry() is timed through the same Method
// interface, so backends added later show up here automatically.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/seq_gen.h"
#include "dp/budget.h"
#include "eval/table.h"
#include "release/registry.h"
#include "seq/pst_privtree.h"

namespace privtree {
namespace bench {
namespace {

double Seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void RunSpatial(TablePrinter* time_table, TablePrinter* size_table,
                const std::string& name) {
  const SpatialCase data = MakeSpatialCase(name, /*queries_per_band=*/0);
  const std::size_t reps = Repetitions(3);
  std::vector<double> times, sizes;
  for (double epsilon : PaperEpsilons()) {
    double total_time = 0.0, total_nodes = 0.0;
    Rng master(0x7E57);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng = master.Fork();
      auto method = release::GlobalMethodRegistry().Create("privtree");
      PrivacyBudget budget(epsilon);
      total_time += Seconds([&] {
        method->Fit(data.points, data.domain, budget, rng);
      });
      total_nodes += static_cast<double>(method->Metadata().synopsis_size);
    }
    times.push_back(total_time / static_cast<double>(reps));
    sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  time_table->AddRow(name, times);
  size_table->AddRow(name, sizes);
}

void RunSequence(TablePrinter* time_table, TablePrinter* size_table,
                 const std::string& name) {
  Rng data_rng(0x5EC);
  const bool mooc = name == "mooc";
  const std::size_t n = ScaledCardinality(
      mooc ? kMoocCardinality : kMsnbcCardinality, mooc ? 40000 : 80000);
  const SequenceDataset raw =
      mooc ? GenerateMoocLike(n, data_rng) : GenerateMsnbcLike(n, data_rng);
  const std::size_t l_top = mooc ? kMoocLTop : kMsnbcLTop;
  const SequenceDataset data = raw.Truncate(l_top);
  const std::size_t reps = Repetitions(3);

  std::vector<double> times, sizes;
  for (double epsilon : PaperEpsilons()) {
    double total_time = 0.0, total_nodes = 0.0;
    Rng master(0x7E58);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng = master.Fork();
      PrivatePstOptions options;
      options.l_top = l_top;
      total_time += Seconds([&] {
        const auto result = BuildPrivatePst(data, epsilon, options, rng);
        total_nodes += static_cast<double>(result.model.size());
      });
    }
    times.push_back(total_time / static_cast<double>(reps));
    sizes.push_back(total_nodes / static_cast<double>(reps));
  }
  time_table->AddRow(name, times);
  size_table->AddRow(name, sizes);
}

/// Companion table: build time of *every* registered method on one 2-d
/// dataset at ε = 1, one row per registry entry.
void RunRegistrySweep(const std::string& dataset) {
  const SpatialCase data = MakeSpatialCase(dataset, /*queries_per_band=*/0);
  const std::size_t reps = Repetitions(3);
  const double epsilon = 1.0;

  TablePrinter table("Companion: build time by registry method, " + dataset +
                         " (eps=1)",
                     "method", {"seconds", "synopsis size"});
  for (const MethodSpec& spec :
       AllRegisteredSpecs(data.points.dim(), DiscretizationCells())) {
    double total_time = 0.0, total_size = 0.0;
    Rng master(0x7E59 ^ std::hash<std::string>{}(spec.name));
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng = master.Fork();
      auto method =
          release::GlobalMethodRegistry().Create(spec.name, spec.options);
      PrivacyBudget budget(epsilon);
      total_time += Seconds([&] {
        method->Fit(data.points, data.domain, budget, rng);
      });
      total_size += static_cast<double>(method->Metadata().synopsis_size);
    }
    table.AddRow(spec.display,
                 {total_time / static_cast<double>(reps),
                  total_size / static_cast<double>(reps)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  using privtree::FormatCell;
  using privtree::TablePrinter;
  std::printf(
      "Reproduction of Table 4 (PrivTree, SIGMOD 2016): PrivTree running\n"
      "time in seconds; larger epsilon => deeper trees => more time.\n");
  std::vector<std::string> columns;
  for (double epsilon : privtree::PaperEpsilons()) {
    columns.push_back("eps=" + FormatCell(epsilon));
  }
  TablePrinter time_table("Table 4: PrivTree running time (seconds)",
                          "dataset", columns);
  TablePrinter size_table("Companion: mean output tree size (nodes)",
                          "dataset", columns);
  for (const char* name : {"road", "gowalla", "nyc", "beijing"}) {
    privtree::bench::RunSpatial(&time_table, &size_table, name);
  }
  for (const char* name : {"mooc", "msnbc"}) {
    privtree::bench::RunSequence(&time_table, &size_table, name);
  }
  time_table.Print();
  size_table.Print();
  privtree::bench::RunRegistrySweep("gowalla");
  return 0;
}
