// Appendix A's closing comparison, quantified: a quadtree whose splits are
// decided by the improved SVT (the only sound SVT variant) against
// PrivTree, across the split-cap t that SVT must fix a priori.
//
// Expected shape: no choice of t is competitive — small t truncates the
// tree, large t inflates the per-decision noise to 2t/ε — mirroring the
// paper's conclusion that "the reduced SVT and the improved SVT are both
// less favorable than PrivTree for hierarchical decomposition".
#include <cstdio>

#include "bench/bench_common.h"
#include "eval/table.h"
#include "spatial/spatial_histogram.h"
#include "spatial/svt_histogram.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const std::size_t queries = PaperScale() ? 10000 : 500;
  const std::size_t reps = Repetitions(3);
  const SpatialCase data = MakeSpatialCase(name, queries);
  const std::vector<std::int32_t> caps = {64, 256, 1024, 4096};
  std::vector<std::string> columns = {"PrivTree"};
  for (std::int32_t t : caps) columns.push_back("SVT t=" + std::to_string(t));

  for (std::size_t band = 0; band < BandNames().size(); ++band) {
    TablePrinter table("Appendix A: " + name + " - " + BandNames()[band] +
                           " queries, improved-SVT tree vs PrivTree",
                       "epsilon", columns);
    for (double epsilon : PaperEpsilons()) {
      std::vector<double> row;
      row.push_back(SweepError(
          data, band, reps, 0xA51,
          [&](Rng& rng) -> AnswerFn {
            auto hist = std::make_shared<SpatialHistogram>(
                BuildPrivTreeHistogram(data.points, data.domain, epsilon, {},
                                       rng));
            return [hist](const Box& q) { return hist->Query(q); };
          }));
      for (std::int32_t t : caps) {
        row.push_back(SweepError(
            data, band, reps, 0xA52 ^ static_cast<std::uint64_t>(t),
            [&, t](Rng& rng) -> AnswerFn {
              SvtHistogramOptions options;
              options.max_splits = t;
              auto hist = std::make_shared<SpatialHistogram>(
                  BuildSvtTreeHistogram(data.points, data.domain, epsilon,
                                        options, rng));
              return [hist](const Box& q) { return hist->Query(q); };
            }));
      }
      table.AddRow(FormatCell(epsilon), row);
    }
    table.Print();
  }
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Appendix A comparison: improved-SVT-driven quadtrees (noise 2t/eps\n"
      "per decision, split cap t fixed a priori) vs PrivTree.  The SVT\n"
      "variant is given its best case (per-query sensitivity 1).\n");
  privtree::bench::RunDataset("road");
  privtree::bench::RunDataset("gowalla");
  return 0;
}
