// Shared plumbing for the figure/table reproduction binaries: the dataset
// registry (paper datasets → synthetic substitutes at quick or paper
// scale), method wrappers, and error-sweep helpers.
//
// Scale control (see DESIGN.md §4):
//   PRIVTREE_PAPER_SCALE=1  — full Table 2/3 cardinalities, 100 reps,
//                             2^20-cell discretizations.
//   PRIVTREE_REPS=<r>       — override the repetition count.
#ifndef PRIVTREE_BENCH_BENCH_COMMON_H_
#define PRIVTREE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dp/check.h"
#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/workload.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace bench {

/// One spatial dataset instance plus its evaluation workloads.
struct SpatialCase {
  std::string name;
  PointSet points;
  Box domain;
  /// Query sets indexed as {small, medium, large}.
  std::vector<std::vector<Box>> queries;
  std::vector<std::vector<double>> exact;
};

/// Generates the named dataset ("road", "gowalla", "nyc", "beijing") at
/// the current scale with `queries_per_band` queries in each size band.
inline SpatialCase MakeSpatialCase(const std::string& name,
                                   std::size_t queries_per_band) {
  Rng data_rng(0xD474ULL ^ std::hash<std::string>{}(name));
  std::size_t n = 0;
  std::unique_ptr<PointSet> points;
  if (name == "road") {
    n = ScaledCardinality(kRoadCardinality, 150000);
    points = std::make_unique<PointSet>(GenerateRoadLike(n, data_rng));
  } else if (name == "gowalla") {
    n = ScaledCardinality(kGowallaCardinality, 60000);
    points = std::make_unique<PointSet>(GenerateGowallaLike(n, data_rng));
  } else if (name == "nyc") {
    n = ScaledCardinality(kNycCardinality, 50000);
    points = std::make_unique<PointSet>(GenerateNycLike(n, data_rng));
  } else if (name == "beijing") {
    n = ScaledCardinality(kBeijingCardinality, 30000);
    points = std::make_unique<PointSet>(GenerateBeijingLike(n, data_rng));
  } else {
    PRIVTREE_CHECK(false);
  }
  const std::size_t dim = points->dim();
  SpatialCase out{name, std::move(*points), Box::UnitCube(dim), {}, {}};
  Rng workload_rng(0x9E3779B9ULL ^ std::hash<std::string>{}(name));
  for (BandedWorkload& workload :
       GenerateBandedWorkloads(out.domain, queries_per_band, workload_rng)) {
    out.queries.push_back(std::move(workload.queries));
    out.exact.push_back(ExactAnswers(out.queries.back(), out.points));
  }
  return out;
}

inline const std::vector<std::string>& BandNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const QuerySizeBand& band : kPaperBands) out.push_back(band.name);
    return out;
  }();
  return names;
}

/// Mean relative error of a freshly built synopsis, averaged over reps,
/// for one query band.  `build_and_query` builds a synopsis with the given
/// rng and returns an answer function.
using AnswerFn = std::function<double(const Box&)>;
using BuildFn = std::function<AnswerFn(Rng&)>;

inline double SweepError(const SpatialCase& data, std::size_t band,
                         std::size_t reps, std::uint64_t seed,
                         const BuildFn& build) {
  return MeanOverReps(reps, seed, [&](Rng& rng) {
    const AnswerFn answer = build(rng);
    return MeanRelativeError(data.queries[band], data.exact[band], answer,
                             data.points.size());
  });
}

/// Mean relative error per paper band for one registry-backed method.  The
/// `reps` fitted synopses are built once through serve::SharedPool() (so
/// --threads/PRIVTREE_THREADS shards them) with serve::SharedSynopsisCache()
/// memoization, then shared across all bands — unlike the legacy per-band
/// SweepError, which rebuilt every synopsis once per band.
inline std::vector<double> RegistryBandErrors(const SpatialCase& data,
                                              const MethodSpec& spec,
                                              double epsilon, std::size_t reps,
                                              std::uint64_t seed) {
  return RegistryMethodErrorBands(spec, data.points, data.domain, epsilon,
                                  data.queries, data.exact, reps, seed);
}

/// Renders a double as a MethodOptions value that parses back exactly.
inline std::string OptionValue(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// The default grid-discretization size: 2^20 cells at paper scale (as in
/// Section 6.1), 2^16 at quick scale.
inline std::int64_t DiscretizationCells() {
  return PaperScale() ? (std::int64_t{1} << 20) : (std::int64_t{1} << 16);
}

}  // namespace bench
}  // namespace privtree

#endif  // PRIVTREE_BENCH_BENCH_COMMON_H_
