// Figure 4: visualization of the four spatial datasets (road, Gowalla,
// NYC pickups, Beijing pickups), rendered as ASCII density maps.  The
// qualitative check: road shows filament structure, Gowalla diffuse
// blobs, NYC a single dominant core, Beijing broad districts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "spatial/point_set.h"

namespace {

void Render(const char* title, const privtree::PointSet& points,
            std::size_t x_dim, std::size_t y_dim) {
  constexpr int kWidth = 72;
  constexpr int kHeight = 28;
  std::vector<double> density(kWidth * kHeight, 0.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    const int x = std::min(kWidth - 1,
                           static_cast<int>(p[x_dim] * kWidth));
    const int y = std::min(kHeight - 1,
                           static_cast<int>(p[y_dim] * kHeight));
    density[static_cast<std::size_t>(y * kWidth + x)] += 1.0;
  }
  const double peak = *std::max_element(density.begin(), density.end());
  const char* ramp = " .:-=+*#%@";
  std::printf("\n-- Figure 4: %s --\n", title);
  for (int y = kHeight - 1; y >= 0; --y) {
    for (int x = 0; x < kWidth; ++x) {
      const double v = density[static_cast<std::size_t>(y * kWidth + x)];
      // Log scale so sparse structure stays visible.
      const double t =
          peak > 0.0 ? std::log1p(v) / std::log1p(peak) : 0.0;
      const int level = std::min(9, static_cast<int>(t * 10.0));
      std::putchar(ramp[level]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::printf(
      "Reproduction of Figure 4 (PrivTree, SIGMOD 2016): dataset density\n"
      "maps (log scale).  Expected: road = filaments, Gowalla = diffuse\n"
      "blobs, NYC = one dominant core, Beijing = broad districts.\n");
  privtree::Rng rng(0xF04);
  Render("road (junctions + corridors)",
         privtree::GenerateRoadLike(200000, rng), 0, 1);
  Render("Gowalla (check-ins)", privtree::GenerateGowallaLike(100000, rng),
         0, 1);
  Render("NYC - pickup locations", privtree::GenerateNycLike(90000, rng), 0,
         1);
  Render("Beijing - pickup locations",
         privtree::GenerateBeijingLike(30000, rng), 0, 1);
  return 0;
}
