// Figure 2: the privacy-cost function ρ(x) of Equation (5) against its
// Lemma 3.1 upper bound ρ⊤(x), for λ = 1 and θ = 0.  The printed series
// shows the exponential decay beyond x = θ + 1 that PrivTree's constant-
// noise guarantee rests on.
#include <cstdio>

#include "dp/rho.h"
#include "eval/table.h"

int main() {
  std::printf(
      "Reproduction of Figure 2 (PrivTree, SIGMOD 2016): rho(x) and its\n"
      "upper bound rho_top(x); lambda = 1, theta = 0.  The y-values decay\n"
      "like exp(theta + 1 - x) once x >= theta + 1.\n");
  const double lambda = 1.0;
  const double theta = 0.0;
  privtree::TablePrinter table("Figure 2: rho and rho_top (lambda=1, theta=0)",
                               "x", {"rho(x)", "rho_top(x)", "ratio"});
  for (double x = theta - 3.0; x <= theta + 10.0; x += 0.5) {
    const double rho = privtree::Rho(x, lambda, theta);
    const double bound = privtree::RhoUpperBound(x, lambda, theta);
    table.AddRow(privtree::FormatCell(x), {rho, bound, rho / bound});
  }
  table.Print();

  privtree::TablePrinter cost(
      "Telescoped cost bound (1/lambda)(2e^g-1)/(e^g-1) vs gamma",
      "gamma", {"bound"});
  for (double gamma : {0.25, 0.5, 1.0, 1.386, 2.0, 2.773}) {
    cost.AddRow(privtree::FormatCell(gamma),
                {privtree::PrivTreeCostBound(lambda, gamma * lambda)});
  }
  cost.Print();
  return 0;
}
