// Shared plumbing for the sequence-data benches (Figures 6, 7 and 12) and
// the served sequence workloads of bench_table4_runtime.
#ifndef PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_
#define PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dp/check.h"
#include "data/seq_gen.h"
#include "dp/rng.h"
#include "eval/runner.h"
#include "release/sequence_query.h"
#include "seq/sequence.h"

namespace privtree {
namespace bench {

/// One sequence dataset instance (already truncated at the paper's l⊤).
struct SequenceCase {
  std::string name;
  SequenceDataset truncated;
  SequenceDataset raw;
  std::size_t l_top;
};

/// Generates "mooc" or "msnbc" at the current scale and truncates at the
/// paper's l⊤ (Table 3).
inline SequenceCase MakeSequenceCase(const std::string& name) {
  Rng data_rng(0x5EC2 ^ std::hash<std::string>{}(name));
  const bool mooc = name == "mooc";
  PRIVTREE_CHECK(mooc || name == "msnbc");
  const std::size_t n = ScaledCardinality(
      mooc ? kMoocCardinality : kMsnbcCardinality, mooc ? 40000 : 80000);
  SequenceDataset raw =
      mooc ? GenerateMoocLike(n, data_rng) : GenerateMsnbcLike(n, data_rng);
  const std::size_t l_top = mooc ? kMoocLTop : kMsnbcLTop;
  SequenceDataset truncated = raw.Truncate(l_top);
  return SequenceCase{name, std::move(truncated), std::move(raw), l_top};
}

/// The candidate-string length cap used for top-k mining (the N-gram
/// paper's n_max = 5, which the paper adopts).
inline constexpr std::size_t kTopKMaxLen = 5;

/// A mixed served workload over one sequence dataset: mostly
/// string-frequency queries on substrings sampled from the data (so the
/// served path answers realistic grams), with every 4th a prefix-count and
/// every 16th a top-k spec.  Deterministic given `rng`.
inline std::vector<release::SequenceQuery> GenerateSequenceQueries(
    const SequenceDataset& data, std::size_t count, Rng& rng) {
  PRIVTREE_CHECK(!data.empty());
  std::vector<release::SequenceQuery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 16 == 15) {
      out.push_back(release::SequenceQuery::TopK(
          static_cast<std::uint32_t>(1 + rng.NextBounded(10)),
          static_cast<std::uint32_t>(1 + rng.NextBounded(3))));
      continue;
    }
    // Sample a non-empty substring of a non-empty sequence.
    std::span<const Symbol> s;
    for (std::size_t tries = 0; tries < 64 && s.empty(); ++tries) {
      s = data.sequence(rng.NextBounded(data.size()));
    }
    PRIVTREE_CHECK(!s.empty());
    const std::size_t len = 1 + rng.NextBounded(std::min<std::size_t>(
                                    s.size(), kTopKMaxLen));
    const std::size_t start = rng.NextBounded(s.size() - len + 1);
    std::vector<Symbol> symbols(s.begin() + start, s.begin() + start + len);
    out.push_back(i % 4 == 3
                      ? release::SequenceQuery::PrefixCount(
                            std::move(symbols))
                      : release::SequenceQuery::Frequency(
                            std::move(symbols)));
  }
  return out;
}

}  // namespace bench
}  // namespace privtree

#endif  // PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_
