// Shared plumbing for the sequence-data benches (Figures 6, 7 and 12).
#ifndef PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_
#define PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_

#include <memory>
#include <string>

#include "dp/check.h"
#include "data/seq_gen.h"
#include "dp/rng.h"
#include "eval/runner.h"
#include "seq/sequence.h"

namespace privtree {
namespace bench {

/// One sequence dataset instance (already truncated at the paper's l⊤).
struct SequenceCase {
  std::string name;
  SequenceDataset truncated;
  SequenceDataset raw;
  std::size_t l_top;
};

/// Generates "mooc" or "msnbc" at the current scale and truncates at the
/// paper's l⊤ (Table 3).
inline SequenceCase MakeSequenceCase(const std::string& name) {
  Rng data_rng(0x5EC2 ^ std::hash<std::string>{}(name));
  const bool mooc = name == "mooc";
  PRIVTREE_CHECK(mooc || name == "msnbc");
  const std::size_t n = ScaledCardinality(
      mooc ? kMoocCardinality : kMsnbcCardinality, mooc ? 40000 : 80000);
  SequenceDataset raw =
      mooc ? GenerateMoocLike(n, data_rng) : GenerateMsnbcLike(n, data_rng);
  const std::size_t l_top = mooc ? kMoocLTop : kMsnbcLTop;
  SequenceDataset truncated = raw.Truncate(l_top);
  return SequenceCase{name, std::move(truncated), std::move(raw), l_top};
}

/// The candidate-string length cap used for top-k mining (the N-gram
/// paper's n_max = 5, which the paper adopts).
inline constexpr std::size_t kTopKMaxLen = 5;

}  // namespace bench
}  // namespace privtree

#endif  // PRIVTREE_BENCH_BENCH_SEQ_COMMON_H_
