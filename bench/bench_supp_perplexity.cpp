// Supplementary model-quality evaluation: held-out per-symbol log-loss
// (perplexity) of the private sequence models — the standard VOMM metric
// of the paper's reference [3], complementing Figures 6 and 7.
//
// Expected shape: PrivTree-PST below N-gram at every ε (it models both
// variable-order context and termination); both improve with ε and stay
// above the non-private exact PST's loss.
#include <cstdio>

#include "bench/bench_seq_common.h"
#include "eval/table.h"
#include "seq/exact_pst.h"
#include "seq/ngram.h"
#include "seq/perplexity.h"
#include "seq/pst_privtree.h"

namespace privtree {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  const SequenceCase data = MakeSequenceCase(name);
  // Held-out sample from the same generator, distinct stream.
  Rng held_out_rng(0x43 ^ std::hash<std::string>{}(name));
  const SequenceDataset held_out =
      (name == "mooc" ? GenerateMoocLike(5000, held_out_rng)
                      : GenerateMsnbcLike(5000, held_out_rng))
          .Truncate(data.l_top);
  const std::size_t reps = Repetitions(3);

  ExactPstOptions exact_options;
  exact_options.min_magnitude = 50.0;
  exact_options.min_entropy = 0.05;
  exact_options.max_depth = 6;
  const PstModel exact_pst = BuildExactPst(data.truncated, exact_options);
  const double exact_loss = AverageLogLoss(exact_pst, held_out);

  TablePrinter table("Supplementary: " + name +
                         " - held-out log-loss (nats/symbol)",
                     "epsilon",
                     {"ExactPST(non-private)", "PrivTree", "N-gram"});
  for (double epsilon : PaperEpsilons()) {
    const double pst_loss = MeanOverReps(reps, 0x9E1, [&](Rng& rng) {
      PrivatePstOptions options;
      options.l_top = data.l_top;
      return AverageLogLoss(
          BuildPrivatePst(data.truncated, epsilon, options, rng).model,
          held_out);
    });
    const double ngram_loss = MeanOverReps(reps, 0x9E2, [&](Rng& rng) {
      NgramOptions options;
      options.l_top = data.l_top;
      return AverageLogLoss(NgramModel(data.truncated, epsilon, options, rng),
                            held_out);
    });
    table.AddRow(FormatCell(epsilon), {exact_loss, pst_loss, ngram_loss});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace privtree

int main() {
  std::printf(
      "Supplementary evaluation: held-out perplexity of the private\n"
      "sequence models (lower is better).\n");
  privtree::bench::RunDataset("mooc");
  privtree::bench::RunDataset("msnbc");
  return 0;
}
