#!/usr/bin/env python3
"""privtree_lint — project-specific static checks the compilers don't do.

Rules (each has a stable id used in findings and in fixture tests):

  discarded-status   Status/Result discards.  The compiler enforces the
                     class-level [[nodiscard]] on privtree::Status and
                     privtree::Result (-Wunused-result under -Wall), so this
                     rule checks the two things the compiler can't:
                       * the [[nodiscard]] attributes are still present in
                         src/dp/status.h (nobody silently deleted them);
                       * every explicit `(void)` discard of a call carries a
                         `lint-ok: discarded-status` justification comment on
                         the same line or the line above.
  nondeterminism     Nondeterminism primitives (std::random_device, rand(),
                     srand(), std::default_random_engine, chrono/time-seeded
                     engines) outside the RNG module (src/dp/rng.*).  All
                     randomness must flow through privtree::Rng so runs are
                     reproducible from a seed.
  naked-lock         Manual .lock()/.unlock()/.try_lock() calls outside
                     src/core/sync.h.  Lock lifetime must be RAII
                     (privtree::MutexLock) so early returns can't leak a
                     held mutex.
  raw-mutex          std::mutex / std::condition_variable / std::lock_guard /
                     std::unique_lock / std::scoped_lock outside
                     src/core/sync.h.  The annotated wrappers in core/sync.h
                     are the only sanctioned primitives — they carry the
                     clang thread-safety attributes that make -Wthread-safety
                     useful.
  fault-point-name   A PRIVTREE_FAULT(...) site or Injector arming spec names
                     a fault point not listed in
                     tools/lint/registered_fault_points.txt.  Keeps chaos
                     specs (PRIVTREE_FAULTS=...) from silently arming typos.
  metric-name        A Registry::GetCounter/GetGauge/GetHistogram call names
                     a metric not listed in tools/lint/registered_metrics.txt
                     (tests may use names under the `test.` prefix).  Keeps
                     dashboards and the stats-file schema in sync with the
                     code.

Usage:
  privtree_lint.py [--repo-root DIR] [paths...]

With no paths, lints the default tree (src tests bench examples) under the
repo root.  Exit status 0 = clean, 1 = findings (printed one per line as
`path:line: rule-id: message`), 2 = usage/setup error.

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

DEFAULT_SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# Files exempt from specific rules, as repo-relative posix paths.
SYNC_HEADER = "src/core/sync.h"
RNG_ALLOWLIST = {"src/dp/rng.h", "src/dp/rng.cc"}
# The fault framework's own unit tests arm synthetic points ("a", "b", ...)
# on throwaway Injector instances; those names are local to the test.
FAULT_NAME_ALLOWLIST = {"src/core/fault.h", "src/core/fault.cc",
                        "tests/core/fault_test.cc"}

FAULT_TABLE = "tools/lint/registered_fault_points.txt"
METRIC_TABLE = "tools/lint/registered_metrics.txt"

JUSTIFY_TAG = "lint-ok: discarded-status"


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, preserving line structure and strings.

    Comment bytes become spaces so line/column arithmetic on the result still
    matches the original file.  String and char literals are preserved (the
    name rules need them) but comment markers inside them are ignored.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == quote or c == "\n":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def load_name_table(repo_root: Path, rel: str) -> set[str] | None:
    path = repo_root / rel
    if not path.is_file():
        return None
    names = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            names.add(line)
    return names


# --- rule: discarded-status -------------------------------------------------

VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:]*\s*[(.]")


def check_discarded_status(rel: str, raw_lines: list[str],
                           code_lines: list[str]) -> list[Finding]:
    findings = []
    for idx, code in enumerate(code_lines):
        if not VOID_DISCARD_RE.search(code):
            continue
        # gtest death assertions must discard the expression's value; the
        # (void) is part of the idiom, not a swallowed error.
        if "EXPECT_DEATH" in code or "ASSERT_DEATH" in code:
            continue
        justified = JUSTIFY_TAG in raw_lines[idx]
        # Walk up through the contiguous comment block above the discard.
        up = idx - 1
        while not justified and up >= 0 and \
                raw_lines[up].lstrip().startswith("//"):
            justified = JUSTIFY_TAG in raw_lines[up]
            up -= 1
        if not justified:
            findings.append(Finding(
                rel, idx + 1, "discarded-status",
                "explicit (void) discard without a "
                f"'// {JUSTIFY_TAG}' justification comment"))
    return findings


def check_status_nodiscard_attr(repo_root: Path) -> list[Finding]:
    rel = "src/dp/status.h"
    path = repo_root / rel
    if not path.is_file():
        return [Finding(rel, 1, "discarded-status", "src/dp/status.h missing")]
    text = path.read_text(encoding="utf-8")
    findings = []
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            findings.append(Finding(
                rel, 1, "discarded-status",
                f"class {cls} has lost its [[nodiscard]] attribute"))
    return findings


# --- rule: nondeterminism ---------------------------------------------------

NONDET_TOKENS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:])rand\s*\("), "rand()"),
    (re.compile(r"std\s*::\s*default_random_engine"),
     "std::default_random_engine"),
]
ENGINE_TOKEN_RE = re.compile(r"\b(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+)\b")
CHRONO_SEED_RE = re.compile(
    ENGINE_TOKEN_RE.pattern + r"[^;]*"
    r"(?:chrono|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))")


def check_nondeterminism(rel: str, code_lines: list[str]) -> list[Finding]:
    if rel in RNG_ALLOWLIST:
        return []
    findings = []
    for idx, code in enumerate(code_lines):
        for pattern, label in NONDET_TOKENS:
            if pattern.search(code):
                findings.append(Finding(
                    rel, idx + 1, "nondeterminism",
                    f"{label} outside the RNG module (src/dp/rng); draw "
                    "randomness from privtree::Rng so runs replay from a "
                    "seed"))
        # The clock-seed check joins the following line so a wrapped
        # constructor argument still matches; the report anchors to the
        # line naming the engine.
        window = code + " " + (code_lines[idx + 1]
                               if idx + 1 < len(code_lines) else "")
        if ENGINE_TOKEN_RE.search(code) and CHRONO_SEED_RE.search(window):
            findings.append(Finding(
                rel, idx + 1, "nondeterminism",
                "random engine seeded from the clock; seeds must come from "
                "configuration or privtree::Rng"))
    return findings


# --- rules: naked-lock / raw-mutex ------------------------------------------

NAKED_LOCK_RE = re.compile(r"[\w)\]>]\s*(?:\.|->)\s*(?:try_)?(?:un)?lock\s*\(")
RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")


def check_locks(rel: str, code_lines: list[str]) -> list[Finding]:
    if rel == SYNC_HEADER:
        return []
    findings = []
    for idx, code in enumerate(code_lines):
        if NAKED_LOCK_RE.search(code):
            findings.append(Finding(
                rel, idx + 1, "naked-lock",
                "manual lock()/unlock() call; hold locks via "
                "privtree::MutexLock (RAII) so early returns cannot leak a "
                "held mutex"))
        m = RAW_MUTEX_RE.search(code)
        if m:
            findings.append(Finding(
                rel, idx + 1, "raw-mutex",
                f"std::{m.group(1)} outside core/sync.h; use the annotated "
                "privtree::Mutex / MutexLock / CondVar wrappers so clang "
                "-Wthread-safety can check the locking"))
    return findings


# --- rules: fault-point-name / metric-name ----------------------------------

FAULT_SITE_RES = [
    re.compile(r'PRIVTREE_FAULT\s*\(\s*"([^"]+)"'),
    re.compile(r'\bArm\s*\(\s*\{\s*"([^"]+)"'),
    re.compile(r'\.point\s*=\s*"([^"]+)"'),
    re.compile(r'PointSpec\s*\{\s*"([^"]+)"'),
]
METRIC_SITE_RE = re.compile(r'Get(Counter|Gauge|Histogram)\s*\(\s*"([^"]+)"')


def check_fault_names(rel: str, raw_text: str,
                      table: set[str]) -> list[Finding]:
    # Matched against the whole file so a spec wrapped across lines (the
    # string on the line after `Arm(`) is still seen.
    if rel in FAULT_NAME_ALLOWLIST:
        return []
    findings = []
    for pattern in FAULT_SITE_RES:
        for m in pattern.finditer(raw_text):
            name = m.group(1)
            if name not in table:
                line = raw_text.count("\n", 0, m.start(1)) + 1
                findings.append(Finding(
                    rel, line, "fault-point-name",
                    f'fault point "{name}" is not listed in '
                    f"{FAULT_TABLE}; register it there (with a comment "
                    "saying what it interrupts) or fix the typo"))
    return findings


def check_metric_names(rel: str, raw_text: str,
                       table: set[str]) -> list[Finding]:
    findings = []
    in_tests = rel.startswith("tests/")
    for m in METRIC_SITE_RE.finditer(raw_text):
        name = m.group(2)
        if name in table:
            continue
        if in_tests and name.startswith("test."):
            continue  # Throwaway names on test-local registries.
        line = raw_text.count("\n", 0, m.start(2)) + 1
        findings.append(Finding(
            rel, line, "metric-name",
            f'metric "{name}" is not listed in {METRIC_TABLE}; register '
            "it there or fix the typo (tests may use test.* freely)"))
    return findings


# --- driver -----------------------------------------------------------------

def lint_file(repo_root: Path, path: Path, fault_table: set[str],
              metric_table: set[str]) -> list[Finding]:
    rel = path.relative_to(repo_root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(rel, 1, "io", f"unreadable: {err}")]
    raw_lines = text.splitlines()
    code_lines = strip_comments(text).splitlines()
    # splitlines() on the stripped text can only differ if stripping ate a
    # newline, which strip_comments never does.
    findings = []
    findings += check_discarded_status(rel, raw_lines, code_lines)
    findings += check_nondeterminism(rel, code_lines)
    findings += check_locks(rel, code_lines)
    findings += check_fault_names(rel, text, fault_table)
    findings += check_metric_names(rel, text, metric_table)
    return findings


def collect_files(repo_root: Path, args_paths: list[str]) -> list[Path]:
    roots = [repo_root / p for p in args_paths] if args_paths else [
        repo_root / d for d in DEFAULT_SCAN_DIRS]
    # The intentionally-broken fixtures are skipped by directory scans but
    # lintable when named explicitly (that's how their selftest runs them).
    fixtures = (repo_root / "tools" / "lint" / "fixtures").resolve()
    files = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES and p.is_file()
                         and fixtures not in p.resolve().parents)
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: two levels above "
                             "this script)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint, relative to the "
                             "repo root (default: src tests bench examples)")
    args = parser.parse_args(argv)

    repo_root = Path(args.repo_root).resolve() if args.repo_root else \
        Path(__file__).resolve().parent.parent
    fault_table = load_name_table(repo_root, FAULT_TABLE)
    metric_table = load_name_table(repo_root, METRIC_TABLE)
    if fault_table is None or metric_table is None:
        print(f"privtree_lint: missing name table under {repo_root} "
              f"({FAULT_TABLE}, {METRIC_TABLE})", file=sys.stderr)
        return 2

    findings = list(check_status_nodiscard_attr(repo_root))
    for path in collect_files(repo_root, args.paths):
        findings.extend(lint_file(repo_root, path, fault_table, metric_table))

    for finding in findings:
        print(finding)
    if findings:
        print(f"privtree_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
