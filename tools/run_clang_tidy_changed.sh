#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the translation units a change
# touched, against the compile database in the given build directory.
#
# Usage: tools/run_clang_tidy_changed.sh <build-dir> [base-ref]
#
# Changed files are diffed against the merge base with `base-ref` (default
# origin/main; falls back to HEAD~1 on a shallow or detached checkout).
# Headers aren't translation units, so a changed header instead tidies every
# in-repo .cc/.cpp that includes it.  Exits non-zero on any clang-tidy error
# (the profile promotes concurrency-* findings to errors).
set -euo pipefail

build_dir=${1:?usage: run_clang_tidy_changed.sh <build-dir> [base-ref]}
base_ref=${2:-origin/main}

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

base=$(git merge-base "$base_ref" HEAD 2>/dev/null || true)
if [[ -z "$base" ]]; then
  base=$(git rev-parse HEAD~1 2>/dev/null || true)
fi
if [[ -z "$base" ]]; then
  echo "run_clang_tidy_changed: no base commit resolvable; skipping"
  exit 0
fi

mapfile -t changed < <(git diff --name-only --diff-filter=d "$base" HEAD -- \
                       '*.cc' '*.cpp' '*.h' '*.hpp')
if [[ ${#changed[@]} -eq 0 ]]; then
  echo "run_clang_tidy_changed: no C++ changes vs $base; skipping"
  exit 0
fi

declare -A units=()
for f in "${changed[@]}"; do
  case "$f" in
    *.cc|*.cpp)
      units[$f]=1
      ;;
    *.h|*.hpp)
      # Tidy every translation unit that includes the changed header (match
      # on the basename — the project includes are path-qualified but this
      # stays correct if a header moves).
      header_base=$(basename "$f")
      while IFS= read -r tu; do
        units[$tu]=1
      done < <(grep -rl --include='*.cc' --include='*.cpp' \
               "include \".*${header_base}\"" src tests bench examples \
               2>/dev/null || true)
      ;;
  esac
done

if [[ ${#units[@]} -eq 0 ]]; then
  echo "run_clang_tidy_changed: changed headers are not included by any" \
       "translation unit; skipping"
  exit 0
fi

echo "run_clang_tidy_changed: tidying ${#units[@]} translation unit(s):"
printf '  %s\n' "${!units[@]}"
clang-tidy -p "$build_dir" --quiet "${!units[@]}"
