// Lint fixture: fault points not listed in registered_fault_points.txt
// must be flagged.  Never built; linted by lint_selftest.py.
#include "core/fault.h"

namespace privtree {

int GuardedWork() {
  if (auto f = PRIVTREE_FAULT("spill.write"); f) {  // fine: registered
    return -1;
  }
  if (auto f = PRIVTREE_FAULT("spill.wrlte"); f) {  // violation: typo
    return -2;
  }
  return 0;
}

void ArmTypo() {
  fault::Injector::Global().Arm(
      {"sockets.send", fault::Kind::kError, 1.0, 0, 0, 0});  // violation
}

}  // namespace privtree
