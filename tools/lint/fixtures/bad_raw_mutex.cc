// Lint fixture: raw standard-library locking primitives outside
// core/sync.h must be flagged (only the annotated wrappers carry the clang
// thread-safety attributes).  Never built; linted by lint_selftest.py.
#include <condition_variable>
#include <mutex>

namespace privtree {

// std::mutex in this comment is fine — comments are stripped before rules.

struct Unannotated {
  std::mutex mu;                    // violation: raw std::mutex
  std::condition_variable cv;       // violation: raw condition_variable
};

void RawGuards(Unannotated& state) {
  std::lock_guard<std::mutex> lk(state.mu);   // violations: lock_guard+mutex
}

void RawUnique(Unannotated& state) {
  std::unique_lock<std::mutex> lk(state.mu);  // violations: unique_lock+mutex
}

}  // namespace privtree
