// Lint fixture: manual lock()/unlock() calls outside core/sync.h must be
// flagged (lock lifetime is RAII-only).  Never built; linted by
// lint_selftest.py.
#include "core/sync.h"

namespace privtree {

void ManualLocking(Mutex& mu) {
  mu.Lock();  // fine: the annotated wrapper's own API is PascalCase
}

struct Legacy {
  void lock();
  void unlock();
};

void NakedCalls(Legacy& legacy) {
  legacy.lock();    // violation: naked .lock()
  legacy.unlock();  // violation: naked .unlock()
}

}  // namespace privtree
