// Lint fixture: nondeterminism primitives outside src/dp/rng must be
// flagged.  Never built; linted by lint_selftest.py.
#include <chrono>
#include <cstdlib>
#include <random>

namespace privtree {

unsigned HiddenEntropy() {
  std::random_device entropy;            // violation: std::random_device
  return entropy();
}

int LibcRand() {
  srand(42);                             // violation: srand()
  return rand();                         // violation: rand()
}

unsigned DefaultEngine() {
  std::default_random_engine engine;     // violation: default_random_engine
  return static_cast<unsigned>(engine());
}

unsigned ClockSeeded() {
  std::mt19937 engine(static_cast<unsigned>(  // violation: clock seed
      std::chrono::steady_clock::now().time_since_epoch().count()));
  return engine();
}

}  // namespace privtree
