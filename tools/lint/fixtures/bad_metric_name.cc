// Lint fixture: metric names not listed in registered_metrics.txt must be
// flagged.  Never built; linted by lint_selftest.py.
#include "obs/metrics.h"

namespace privtree {

void RecordServing(obs::Registry& registry) {
  registry.GetCounter("cache.hits").Inc();        // fine: registered
  registry.GetCounter("cache.hit").Inc();         // violation: typo
  registry.GetGauge("cache.residents").Set(1);    // violation: typo
  registry.GetHistogram("test.only.latency_us")   // violation: test.* is
      .Record(7);                                 // only free inside tests/
}

}  // namespace privtree
