// Lint fixture: (void) discards of fallible calls without a justification
// comment must be flagged.  Never built; linted by lint_selftest.py.
#include "dp/status.h"

namespace privtree {

Status MightFail();

void UnjustifiedDiscard() {
  (void)MightFail();  // violation: no lint-ok justification
}

void JustifiedDiscard() {
  // lint-ok: discarded-status — fixture: shows the sanctioned spelling.
  (void)MightFail();
}

}  // namespace privtree
