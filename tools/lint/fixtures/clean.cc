// Lint fixture: a file that follows every rule — the negative control for
// lint_selftest.py.  Never built.
#include "core/fault.h"
#include "core/sync.h"
#include "dp/status.h"
#include "obs/metrics.h"

namespace privtree {

Status MightFail();

Status ObeysEveryRule(obs::Registry& registry, Mutex& mu) {
  MutexLock lk(mu);  // RAII via the annotated wrapper.
  if (auto f = PRIVTREE_FAULT("engine.fit"); f) {
    registry.GetCounter("engine.watchdog_fired").Inc();
  }
  // lint-ok: discarded-status — fixture: justified discards are allowed.
  (void)MightFail();
  return MightFail();
}

}  // namespace privtree
