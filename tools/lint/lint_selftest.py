#!/usr/bin/env python3
"""Fixture tests for tools/privtree_lint.py, run under ctest.

Each bad_* fixture must produce exactly the expected findings for its rule
(and nothing else); clean.cc must produce none.  Runs the linter in-process
by importing it, so the test exercises exactly the shipped module.
"""

from __future__ import annotations

import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent.parent
REPO_ROOT = TOOLS_DIR.parent
sys.path.insert(0, str(TOOLS_DIR))

import privtree_lint  # noqa: E402


def lint(fixture: str):
    path = REPO_ROOT / "tools" / "lint" / "fixtures" / fixture
    fault_table = privtree_lint.load_name_table(
        REPO_ROOT, privtree_lint.FAULT_TABLE)
    metric_table = privtree_lint.load_name_table(
        REPO_ROOT, privtree_lint.METRIC_TABLE)
    assert fault_table and metric_table, "name tables missing or empty"
    return privtree_lint.lint_file(REPO_ROOT, path, fault_table, metric_table)


failures = []


def expect(fixture: str, rule: str, want_lines: list[int]) -> None:
    """Asserts `fixture` yields findings of `rule` exactly at `want_lines`."""
    findings = lint(fixture)
    got = sorted(f.line for f in findings if f.rule == rule)
    other = [f for f in findings if f.rule != rule]
    if got != sorted(want_lines):
        failures.append(f"{fixture}: {rule} at lines {got}, "
                        f"want {sorted(want_lines)}")
    if other:
        failures.append(f"{fixture}: unexpected extra findings: "
                        + "; ".join(str(f) for f in other))


def expect_counts(fixture: str, rule: str, want: int) -> None:
    findings = lint(fixture)
    got = sum(1 for f in findings if f.rule == rule)
    if got != want:
        failures.append(f"{fixture}: {got} {rule} finding(s), want {want}: "
                        + "; ".join(str(f) for f in findings))


# One positive fixture per rule: the violation lines are load-bearing — renumber
# here when editing a fixture.
expect("bad_discarded_status.cc", "discarded-status", [10])
expect("bad_nondeterminism.cc", "nondeterminism", [10, 15, 16, 20, 25])
expect("bad_naked_lock.cc", "naked-lock", [18, 19])
expect("bad_raw_mutex.cc", "raw-mutex", [12, 13, 17, 21])
expect("bad_fault_point_name.cc", "fault-point-name", [11, 19])
expect("bad_metric_name.cc", "metric-name", [9, 10, 11])

# Negative control: the clean fixture must not trip anything.
clean = lint("clean.cc")
if clean:
    failures.append("clean.cc: unexpected findings: "
                    + "; ".join(str(f) for f in clean))

# The guard on status.h's [[nodiscard]] attributes must hold on the real tree.
attr = privtree_lint.check_status_nodiscard_attr(REPO_ROOT)
if attr:
    failures.append("status.h attribute check: "
                    + "; ".join(str(f) for f in attr))

if failures:
    print("lint_selftest: FAIL", file=sys.stderr)
    for failure in failures:
        print("  " + failure, file=sys.stderr)
    sys.exit(1)
print("lint_selftest: PASS (6 rule fixtures + clean control)")
