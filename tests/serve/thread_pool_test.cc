// The work-stealing pool underpins every serving-path guarantee: tasks run
// exactly once, ParallelFor covers the whole index range at any worker
// count, and draining semantics (WaitIdle, destructor) never lose work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "serve/thread_pool.h"

namespace privtree::serve {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&ran, i] { ran[i].fetch_add(1); });
  }
  pool.WaitIdle();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkerRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallerThanWorkerCount) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForMakesProgressWhileWorkersAreBusy) {
  // Occupy every worker with a slow task; ParallelFor must still finish
  // because the calling thread claims indices itself.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
    });
  }
  std::atomic<int> done{0};
  std::thread caller([&] {
    pool.ParallelFor(50, [&](std::size_t) { done.fetch_add(1); });
  });
  caller.join();
  EXPECT_EQ(done.load(), 50);
  release = true;
  pool.WaitIdle();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No WaitIdle: destruction itself must not drop queued tasks.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, WaitIdleWithNothingSubmitted) {
  ThreadPool pool(3);
  pool.WaitIdle();  // Must not hang.
  SUCCEED();
}

}  // namespace
}  // namespace privtree::serve
