// The serving layer's headline guarantee: sharding fits across any number
// of workers yields bit-for-bit the same released synopses as the serial
// path, because every FitJob carries its own pre-forked Rng.  Also covers
// cache integration (second sweep = all hits) and sharded QueryBatch
// equivalence.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/method.h"
#include "release/registry.h"
#include "serve/parallel_runner.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {
namespace {

PointSet TestPoints() {
  Rng rng(0x9017);
  PointSet points(2);
  std::vector<double> p(2);
  for (int i = 0; i < 900; ++i) {
    p[0] = rng.NextDouble() * rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t count = 60) {
  std::vector<Box> queries;
  Rng rng(0x0B0E5);
  for (std::size_t i = 0; i < count; ++i) {
    const double x = rng.NextDouble() * 0.8;
    const double y = rng.NextDouble() * 0.8;
    const double w = 0.02 + rng.NextDouble() * 0.2;
    queries.emplace_back(std::vector<double>{x, y},
                         std::vector<double>{x + w, y + w});
  }
  return queries;
}

/// Every registered method that fits 2-d data, across an ε × seed sweep.
std::vector<FitJob> SweepJobs() {
  std::vector<FitJob> jobs;
  for (const std::string& name :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    for (const double epsilon : {0.5, 1.0}) {
      Rng master(0x5EED ^ std::hash<std::string>{}(name));
      for (int rep = 0; rep < 2; ++rep) {
        jobs.push_back({name, {}, epsilon, master.Fork()});
      }
    }
  }
  return jobs;
}

TEST(ParallelRunnerTest, AnyWorkerCountMatchesSerialBitForBit) {
  const PointSet points = TestPoints();
  const Box domain = Box::UnitCube(2);
  const std::vector<Box> queries = TestQueries();

  // The serial reference: fit each job inline, no pool involved.
  std::vector<std::vector<double>> reference;
  for (const FitJob& job : SweepJobs()) {
    auto method = release::GlobalMethodRegistry().Create(job.method);
    PrivacyBudget budget(job.epsilon);
    Rng rng = job.rng;
    method->Fit(points, domain, budget, rng);
    reference.push_back(method->QueryBatch(queries));
  }

  for (const std::size_t workers : {1u, 8u}) {
    ThreadPool pool(workers);
    const ParallelRunner runner(pool);
    const auto fitted = runner.FitAll(points, domain, SweepJobs());
    ASSERT_EQ(fitted.size(), reference.size());
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      const std::vector<double> answers = fitted[i]->QueryBatch(queries);
      ASSERT_EQ(answers.size(), reference[i].size());
      for (std::size_t q = 0; q < answers.size(); ++q) {
        // Bit-for-bit: the schedule must not perturb any synopsis.
        ASSERT_EQ(answers[q], reference[i][q])
            << "workers=" << workers << " job=" << i << " query=" << q;
      }
    }
  }
}

TEST(ParallelRunnerTest, MetadataIdenticalAcrossWorkerCounts) {
  const PointSet points = TestPoints();
  const Box domain = Box::UnitCube(2);
  ThreadPool pool1(1), pool8(8);
  const auto a = ParallelRunner(pool1).FitAll(points, domain, SweepJobs());
  const auto b = ParallelRunner(pool8).FitAll(points, domain, SweepJobs());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ma = a[i]->Metadata();
    const auto mb = b[i]->Metadata();
    EXPECT_EQ(ma.method, mb.method);
    EXPECT_EQ(ma.synopsis_size, mb.synopsis_size);
    EXPECT_EQ(ma.height, mb.height);
    EXPECT_EQ(ma.epsilon_spent, mb.epsilon_spent);
  }
}

TEST(ParallelRunnerTest, SecondSweepIsAllCacheHits) {
  const PointSet points = TestPoints();
  const Box domain = Box::UnitCube(2);
  ThreadPool pool(4);
  SynopsisCache cache(64);
  const ParallelRunner runner(pool, &cache);

  const auto first = runner.FitAllTimed(points, domain, SweepJobs());
  for (const FitResult& r : first) EXPECT_FALSE(r.cache_hit);
  const std::size_t misses = cache.stats().misses;
  EXPECT_EQ(misses, first.size());

  const auto second = runner.FitAllTimed(points, domain, SweepJobs());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].cache_hit) << "job " << i;
    // Hit means the very same immutable synopsis object is shared.
    EXPECT_EQ(second[i].method.get(), first[i].method.get());
  }
  EXPECT_EQ(cache.stats().misses, misses);
  EXPECT_EQ(cache.stats().hits, second.size());
}

TEST(ParallelRunnerTest, PrefetchWarmsTheCache) {
  const PointSet points = TestPoints();
  const Box domain = Box::UnitCube(2);
  ThreadPool pool(4);
  SynopsisCache cache(64);
  const ParallelRunner runner(pool, &cache);

  runner.Prefetch(points, domain, SweepJobs());
  pool.WaitIdle();
  const std::size_t prefetched = cache.stats().misses;
  EXPECT_EQ(cache.size(), SweepJobs().size());

  const auto served = runner.FitAllTimed(points, domain, SweepJobs());
  for (const FitResult& r : served) EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(cache.stats().misses, prefetched);  // Nothing re-fitted.
}

TEST(ParallelRunnerTest, ParallelQueryBatchMatchesSingleBatch) {
  const PointSet points = TestPoints();
  const Box domain = Box::UnitCube(2);
  ThreadPool pool(8);
  const ParallelRunner runner(pool);
  const std::vector<Box> queries = TestQueries(500);
  for (const std::string& name :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    Rng master(0xABCD);
    const auto fitted =
        runner.FitAll(points, domain, {{name, {}, 1.0, master.Fork()}});
    const std::vector<double> whole = fitted[0]->QueryBatch(queries);
    const std::vector<double> sharded =
        ParallelQueryBatch(pool, *fitted[0], queries);
    ASSERT_EQ(whole.size(), sharded.size());
    for (std::size_t q = 0; q < whole.size(); ++q) {
      ASSERT_EQ(whole[q], sharded[q]) << name << " query " << q;
    }
  }
  EXPECT_TRUE(ParallelQueryBatch(pool, *runner.FitAll(
      points, domain, {{"ug", {}, 1.0, Rng(1)}})[0],
      std::span<const Box>{}).empty());
}

}  // namespace
}  // namespace privtree::serve
