// The serving layer over sequence datasets: sharded sequence fits are
// bit-for-bit identical to the serial path at any worker count, the cache
// memoizes them under the kind-separated fingerprint, and a synopsis
// loaded from its envelope answers QueryBatch exactly like a freshly
// fitted one at 1 and 8 threads (the PR's acceptance criterion).
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/dataset.h"
#include "release/method.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/serialization.h"
#include "serve/parallel_runner.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"

namespace privtree::serve {
namespace {

constexpr std::size_t kAlphabet = 5;
constexpr std::size_t kLTop = 10;

SequenceDataset TestSequences(std::size_t n = 500) {
  Rng rng(0x5EC0);
  SequenceDataset data(kAlphabet);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t len = 1 + rng.NextBounded(12);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(kAlphabet)));
    }
    data.Add(s);
  }
  return data.Truncate(kLTop);
}

release::MethodOptions SeqOptions() {
  release::MethodOptions options;
  options.Set("l_top", std::to_string(kLTop));
  return options;
}

std::vector<release::SequenceQuery> TestQueries() {
  std::vector<release::SequenceQuery> queries;
  Rng rng(0xBEEF5);
  for (int i = 0; i < 40; ++i) {
    std::vector<Symbol> s;
    const std::size_t len = 1 + rng.NextBounded(4);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(kAlphabet)));
    }
    queries.push_back(i % 3 == 0
                          ? release::SequenceQuery::PrefixCount(s)
                          : release::SequenceQuery::Frequency(s));
  }
  queries.push_back(release::SequenceQuery::TopK(8, 3));
  return queries;
}

/// Both sequence methods across an ε × rep sweep.
std::vector<FitJob> SweepJobs() {
  std::vector<FitJob> jobs;
  for (const std::string& name : release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSequence)) {
    for (const double epsilon : {0.5, 1.0}) {
      Rng master(0x5EED ^ std::hash<std::string>{}(name));
      for (int rep = 0; rep < 2; ++rep) {
        jobs.push_back({name, SeqOptions(), epsilon, master.Fork()});
      }
    }
  }
  return jobs;
}

TEST(SequenceRunnerTest, AnyWorkerCountMatchesSerialBitForBit) {
  const SequenceDataset data = TestSequences();
  const release::Dataset dataset(data);
  const std::vector<release::SequenceQuery> queries = TestQueries();

  // The serial reference: fit each job inline, no pool involved.
  std::vector<std::vector<double>> reference;
  for (const FitJob& job : SweepJobs()) {
    auto method =
        release::GlobalMethodRegistry().Create(job.method, job.options);
    PrivacyBudget budget(job.epsilon);
    Rng rng = job.rng;
    method->Fit(dataset, budget, rng);
    EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
    reference.push_back(method->QueryBatch(std::span(queries)));
  }

  for (const std::size_t workers : {1u, 8u}) {
    ThreadPool pool(workers);
    const ParallelRunner runner(pool);
    const auto fitted = runner.FitAll(dataset, SweepJobs());
    ASSERT_EQ(fitted.size(), reference.size());
    for (std::size_t i = 0; i < fitted.size(); ++i) {
      const std::vector<double> answers =
          fitted[i]->QueryBatch(std::span(queries));
      ASSERT_EQ(answers.size(), reference[i].size());
      for (std::size_t q = 0; q < answers.size(); ++q) {
        ASSERT_EQ(answers[q], reference[i][q])
            << "workers=" << workers << " job=" << i << " query=" << q;
      }
    }
  }
}

TEST(SequenceRunnerTest, SecondSweepIsAllCacheHits) {
  const SequenceDataset data = TestSequences();
  const release::Dataset dataset(data);
  ThreadPool pool(4);
  SynopsisCache cache(64);
  const ParallelRunner runner(pool, &cache);

  const auto first = runner.FitAllTimed(dataset, SweepJobs());
  for (const FitResult& r : first) EXPECT_FALSE(r.cache_hit);
  const auto second = runner.FitAllTimed(dataset, SweepJobs());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].cache_hit) << "job " << i;
    EXPECT_EQ(second[i].method.get(), first[i].method.get());
  }
}

// The acceptance criterion: a loaded-from-envelope PST synopsis answers
// QueryBatch bit-for-bit identically to a freshly fitted one at 1 and 8
// threads.
TEST(SequenceRunnerTest, LoadedEnvelopeMatchesFreshFitAtAnyThreadCount) {
  const SequenceDataset data = TestSequences();
  const release::Dataset dataset(data);
  const std::vector<release::SequenceQuery> queries = TestQueries();

  // Fit once, persist through the envelope, reload.
  Rng master(0x7E58);
  ThreadPool fit_pool(2);
  const ParallelRunner fit_runner(fit_pool);
  const auto fresh = fit_runner.FitAll(
      dataset, {{"pst_privtree", SeqOptions(), 1.0, master.Fork()}})[0];
  std::ostringstream out;
  ASSERT_TRUE(fresh->Save(out).ok());
  std::istringstream in(std::move(out).str());
  auto loaded = release::LoadMethod(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const std::size_t workers : {1u, 8u}) {
    ThreadPool pool(workers);
    const ParallelRunner runner(pool);
    Rng remaster(0x7E58);
    const auto refit = runner.FitAll(
        dataset,
        {{"pst_privtree", SeqOptions(), 1.0, remaster.Fork()}})[0];
    const std::vector<double> want = refit->QueryBatch(std::span(queries));
    // Both full-batch and sharded serving answers match the loaded
    // synopsis exactly.
    const std::vector<double> got =
        loaded.value()->QueryBatch(std::span(queries));
    const std::vector<double> sharded =
        ParallelQueryBatch(pool, *loaded.value(), std::span(queries));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q], want[q]) << "workers=" << workers << " q=" << q;
      ASSERT_EQ(sharded[q], want[q]) << "workers=" << workers << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace privtree::serve
