// Warm-restart recovery of the spill tier: a fresh SynopsisCache pointed at
// a directory holding truncated, bit-flipped, and zero-length envelopes must
// quarantine every corrupt file (renamed `.quarantined`, never deleted —
// the evidence survives for postmortems), drop stale `.tmp` files from
// writes the previous run never finished, and serve the surviving healthy
// envelopes bit-for-bit identically to a fresh fit.  This is the on-disk
// half of the crash-safety contract: a crash mid-spill-write can never
// poison serving.
//
// The warm scan probes envelope *headers* only (v3 files carry a header
// checksum + body size, release/serialization.h), so structural damage —
// truncation, zero length, a torn header — is caught at startup, while a
// silently bit-flipped body passes the scan and is quarantined at its
// first load, when the body checksum fails.  Either way the corruption
// never serves; only the detection point moved.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "eval/workload.h"
#include "release/registry.h"
#include "serve/synopsis_cache.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {
namespace {

namespace fs = std::filesystem;

PointSet TestPoints(std::size_t n = 500, std::uint64_t seed = 0xDA7A) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::shared_ptr<const release::Method> FitUg(const PointSet& points,
                                             std::uint64_t seed) {
  auto method = release::GlobalMethodRegistry().Create("ug");
  PrivacyBudget budget(1.0);
  Rng rng(seed);
  method->Fit(points, Box::UnitCube(2), budget, rng);
  return method;
}

SynopsisKey KeyFor(std::uint64_t rng_fingerprint) {
  return {/*dataset_fingerprint=*/42, "ug", "", 1.0, rng_fingerprint};
}

class SpillRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("privtree_recovery_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path SpillFileFor(std::uint64_t key) const {
    return dir_ / (SynopsisKeyFingerprint(KeyFor(key)) + ".synopsis");
  }

  /// Seeds the spill directory with envelopes for keys 1..4 (capacity-1
  /// memory tier: fitting key k evicts key k-1 onto disk; key 5 keeps
  /// key 4's eviction flowing, then dies in memory).
  void SeedSpillDirectory(const PointSet& points) {
    SynopsisCache cache(1, SpillOptions{dir(), 16});
    for (std::uint64_t k = 1; k <= 5; ++k) {
      cache.GetOrFit(KeyFor(k), [&] { return FitUg(points, k); });
    }
    cache.FlushSpill();
    ASSERT_EQ(cache.SpillFileCount(), 4u);
  }

  fs::path dir_;
};

TEST_F(SpillRecoveryTest, CorruptEnvelopesAreQuarantinedHealthyOnesServed) {
  const PointSet points = TestPoints();
  SeedSpillDirectory(points);
  for (std::uint64_t k = 1; k <= 4; ++k) {
    ASSERT_TRUE(fs::exists(SpillFileFor(k))) << "seed file for key " << k;
  }

  // The corruption matrix: truncate key 1 to half (a torn write that made
  // it through rename), flip one body byte of key 2 (silent media error),
  // empty key 3 entirely.  Key 4 stays healthy.  Add a stale temp file and
  // an unrelated file the scan must leave alone.
  {
    const auto truncated = SpillFileFor(1);
    const auto size = fs::file_size(truncated);
    fs::resize_file(truncated, size / 2);

    const auto flipped = SpillFileFor(2);
    std::fstream f(flipped, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const std::streamoff mid = f.tellg() / 2;
    f.seekg(mid);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(mid);
    f.write(&byte, 1);

    std::ofstream(SpillFileFor(3), std::ios::binary | std::ios::trunc);

    std::ofstream(dir_ / "dead.synopsis.tmp", std::ios::binary) << "torn";
    std::ofstream(dir_ / "README.txt") << "not a synopsis";
  }

  SynopsisCache cache(1, SpillOptions{dir(), 16});

  // The scan's header probes reject the structurally damaged files (keys 1
  // and 3); the body bit-flip (key 2) is invisible to a header check and
  // stays adopted for now.  The probes read headers only — a few dozen
  // bytes per file, never the payloads.
  EXPECT_EQ(cache.stats().spill_quarantined, 2u);
  EXPECT_EQ(cache.SpillFileCount(), 2u);
  EXPECT_GT(cache.stats().spill_scan_bytes, 0u);
  EXPECT_LE(cache.stats().spill_scan_bytes, 64u * 4u);
  EXPECT_FALSE(fs::exists(dir_ / "dead.synopsis.tmp"));
  EXPECT_TRUE(fs::exists(dir_ / "README.txt"));
  for (const std::uint64_t k : {1u, 3u}) {
    EXPECT_FALSE(fs::exists(SpillFileFor(k))) << "key " << k;
    const fs::path aside = SpillFileFor(k).string() + ".quarantined";
    EXPECT_TRUE(fs::exists(aside)) << "key " << k;
  }
  EXPECT_TRUE(fs::exists(SpillFileFor(2)));

  // The bit-flipped body fails its checksum at first load: the file is
  // quarantined then, the key re-fits exactly once, and serving still
  // never sees the corrupt bytes.
  int flipped_fits = 0;
  cache.GetOrFit(KeyFor(2), [&] {
    ++flipped_fits;
    return FitUg(points, 2);
  });
  EXPECT_EQ(flipped_fits, 1);
  EXPECT_EQ(cache.stats().spill_quarantined, 3u);
  EXPECT_FALSE(fs::exists(SpillFileFor(2)));
  EXPECT_TRUE(fs::exists(fs::path(SpillFileFor(2).string() +
                                  ".quarantined")));

  // The healthy envelope serves bit-for-bit without a re-fit.
  const auto served = cache.GetOrFit(KeyFor(4), [&] {
    ADD_FAILURE() << "healthy spilled key was re-fitted";
    return FitUg(points, 4);
  });
  EXPECT_EQ(cache.stats().spill_hits, 1u);
  const auto oracle = FitUg(points, 4);
  Rng query_rng(0xBEEF);
  const auto queries = GenerateRangeQueries(Box::UnitCube(2), 40,
                                            kMediumQueries, query_rng);
  const auto want = oracle->QueryBatch(queries);
  const auto got = served->QueryBatch(queries);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "query " << i;
  }

  // A quarantined key is simply a miss: it re-fits exactly once and the
  // spill tier heals (the fresh eviction writes a new, valid file).
  int fits = 0;
  cache.GetOrFit(KeyFor(1), [&] {
    ++fits;
    return FitUg(points, 1);
  });
  EXPECT_EQ(fits, 1);
  cache.FlushSpill();
  EXPECT_TRUE(fs::exists(SpillFileFor(4)));  // Evicted by key 1's fit.
}

TEST_F(SpillRecoveryTest, QuarantineIsIdempotentAcrossRestarts) {
  const PointSet points = TestPoints();
  SeedSpillDirectory(points);
  std::ofstream(SpillFileFor(2), std::ios::binary | std::ios::trunc);

  {
    SynopsisCache first(1, SpillOptions{dir(), 16});
    EXPECT_EQ(first.stats().spill_quarantined, 1u);
    EXPECT_EQ(first.SpillFileCount(), 3u);
  }
  // A second restart over the already-quarantined directory finds nothing
  // new to reject and keeps serving the healthy files.
  SynopsisCache second(1, SpillOptions{dir(), 16});
  EXPECT_EQ(second.stats().spill_quarantined, 0u);
  EXPECT_EQ(second.SpillFileCount(), 3u);
  const auto served = second.GetOrFit(KeyFor(3), [&] {
    ADD_FAILURE() << "healthy spilled key was re-fitted";
    return FitUg(points, 3);
  });
  const auto oracle = FitUg(points, 3);
  const Box q({0.1, 0.2}, {0.7, 0.8});
  EXPECT_EQ(served->Query(q), oracle->Query(q));
}

}  // namespace
}  // namespace privtree::serve
