// SynopsisCache behavior: hit/miss/evict accounting, LRU order, key
// canonicalization (option spelling, dataset and RNG fingerprints),
// single-flight fitting under concurrency, and the byte-level accounting
// added with the compressed envelopes (resident_bytes, the
// max_resident_bytes cap, spill read/write byte counters).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/options.h"
#include "release/registry.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {
namespace {

PointSet TestPoints(std::size_t n = 300, std::uint64_t seed = 0xDA7A) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

/// A real fitted synopsis (the cache stores release::Method values).
std::shared_ptr<const release::Method> FitUg(const PointSet& points,
                                             std::uint64_t seed) {
  auto method = release::GlobalMethodRegistry().Create("ug");
  PrivacyBudget budget(1.0);
  Rng rng(seed);
  method->Fit(points, Box::UnitCube(2), budget, rng);
  return method;
}

SynopsisKey KeyFor(std::uint64_t rng_fingerprint, double epsilon = 1.0) {
  return {/*dataset_fingerprint=*/42, "ug", "", epsilon, rng_fingerprint};
}

TEST(SynopsisCacheTest, MissFitsThenHitReuses) {
  const PointSet points = TestPoints();
  SynopsisCache cache(4);
  int fits = 0;
  const auto fit = [&] {
    ++fits;
    return FitUg(points, 1);
  };
  const auto first = cache.GetOrFit(KeyFor(1), fit);
  const auto second = cache.GetOrFit(KeyFor(1), fit);
  EXPECT_EQ(fits, 1);
  EXPECT_EQ(first.get(), second.get());  // Same shared synopsis.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SynopsisCacheTest, DistinctKeyComponentsAreDistinctEntries) {
  const PointSet points = TestPoints();
  SynopsisCache cache(16);
  int fits = 0;
  const auto fit = [&] {
    ++fits;
    return FitUg(points, 1);
  };
  cache.GetOrFit(KeyFor(1, 1.0), fit);
  cache.GetOrFit(KeyFor(2, 1.0), fit);        // Different randomness.
  cache.GetOrFit(KeyFor(1, 0.5), fit);        // Different ε.
  SynopsisKey other = KeyFor(1, 1.0);
  other.method = "privtree";                  // Different method.
  cache.GetOrFit(other, fit);
  SynopsisKey dataset = KeyFor(1, 1.0);
  dataset.dataset_fingerprint = 43;           // Different dataset.
  cache.GetOrFit(dataset, fit);
  EXPECT_EQ(fits, 5);
  EXPECT_EQ(cache.size(), 5u);
}

TEST(SynopsisCacheTest, LruEvictsOldestFirst) {
  const PointSet points = TestPoints();
  SynopsisCache cache(2);
  const auto fit = [&] { return FitUg(points, 1); };
  cache.GetOrFit(KeyFor(1), fit);
  cache.GetOrFit(KeyFor(2), fit);
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  cache.GetOrFit(KeyFor(3), fit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(KeyFor(1)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(2)), nullptr);
  EXPECT_NE(cache.Lookup(KeyFor(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SynopsisCacheTest, ZeroCapacityDisablesRetention) {
  const PointSet points = TestPoints();
  SynopsisCache cache(0);
  int fits = 0;
  const auto fit = [&] {
    ++fits;
    return FitUg(points, 1);
  };
  cache.GetOrFit(KeyFor(1), fit);
  cache.GetOrFit(KeyFor(1), fit);
  EXPECT_EQ(fits, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SynopsisCacheTest, ConcurrentSameKeyFitsOnce) {
  const PointSet points = TestPoints();
  SynopsisCache cache(8);
  std::atomic<int> fits{0};
  ThreadPool pool(8);
  std::vector<std::shared_ptr<const release::Method>> got(32);
  pool.ParallelFor(got.size(), [&](std::size_t i) {
    got[i] = cache.GetOrFit(KeyFor(7), [&] {
      fits.fetch_add(1);
      return FitUg(points, 7);
    });
  });
  EXPECT_EQ(fits.load(), 1);
  for (const auto& method : got) EXPECT_EQ(method.get(), got[0].get());
}

TEST(SynopsisCacheKeyTest, CanonicalOptionsCollapseSpellings) {
  using release::MethodOptions;
  EXPECT_EQ(CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "3"}}),
            CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "3.0"}}));
  EXPECT_EQ(
      CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "0.5"}}),
      CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "5e-1"}}));
  EXPECT_NE(
      CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "3"}}),
      CanonicalOptionsText("ug", MethodOptions{{"cell_scale", "4"}}));
  // Booleans: "1" and "true" are the same setting.
  EXPECT_EQ(CanonicalOptionsText(
                "hierarchy", MethodOptions{{"constrained_inference", "1"}}),
            CanonicalOptionsText(
                "hierarchy", MethodOptions{{"constrained_inference", "true"}}));
  // Key order in the text is sorted regardless of insertion order.
  MethodOptions a;
  a.Set("height", "4");
  a.Set("split_budget_fraction", "0.25");
  MethodOptions b;
  b.Set("split_budget_fraction", "0.250");
  b.Set("height", "4");
  EXPECT_EQ(CanonicalOptionsText("kdtree", a),
            CanonicalOptionsText("kdtree", b));
  EXPECT_EQ(CanonicalOptionsText("ug", {}), "");
}

TEST(SynopsisCacheBytesTest, ResidentBytesTrackInsertEvictAndClear) {
  const PointSet points = TestPoints();
  SynopsisCache cache(2);
  const auto fit = [&] { return FitUg(points, 1); };
  EXPECT_EQ(cache.stats().resident_bytes, 0u);

  cache.GetOrFit(KeyFor(1), fit);
  const std::size_t one = cache.stats().resident_bytes;
  EXPECT_GT(one, 0u);  // The serialized envelope size of one ug synopsis.

  cache.GetOrFit(KeyFor(2), fit);
  const std::size_t two = cache.stats().resident_bytes;
  EXPECT_GT(two, one);

  // Evicting key 1 releases exactly its contribution.
  cache.GetOrFit(KeyFor(3), fit);
  EXPECT_EQ(cache.stats().resident_bytes, two);  // Same-size synopses swap.
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.Clear();
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(SynopsisCacheBytesTest, ByteCapEvictsPastCapacityButKeepsNewest) {
  const PointSet points = TestPoints();
  // Entry capacity 8, but a 1-byte budget: every insert overflows it, so
  // the cache holds exactly the most recent entry (never zero — the cap
  // must not turn the cache into a fit-every-time no-op).
  SynopsisCache cache(8, SpillOptions{}, /*max_resident_bytes=*/1);
  const auto fit = [&] { return FitUg(points, 1); };
  for (std::uint64_t k = 1; k <= 4; ++k) cache.GetOrFit(KeyFor(k), fit);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_NE(cache.Lookup(KeyFor(4)), nullptr);
  EXPECT_EQ(cache.Lookup(KeyFor(1)), nullptr);

  // A generous budget holds everything the entry capacity allows.
  SynopsisCache roomy(8, SpillOptions{}, /*max_resident_bytes=*/1 << 30);
  for (std::uint64_t k = 1; k <= 4; ++k) roomy.GetOrFit(KeyFor(k), fit);
  EXPECT_EQ(roomy.size(), 4u);
  EXPECT_EQ(roomy.stats().evictions, 0u);
}

TEST(SynopsisCacheBytesTest, SpillByteCountersTrackWritesAndReads) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "privtree_cache_bytes";
  fs::remove_all(dir);
  const PointSet points = TestPoints();
  {
    SynopsisCache cache(1, SpillOptions{dir.string(), 16});
    cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
    cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });  // Evicts 1.
    cache.FlushSpill();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.spill_writes, 1u);
    EXPECT_GT(stats.spill_bytes_written, 0u);
    EXPECT_EQ(stats.spill_bytes_read, 0u);
    // The counter is the real on-disk footprint.
    std::size_t on_disk = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      on_disk += static_cast<std::size_t>(fs::file_size(entry.path()));
    }
    EXPECT_EQ(stats.spill_bytes_written, on_disk);

    // Rehydrating key 1 reads those bytes back.
    cache.GetOrFit(KeyFor(1), [&] {
      ADD_FAILURE() << "spilled key was re-fitted";
      return FitUg(points, 1);
    });
    EXPECT_EQ(cache.stats().spill_hits, 1u);
    EXPECT_GT(cache.stats().spill_bytes_read, 0u);
    EXPECT_LE(cache.stats().spill_bytes_read,
              cache.stats().spill_bytes_written);
  }
  fs::remove_all(dir);
}

TEST(SynopsisCacheKeyTest, DatasetFingerprintSeparatesDatasets) {
  const PointSet a = TestPoints(300, 0xDA7A);
  const PointSet b = TestPoints(300, 0xDA7B);   // Different coordinates.
  const PointSet c = TestPoints(301, 0xDA7A);   // Extra point.
  const Box unit = Box::UnitCube(2);
  const std::uint64_t fa = DatasetFingerprint(a, unit);
  EXPECT_EQ(fa, DatasetFingerprint(a, unit));  // Deterministic.
  EXPECT_NE(fa, DatasetFingerprint(b, unit));
  EXPECT_NE(fa, DatasetFingerprint(c, unit));
  // The declared domain is part of the release's identity too.
  const Box wide({0.0, 0.0}, {2.0, 1.0});
  EXPECT_NE(fa, DatasetFingerprint(a, wide));
}

}  // namespace
}  // namespace privtree::serve
