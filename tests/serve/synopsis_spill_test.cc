// The SynopsisCache disk-spill tier: evicted synopses serialize to the
// spill directory, misses rehydrate from disk (single-flight, identical
// answers, no re-fit), the tier is capacity-bounded, survives a cache
// restart on the same directory, falls back to fitting on corruption, and
// Clear() removes the files.  Spill writes happen on a background writer
// (write-behind): the tests FlushSpill() before asserting on-disk state,
// and the write-behind buffer itself must serve misses without re-fitting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "eval/workload.h"
#include "release/registry.h"
#include "serve/synopsis_cache.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::serve {
namespace {

namespace fs = std::filesystem;

PointSet TestPoints(std::size_t n = 500, std::uint64_t seed = 0xDA7A) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

/// A real fitted synopsis; the spill tier serializes release::Method values.
std::shared_ptr<const release::Method> FitUg(const PointSet& points,
                                             std::uint64_t seed) {
  auto method = release::GlobalMethodRegistry().Create("ug");
  PrivacyBudget budget(1.0);
  Rng rng(seed);
  method->Fit(points, Box::UnitCube(2), budget, rng);
  return method;
}

SynopsisKey KeyFor(std::uint64_t rng_fingerprint) {
  return {/*dataset_fingerprint=*/42, "ug", "", 1.0, rng_fingerprint};
}

class SynopsisSpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("privtree_spill_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(SynopsisSpillTest, EvictedEntriesSpillAndRehydrateIdentically) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 8});

  const auto original = cache.GetOrFit(KeyFor(1), [&] {
    return FitUg(points, 1);
  });
  // Fitting key 2 evicts key 1 from the 1-entry memory tier onto disk.
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.FlushSpill();  // The write happens behind the evicting caller.
  EXPECT_EQ(cache.stats().spill_writes, 1u);
  EXPECT_EQ(cache.stats().spill_pending, 0u);
  EXPECT_GE(cache.stats().spill_write_batches, 1u);
  EXPECT_EQ(cache.SpillFileCount(), 1u);

  // The miss on key 1 must rehydrate from disk — never re-fit.
  const auto rehydrated = cache.GetOrFit(KeyFor(1), [&] {
    ADD_FAILURE() << "rehydratable key was re-fitted";
    return FitUg(points, 1);
  });
  EXPECT_EQ(cache.stats().spill_hits, 1u);

  Rng query_rng(0xBEEF);
  const auto queries = GenerateRangeQueries(Box::UnitCube(2), 30,
                                            kMediumQueries, query_rng);
  const auto want = original->QueryBatch(queries);
  const auto got = rehydrated->QueryBatch(queries);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "query " << i;
  }
}

TEST_F(SynopsisSpillTest, SpillTierIsCapacityBounded) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 1});
  for (std::uint64_t k = 1; k <= 4; ++k) {
    cache.GetOrFit(KeyFor(k), [&] { return FitUg(points, k); });
  }
  cache.FlushSpill();
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_EQ(cache.SpillFileCount(), 1u);
  EXPECT_EQ(cache.stats().spill_evictions, 2u);
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir())) {
    files += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(SynopsisSpillTest, SpillSurvivesCacheRestart) {
  const PointSet points = TestPoints();
  {
    SynopsisCache cache(1, SpillOptions{dir(), 8});
    cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
    cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  }
  // A fresh cache on the same directory adopts the spilled file and serves
  // the synopsis without re-fitting.
  SynopsisCache cache(1, SpillOptions{dir(), 8});
  EXPECT_EQ(cache.SpillFileCount(), 1u);
  const auto rehydrated = cache.GetOrFit(KeyFor(1), [&] {
    ADD_FAILURE() << "spilled key was re-fitted after restart";
    return FitUg(points, 1);
  });
  EXPECT_EQ(cache.stats().spill_hits, 1u);
  const auto fresh = FitUg(points, 1);
  const Box q({0.1, 0.2}, {0.6, 0.9});
  EXPECT_EQ(rehydrated->Query(q), fresh->Query(q));
}

TEST_F(SynopsisSpillTest, CorruptSpillFileFallsBackToFitting) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 8});
  cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  cache.FlushSpill();
  ASSERT_EQ(cache.SpillFileCount(), 1u);

  // Scribble over the spilled synopsis.
  for (const auto& entry : fs::directory_iterator(dir())) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "not a synopsis";
  }

  int fits = 0;
  const auto value = cache.GetOrFit(KeyFor(1), [&] {
    ++fits;
    return FitUg(points, 1);
  });
  EXPECT_EQ(fits, 1);
  EXPECT_EQ(cache.stats().spill_hits, 0u);
  EXPECT_EQ(cache.stats().spill_failures, 1u);
  // The broken file is dropped from the tier; re-fitting key 1 evicted
  // key 2 from the 1-entry memory tier, which wrote a fresh (valid) file.
  cache.FlushSpill();
  EXPECT_EQ(cache.SpillFileCount(), 1u);
  EXPECT_EQ(cache.stats().spill_writes, 2u);
  const auto fresh = FitUg(points, 1);
  const Box q({0.0, 0.0}, {0.5, 0.5});
  EXPECT_EQ(value->Query(q), fresh->Query(q));
}

TEST_F(SynopsisSpillTest, ClearRemovesSpillFiles) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 8});
  cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  cache.FlushSpill();
  ASSERT_EQ(cache.SpillFileCount(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.SpillFileCount(), 0u);
  for (const auto& entry : fs::directory_iterator(dir())) {
    ADD_FAILURE() << "leftover spill file " << entry.path();
  }
}

TEST_F(SynopsisSpillTest, ConcurrentRehydrationIsSingleFlight) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 8});
  cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  cache.FlushSpill();
  ASSERT_EQ(cache.SpillFileCount(), 1u);

  std::atomic<int> fits{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const release::Method>> got(8);
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      got[t] = cache.GetOrFit(KeyFor(1), [&] {
        ++fits;
        return FitUg(points, 1);
      });
    });
  }
  for (auto& thread : threads) thread.join();
  // The spill load is single-flight: one thread rehydrates, everyone else
  // waits for it; nobody re-fits.
  EXPECT_EQ(fits.load(), 0);
  EXPECT_EQ(cache.stats().spill_hits, 1u);
  for (const auto& method : got) {
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method, got[0]);  // All callers share one instance.
  }
}

TEST_F(SynopsisSpillTest, WritebackBufferServesEvictionsWithoutRefit) {
  const PointSet points = TestPoints();
  SynopsisCache cache(1, SpillOptions{dir(), 8});
  const auto original =
      cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
  // Evict key 1 and immediately miss on it again.  Whether or not the
  // background writer has finished its file by then, the miss must be
  // served without a re-fit: either straight from the write-behind buffer
  // (writeback hit) or by rehydrating the already-written file.
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  const auto again = cache.GetOrFit(KeyFor(1), [&] {
    ADD_FAILURE() << "pending eviction was re-fitted";
    return FitUg(points, 1);
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.writeback_hits + stats.spill_hits, 1u);
  const Box q({0.2, 0.1}, {0.8, 0.7});
  EXPECT_EQ(again->Query(q), original->Query(q));
  cache.FlushSpill();
  EXPECT_EQ(cache.stats().spill_pending, 0u);
}

TEST_F(SynopsisSpillTest, SynchronousModeWritesOnTheEvictingThread) {
  const PointSet points = TestPoints();
  SynopsisCache cache(
      1, SpillOptions{dir(), 8, /*background_writer=*/false});
  cache.GetOrFit(KeyFor(1), [&] { return FitUg(points, 1); });
  cache.GetOrFit(KeyFor(2), [&] { return FitUg(points, 2); });
  // No flush needed: the evicting caller did the write itself.
  EXPECT_EQ(cache.stats().spill_writes, 1u);
  EXPECT_EQ(cache.stats().spill_pending, 0u);
  EXPECT_EQ(cache.stats().spill_write_batches, 0u);
  EXPECT_EQ(cache.SpillFileCount(), 1u);
}

TEST_F(SynopsisSpillTest, KeyFingerprintsAreStableAndDistinct) {
  const std::string a = SynopsisKeyFingerprint(KeyFor(1));
  EXPECT_EQ(a, SynopsisKeyFingerprint(KeyFor(1)));
  EXPECT_NE(a, SynopsisKeyFingerprint(KeyFor(2)));
  EXPECT_EQ(a.size(), 16u);
}

}  // namespace
}  // namespace privtree::serve
