#include "spatial/taxonomy.h"

#include <gtest/gtest.h>

namespace privtree {
namespace {

/// A small product taxonomy:
///   root → {hot → {coffee, tea}, cold → {soda, juice, water}}.
Taxonomy BeverageTaxonomy() {
  Taxonomy taxonomy;
  const NodeId root = taxonomy.AddRoot("beverages");
  const NodeId hot = taxonomy.AddCategory(root, "hot");
  const NodeId cold = taxonomy.AddCategory(root, "cold");
  taxonomy.AddCategory(hot, "coffee");
  taxonomy.AddCategory(hot, "tea");
  taxonomy.AddCategory(cold, "soda");
  taxonomy.AddCategory(cold, "juice");
  taxonomy.AddCategory(cold, "water");
  taxonomy.Finalize();
  return taxonomy;
}

TEST(TaxonomyTest, LeafValuesAreDenseInDfsOrder) {
  const Taxonomy taxonomy = BeverageTaxonomy();
  EXPECT_EQ(taxonomy.LeafValueCount(), 5);
  // DFS order: coffee, tea, soda, juice, water.
  EXPECT_EQ(taxonomy.label(taxonomy.NodeOf(0)), "coffee");
  EXPECT_EQ(taxonomy.label(taxonomy.NodeOf(1)), "tea");
  EXPECT_EQ(taxonomy.label(taxonomy.NodeOf(4)), "water");
  for (CategoryValue v = 0; v < 5; ++v) {
    EXPECT_EQ(taxonomy.ValueOf(taxonomy.NodeOf(v)), v);
  }
}

TEST(TaxonomyTest, CoversFollowsSubtrees) {
  const Taxonomy taxonomy = BeverageTaxonomy();
  const NodeId root = taxonomy.root();
  const NodeId hot = taxonomy.children(root)[0];
  const NodeId cold = taxonomy.children(root)[1];
  for (CategoryValue v = 0; v < 5; ++v) {
    EXPECT_TRUE(taxonomy.Covers(root, v));
    EXPECT_EQ(taxonomy.Covers(hot, v), v < 2);
    EXPECT_EQ(taxonomy.Covers(cold, v), v >= 2);
  }
}

TEST(TaxonomyTest, LeafCountOfInternalNodes) {
  const Taxonomy taxonomy = BeverageTaxonomy();
  const NodeId root = taxonomy.root();
  EXPECT_EQ(taxonomy.LeafCountOf(root), 5);
  EXPECT_EQ(taxonomy.LeafCountOf(taxonomy.children(root)[0]), 2);
  EXPECT_EQ(taxonomy.LeafCountOf(taxonomy.children(root)[1]), 3);
  EXPECT_EQ(taxonomy.LeafCountOf(taxonomy.NodeOf(3)), 1);
}

TEST(TaxonomyTest, FlatTaxonomyHasOneLevel) {
  const Taxonomy taxonomy = Taxonomy::Flat(6);
  EXPECT_EQ(taxonomy.LeafValueCount(), 6);
  EXPECT_EQ(taxonomy.children(taxonomy.root()).size(), 6u);
  for (NodeId child : taxonomy.children(taxonomy.root())) {
    EXPECT_TRUE(taxonomy.is_leaf(child));
  }
}

TEST(TaxonomyTest, BalancedTaxonomyCoversAllValues) {
  for (std::int32_t values : {1, 2, 5, 16, 17}) {
    const Taxonomy taxonomy = Taxonomy::Balanced(values, 2);
    EXPECT_EQ(taxonomy.LeafValueCount(), values) << values;
    for (CategoryValue v = 0; v < values; ++v) {
      EXPECT_TRUE(taxonomy.Covers(taxonomy.root(), v));
    }
  }
}

TEST(TaxonomyTest, BalancedArityIsRespected) {
  const Taxonomy taxonomy = Taxonomy::Balanced(27, 3);
  for (std::size_t id = 0; id < taxonomy.size(); ++id) {
    EXPECT_LE(taxonomy.children(static_cast<NodeId>(id)).size(), 3u);
  }
}

TEST(TaxonomyDeathTest, UsageBeforeFinalizeAborts) {
  Taxonomy taxonomy;
  taxonomy.AddRoot("r");
  taxonomy.AddCategory(0, "a");
  EXPECT_DEATH((void)taxonomy.LeafValueCount(), "PRIVTREE_CHECK");
  EXPECT_DEATH((void)taxonomy.Covers(0, 0), "PRIVTREE_CHECK");
}

TEST(TaxonomyDeathTest, ModificationAfterFinalizeAborts) {
  Taxonomy taxonomy = Taxonomy::Flat(3);
  EXPECT_DEATH(taxonomy.AddCategory(0, "late"), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
