#include "spatial/box.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace privtree {
namespace {

TEST(BoxTest, UnitCube) {
  const Box box = Box::UnitCube(3);
  EXPECT_EQ(box.dim(), 3u);
  EXPECT_DOUBLE_EQ(box.Volume(), 1.0);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(box.lo(j), 0.0);
    EXPECT_DOUBLE_EQ(box.hi(j), 1.0);
  }
}

TEST(BoxTest, VolumeIsProductOfWidths) {
  const Box box({0.0, 1.0}, {0.5, 3.0});
  EXPECT_DOUBLE_EQ(box.Volume(), 0.5 * 2.0);
  EXPECT_DOUBLE_EQ(box.Width(0), 0.5);
  EXPECT_DOUBLE_EQ(box.Width(1), 2.0);
}

TEST(BoxTest, ContainsIsHalfOpen) {
  const Box box({0.0, 0.0}, {1.0, 1.0});
  const std::vector<double> inside = {0.0, 0.999};
  const std::vector<double> on_hi = {0.5, 1.0};
  const std::vector<double> outside = {-0.1, 0.5};
  EXPECT_TRUE(box.Contains(inside));
  EXPECT_FALSE(box.Contains(on_hi));
  EXPECT_FALSE(box.Contains(outside));
}

TEST(BoxTest, ContainsBox) {
  const Box outer({0.0, 0.0}, {1.0, 1.0});
  const Box inner({0.2, 0.3}, {0.4, 0.5});
  const Box overlapping({0.5, 0.5}, {1.5, 0.8});
  EXPECT_TRUE(outer.ContainsBox(inner));
  EXPECT_TRUE(outer.ContainsBox(outer));
  EXPECT_FALSE(outer.ContainsBox(overlapping));
  EXPECT_FALSE(inner.ContainsBox(outer));
}

TEST(BoxTest, IntersectsAndVolume) {
  const Box a({0.0, 0.0}, {1.0, 1.0});
  const Box b({0.5, 0.5}, {2.0, 2.0});
  const Box c({1.5, 1.5}, {2.0, 2.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 0.25);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(c), 0.0);
}

TEST(BoxTest, TouchingBoundariesDoNotIntersect) {
  const Box a({0.0}, {1.0});
  const Box b({1.0}, {2.0});
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 0.0);
}

TEST(BoxTest, BisectDimPartitionsExactly) {
  const Box box({0.0, 0.0}, {1.0, 2.0});
  const Box lower = box.BisectDim(1, 0);
  const Box upper = box.BisectDim(1, 1);
  EXPECT_DOUBLE_EQ(lower.hi(1), 1.0);
  EXPECT_DOUBLE_EQ(upper.lo(1), 1.0);
  EXPECT_DOUBLE_EQ(lower.Volume() + upper.Volume(), box.Volume());
  // The untouched dimension is unchanged.
  EXPECT_DOUBLE_EQ(lower.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(lower.hi(0), 1.0);
}

TEST(BoxTest, RepeatedBisectionIsExactForDyadics) {
  Box box = Box::UnitCube(1);
  for (int i = 0; i < 30; ++i) box = box.BisectDim(0, 1);
  // lo should be exactly 1 − 2^-30.
  EXPECT_DOUBLE_EQ(box.lo(0), 1.0 - std::pow(0.5, 30));
}

TEST(BoxTest, ToStringIsReadable) {
  const Box box({0.0, 0.25}, {0.5, 0.5});
  EXPECT_EQ(box.ToString(), "[0,0.5)x[0.25,0.5)");
}

TEST(BoxDeathTest, MismatchedDimsAbort) {
  EXPECT_DEATH(Box({0.0}, {1.0, 2.0}), "PRIVTREE_CHECK");
  const Box box = Box::UnitCube(2);
  const std::vector<double> p = {0.5};
  EXPECT_DEATH((void)box.Contains(p), "PRIVTREE_CHECK");
  EXPECT_DEATH(box.BisectDim(5, 0), "PRIVTREE_CHECK");
}

TEST(BoxDeathTest, InvertedBoundsAbort) {
  EXPECT_DEATH(Box({1.0}, {0.0}), "PRIVTREE_CHECK");
}

TEST(BoxDeathTest, NonFiniteBoundsAbort) {
  EXPECT_DEATH(Box({std::nan("")}, {1.0}), "PRIVTREE_CHECK");
  EXPECT_DEATH(Box({0.0}, {std::numeric_limits<double>::infinity()}),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
