#include "spatial/synthetic_points.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rng.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

PointSet TwoClusterPoints(std::size_t n, Rng& rng) {
  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.8) {
      p[0] = 0.1 + 0.05 * rng.NextDouble();
      p[1] = 0.1 + 0.05 * rng.NextDouble();
    } else {
      p[0] = 0.8 + 0.05 * rng.NextDouble();
      p[1] = 0.8 + 0.05 * rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(SyntheticPointsTest, RequestedCountIsExact) {
  Rng rng(1);
  const PointSet real = TwoClusterPoints(20000, rng);
  const auto hist =
      BuildPrivTreeHistogram(real, Box::UnitCube(2), 1.0, {}, rng);
  const PointSet synthetic = SampleSyntheticPoints(hist, 5000, rng);
  EXPECT_EQ(synthetic.size(), 5000u);
  EXPECT_EQ(synthetic.dim(), 2u);
}

TEST(SyntheticPointsTest, PointsStayInsideTheDomain) {
  Rng rng(2);
  const PointSet real = TwoClusterPoints(10000, rng);
  const Box domain = Box::UnitCube(2);
  const auto hist = BuildPrivTreeHistogram(real, domain, 1.0, {}, rng);
  const PointSet synthetic = SampleSyntheticPoints(hist, 2000, rng);
  for (std::size_t i = 0; i < synthetic.size(); ++i) {
    EXPECT_TRUE(domain.Contains(synthetic.point(i)));
  }
}

TEST(SyntheticPointsTest, MassFollowsTheRealDensity) {
  Rng rng(3);
  const PointSet real = TwoClusterPoints(100000, rng);
  const auto hist =
      BuildPrivTreeHistogram(real, Box::UnitCube(2), 1.6, {}, rng);
  const PointSet synthetic = SampleSyntheticPoints(hist, 50000, rng);
  const Box cluster_a({0.05, 0.05}, {0.2, 0.2});
  const Box cluster_b({0.75, 0.75}, {0.9, 0.9});
  const double frac_a = static_cast<double>(
                            synthetic.ExactRangeCount(cluster_a)) /
                        static_cast<double>(synthetic.size());
  const double frac_b = static_cast<double>(
                            synthetic.ExactRangeCount(cluster_b)) /
                        static_cast<double>(synthetic.size());
  EXPECT_NEAR(frac_a, 0.8, 0.05);
  EXPECT_NEAR(frac_b, 0.2, 0.05);
}

TEST(SyntheticPointsTest, DatasetSizeTracksRootCount) {
  Rng rng(4);
  const PointSet real = TwoClusterPoints(30000, rng);
  const auto hist =
      BuildPrivTreeHistogram(real, Box::UnitCube(2), 1.0, {}, rng);
  const PointSet synthetic = SampleSyntheticDataset(hist, rng);
  EXPECT_NEAR(static_cast<double>(synthetic.size()), 30000.0, 2000.0);
}

TEST(SyntheticPointsTest, AllNegativeCountsYieldEmptySet) {
  // Degenerate synopsis: manually zero out the counts.
  Rng rng(5);
  const PointSet real = TwoClusterPoints(100, rng);
  auto hist = BuildPrivTreeHistogram(real, Box::UnitCube(2), 1.0, {}, rng);
  for (double& c : hist.count) c = -5.0;
  const PointSet synthetic = SampleSyntheticPoints(hist, 100, rng);
  EXPECT_TRUE(synthetic.empty());
}

}  // namespace
}  // namespace privtree
