// Mixed-domain coverage with several categorical attributes: round-robin
// splitting must interleave two taxonomies and a numeric dimension, and
// queries must combine subtree constraints across attributes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dp/rng.h"
#include "spatial/mixed_histogram.h"
#include "spatial/mixed_policy.h"
#include "spatial/taxonomy.h"

namespace privtree {
namespace {

class MultiAttributeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    region_ = Taxonomy::Balanced(4, 2);    // Two-level binary: 4 regions.
    product_ = Taxonomy::Balanced(8, 2);   // Three-level binary: 8 SKUs.
    data_ = std::make_unique<MixedDataset>(
        1, std::vector<const Taxonomy*>{&region_, &product_});
    Rng rng(1);
    for (int i = 0; i < 30000; ++i) {
      MixedRecord record;
      // Region 0 buys product 3 at low prices; everything else diffuse.
      if (rng.NextDouble() < 0.6) {
        record.categories = {0, 3};
        record.numeric = {0.1 * rng.NextDouble()};
      } else {
        record.categories = {
            static_cast<CategoryValue>(rng.NextBounded(4)),
            static_cast<CategoryValue>(rng.NextBounded(8))};
        record.numeric = {rng.NextDouble()};
      }
      data_->Add(std::move(record));
    }
  }

  std::size_t ExactCount(const MixedCell& q) const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < data_->size(); ++i) {
      if (q.Contains(*data_, data_->record(i))) ++count;
    }
    return count;
  }

  Taxonomy region_;
  Taxonomy product_;
  std::unique_ptr<MixedDataset> data_;
};

TEST_F(MultiAttributeFixture, RoundRobinCyclesThroughAllAttributes) {
  MixedPolicy policy(*data_);
  MixedCell cell = policy.Root();
  // Attribute order: numeric (0), region (1), product (2), numeric, ...
  cell = policy.Split(cell)[0];
  EXPECT_DOUBLE_EQ(cell.box.hi(0), 0.5);                 // Numeric split.
  EXPECT_EQ(cell.category_nodes[0], region_.root());     // Untouched.
  cell = policy.Split(cell)[0];
  EXPECT_NE(cell.category_nodes[0], region_.root());     // Region split.
  EXPECT_EQ(cell.category_nodes[1], product_.root());
  cell = policy.Split(cell)[0];
  EXPECT_NE(cell.category_nodes[1], product_.root());    // Product split.
  // Fourth split returns to the numeric dimension.
  cell = policy.Split(cell)[0];
  EXPECT_DOUBLE_EQ(cell.box.hi(0), 0.25);
}

TEST_F(MultiAttributeFixture, ExhaustedTaxonomiesAreSkipped) {
  MixedPolicy policy(*data_, /*max_numeric_depth=*/50);
  // Drive the region taxonomy to a leaf, then verify further splits skip
  // it and still succeed.
  MixedCell cell = policy.Root();
  for (int i = 0; i < 12 && policy.CanSplit(cell); ++i) {
    cell = policy.Split(cell)[0];
  }
  EXPECT_TRUE(region_.is_leaf(cell.category_nodes[0]));
  EXPECT_TRUE(product_.is_leaf(cell.category_nodes[1]));
  EXPECT_TRUE(policy.CanSplit(cell));  // Numeric depth remains.
  const auto children = policy.Split(cell);
  EXPECT_EQ(children.size(), 2u);  // Numeric bisection.
}

TEST_F(MultiAttributeFixture, CrossAttributeQueryIsAccurate) {
  Rng rng(2);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.6, {}, rng);
  // Query: region subtree {0,1} × product leaf 3 × price < 0.2.
  MixedCell query;
  query.box = Box({0.0}, {0.2});
  query.category_nodes = {region_.children(region_.root())[0],
                          product_.NodeOf(3)};
  const double exact = static_cast<double>(ExactCount(query));
  ASSERT_GT(exact, 10000.0);
  EXPECT_NEAR(hist.Query(query), exact, 0.2 * exact);
}

TEST_F(MultiAttributeFixture, FullDomainQueryNearCardinality) {
  Rng rng(3);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.0, {}, rng);
  MixedCell query;
  query.box = Box({0.0}, {1.0});
  query.category_nodes = {region_.root(), product_.root()};
  EXPECT_NEAR(hist.Query(query), 30000.0, 2000.0);
}

TEST_F(MultiAttributeFixture, DisjointCategoryQueryIsSmall) {
  Rng rng(4);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.6, {}, rng);
  // Region 3 × product 7: only diffuse mass (~30000·0.4/32 ≈ 375).
  MixedCell query;
  query.box = Box({0.0}, {1.0});
  query.category_nodes = {region_.NodeOf(3), product_.NodeOf(7)};
  const double exact = static_cast<double>(ExactCount(query));
  EXPECT_NEAR(hist.Query(query), exact, 0.6 * exact + 200.0);
}

}  // namespace
}  // namespace privtree
