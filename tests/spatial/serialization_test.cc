#include "spatial/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "dp/rng.h"
#include "eval/workload.h"

namespace privtree {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/privtree_hist_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static PointSet MakePoints(std::size_t n, Rng& rng) {
    PointSet points(2);
    double p[2];
    for (std::size_t i = 0; i < n; ++i) {
      p[0] = 0.3 + 0.1 * rng.NextDouble();
      p[1] = rng.NextDouble();
      points.Add(p);
    }
    return points;
  }

  std::string path_;
};

TEST_F(SerializationTest, RoundTripPreservesEveryQueryAnswer) {
  Rng rng(1);
  const PointSet points = MakePoints(20000, rng);
  const auto original =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  ASSERT_TRUE(SaveSpatialHistogram(path_, original).ok());
  auto loaded = LoadSpatialHistogram(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tree.size(), original.tree.size());
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 50, kMediumQueries, rng);
  for (const Box& q : queries) {
    EXPECT_NEAR(loaded.value().Query(q), original.Query(q),
                1e-9 * (1.0 + std::abs(original.Query(q))));
  }
}

TEST_F(SerializationTest, RoundTripPreservesStructure) {
  Rng rng(2);
  const PointSet points = MakePoints(5000, rng);
  const auto original =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 0.5, {}, rng);
  ASSERT_TRUE(SaveSpatialHistogram(path_, original).ok());
  auto loaded = LoadSpatialHistogram(path_);
  ASSERT_TRUE(loaded.ok());
  for (std::size_t i = 0; i < original.tree.size(); ++i) {
    const auto& a = original.tree.node(static_cast<NodeId>(i));
    const auto& b = loaded.value().tree.node(static_cast<NodeId>(i));
    ASSERT_EQ(a.parent, b.parent);
    ASSERT_EQ(a.depth, b.depth);
    ASSERT_EQ(a.children.size(), b.children.size());
    ASSERT_EQ(a.domain.box, b.domain.box);
  }
}

TEST_F(SerializationTest, MissingFileIsIOError) {
  const auto loaded = LoadSpatialHistogram("/nonexistent/h.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SerializationTest, BadMagicIsInvalidArgument) {
  std::ofstream(path_) << "not-a-histogram\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, TruncatedFileIsInvalidArgument) {
  std::ofstream(path_)
      << "privtree-histogram v1\ndim 2\nnodes 3\n-1 10 0 1 0 1\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, ForwardParentReferenceIsRejected) {
  std::ofstream(path_) << "privtree-histogram v1\ndim 1\nnodes 2\n"
                       << "-1 10 0 1\n5 3 0 0.5\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, SaveEmptyHistogramIsRejected) {
  SpatialHistogram empty;
  EXPECT_FALSE(SaveSpatialHistogram(path_, empty).ok());
}

TEST_F(SerializationTest, V1TextFormatIsPinnedForever) {
  // The v1 layout is frozen: files written by old builds must keep loading
  // even though new synopses are written in the v2 binary envelope.  This
  // literal file IS the format — do not regenerate it from code.
  std::ofstream(path_) << "privtree-histogram v1\n"
                          "dim 2\n"
                          "nodes 3\n"
                          "-1 10.5 0 1 0 1\n"
                          "0 4.25 0 0.5 0 1\n"
                          "0 6.25 0.5 1 0 1\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().tree.size(), 3u);
  EXPECT_EQ(loaded.value().count[0], 10.5);
  EXPECT_EQ(loaded.value().count[1], 4.25);
  EXPECT_EQ(loaded.value().count[2], 6.25);
  EXPECT_EQ(loaded.value().tree.node(1).parent, 0);
  EXPECT_EQ(loaded.value().tree.node(1).domain.box,
            Box({0.0, 0.0}, {0.5, 1.0}));
  // Full-domain query serves the released root count.
  EXPECT_DOUBLE_EQ(loaded.value().Query(Box({0.0, 0.0}, {1.0, 1.0})), 10.5);
}

TEST_F(SerializationTest, SaveStillWritesTheV1Header) {
  Rng rng(4);
  const PointSet points = MakePoints(500, rng);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  ASSERT_TRUE(SaveSpatialHistogram(path_, hist).ok());
  std::ifstream in(path_);
  std::string magic, dim_keyword;
  ASSERT_TRUE(std::getline(in, magic));
  EXPECT_EQ(magic, "privtree-histogram v1");
  std::size_t dim = 0;
  ASSERT_TRUE(in >> dim_keyword >> dim);
  EXPECT_EQ(dim_keyword, "dim");
  EXPECT_EQ(dim, 2u);
}

}  // namespace
}  // namespace privtree
