#include "spatial/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "dp/rng.h"
#include "eval/workload.h"

namespace privtree {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/privtree_hist_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static PointSet MakePoints(std::size_t n, Rng& rng) {
    PointSet points(2);
    double p[2];
    for (std::size_t i = 0; i < n; ++i) {
      p[0] = 0.3 + 0.1 * rng.NextDouble();
      p[1] = rng.NextDouble();
      points.Add(p);
    }
    return points;
  }

  std::string path_;
};

TEST_F(SerializationTest, RoundTripPreservesEveryQueryAnswer) {
  Rng rng(1);
  const PointSet points = MakePoints(20000, rng);
  const auto original =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  ASSERT_TRUE(SaveSpatialHistogram(path_, original).ok());
  auto loaded = LoadSpatialHistogram(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tree.size(), original.tree.size());
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 50, kMediumQueries, rng);
  for (const Box& q : queries) {
    EXPECT_NEAR(loaded.value().Query(q), original.Query(q),
                1e-9 * (1.0 + std::abs(original.Query(q))));
  }
}

TEST_F(SerializationTest, RoundTripPreservesStructure) {
  Rng rng(2);
  const PointSet points = MakePoints(5000, rng);
  const auto original =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 0.5, {}, rng);
  ASSERT_TRUE(SaveSpatialHistogram(path_, original).ok());
  auto loaded = LoadSpatialHistogram(path_);
  ASSERT_TRUE(loaded.ok());
  for (std::size_t i = 0; i < original.tree.size(); ++i) {
    const auto& a = original.tree.node(static_cast<NodeId>(i));
    const auto& b = loaded.value().tree.node(static_cast<NodeId>(i));
    ASSERT_EQ(a.parent, b.parent);
    ASSERT_EQ(a.depth, b.depth);
    ASSERT_EQ(a.children.size(), b.children.size());
    ASSERT_EQ(a.domain.box, b.domain.box);
  }
}

TEST_F(SerializationTest, MissingFileIsIOError) {
  const auto loaded = LoadSpatialHistogram("/nonexistent/h.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(SerializationTest, BadMagicIsInvalidArgument) {
  std::ofstream(path_) << "not-a-histogram\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, TruncatedFileIsInvalidArgument) {
  std::ofstream(path_)
      << "privtree-histogram v1\ndim 2\nnodes 3\n-1 10 0 1 0 1\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, ForwardParentReferenceIsRejected) {
  std::ofstream(path_) << "privtree-histogram v1\ndim 1\nnodes 2\n"
                       << "-1 10 0 1\n5 3 0 0.5\n";
  const auto loaded = LoadSpatialHistogram(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, SaveEmptyHistogramIsRejected) {
  SpatialHistogram empty;
  EXPECT_FALSE(SaveSpatialHistogram(path_, empty).ok());
}

}  // namespace
}  // namespace privtree
