// Parameterized property tests of the end-to-end spatial histogram across
// dataset shapes and privacy budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

struct PropertyCase {
  const char* dataset;
  double epsilon;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = info.param.dataset;
  name += "_eps";
  name += std::to_string(static_cast<int>(info.param.epsilon * 100));
  return name;
}

PointSet MakeData(const std::string& name, Rng& rng) {
  if (name == "road") return GenerateRoadLike(30000, rng);
  if (name == "gowalla") return GenerateGowallaLike(30000, rng);
  if (name == "nyc") return GenerateNycLike(20000, rng);
  return GenerateBeijingLike(20000, rng);
}

class SpatialHistogramPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SpatialHistogramPropertyTest, LeavesPartitionDomainVolume) {
  Rng rng(100);
  const PointSet points = MakeData(GetParam().dataset, rng);
  const Box domain = Box::UnitCube(points.dim());
  const auto hist = BuildPrivTreeHistogram(points, domain,
                                           GetParam().epsilon, {}, rng);
  double volume = 0.0;
  for (NodeId leaf : hist.tree.LeafIds()) {
    volume += hist.tree.node(leaf).domain.box.Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-6);
}

TEST_P(SpatialHistogramPropertyTest, InternalCountsEqualChildSums) {
  Rng rng(101);
  const PointSet points = MakeData(GetParam().dataset, rng);
  const Box domain = Box::UnitCube(points.dim());
  const auto hist = BuildPrivTreeHistogram(points, domain,
                                           GetParam().epsilon, {}, rng);
  for (std::size_t i = 0; i < hist.tree.size(); ++i) {
    const auto& node = hist.tree.node(static_cast<NodeId>(i));
    if (node.is_leaf()) continue;
    double total = 0.0;
    for (NodeId child : node.children) total += hist.count[child];
    ASSERT_NEAR(hist.count[i], total, 1e-9);
  }
}

TEST_P(SpatialHistogramPropertyTest, RootCountNearCardinality) {
  Rng rng(102);
  const PointSet points = MakeData(GetParam().dataset, rng);
  const Box domain = Box::UnitCube(points.dim());
  const auto hist = BuildPrivTreeHistogram(points, domain,
                                           GetParam().epsilon, {}, rng);
  // Root = sum of L noisy leaf counts; sd = sqrt(2L)·(1/(ε/2)).
  const double leaves = static_cast<double>(hist.tree.LeafCount());
  const double sd = std::sqrt(2.0 * leaves) * 2.0 / GetParam().epsilon;
  EXPECT_NEAR(hist.count[0], static_cast<double>(points.size()),
              6.0 * sd + 1.0);
}

TEST_P(SpatialHistogramPropertyTest, QueryAdditivityOverDisjointBoxes) {
  // Query(A) + Query(B) == Query(A ∪ B) when A, B partition a box along
  // one axis (the traversal is deterministic given the synopsis).
  Rng rng(103);
  const PointSet points = MakeData(GetParam().dataset, rng);
  const std::size_t d = points.dim();
  const Box domain = Box::UnitCube(d);
  const auto hist = BuildPrivTreeHistogram(points, domain,
                                           GetParam().epsilon, {}, rng);
  std::vector<double> lo(d, 0.1), hi(d, 0.9);
  const Box whole(lo, hi);
  std::vector<double> mid_hi = hi;
  mid_hi[0] = 0.47;
  std::vector<double> mid_lo = lo;
  mid_lo[0] = 0.47;
  const Box left(lo, mid_hi);
  const Box right(mid_lo, hi);
  EXPECT_NEAR(hist.Query(left) + hist.Query(right), hist.Query(whole),
              1e-6 * (1.0 + std::abs(hist.Query(whole))));
}

TEST_P(SpatialHistogramPropertyTest, ErrorIsBoundedOnMediumQueries) {
  Rng rng(104);
  const PointSet points = MakeData(GetParam().dataset, rng);
  const Box domain = Box::UnitCube(points.dim());
  const auto queries = GenerateRangeQueries(domain, 60, kMediumQueries, rng);
  const auto exact = ExactAnswers(queries, points);
  const auto hist = BuildPrivTreeHistogram(points, domain,
                                           GetParam().epsilon, {}, rng);
  const double error = MeanRelativeError(
      queries, exact, [&](const Box& q) { return hist.Query(q); },
      points.size());
  EXPECT_TRUE(std::isfinite(error));
  // Loose sanity ceiling; at ε >= 0.1 typical values are far below 1.
  EXPECT_LT(error, 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, SpatialHistogramPropertyTest,
    ::testing::Values(PropertyCase{"road", 0.1}, PropertyCase{"road", 1.6},
                      PropertyCase{"gowalla", 0.1},
                      PropertyCase{"gowalla", 1.6},
                      PropertyCase{"nyc", 0.4},
                      PropertyCase{"beijing", 0.4}),
    CaseName);

}  // namespace
}  // namespace privtree
