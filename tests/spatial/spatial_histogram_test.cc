#include "spatial/spatial_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet ClusteredPoints(std::size_t n, Rng& rng) {
  // Two clusters plus background; skewed enough that the tree adapts.
  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    const double mode = rng.NextDouble();
    if (mode < 0.45) {
      p[0] = 0.2 + 0.01 * rng.NextDouble();
      p[1] = 0.3 + 0.01 * rng.NextDouble();
    } else if (mode < 0.9) {
      p[0] = 0.7 + 0.02 * rng.NextDouble();
      p[1] = 0.8 + 0.02 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(PrivTreeHistogramTest, TotalCountNearCardinality) {
  Rng rng(1);
  const PointSet points = ClusteredPoints(50000, rng);
  const auto hist = BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {},
                                           rng);
  // The root count is the sum of noisy leaf counts: unbiased around n.
  EXPECT_NEAR(hist.count[0], 50000.0, 0.02 * 50000.0);
}

TEST(PrivTreeHistogramTest, InternalCountsAreConsistent) {
  Rng rng(2);
  const PointSet points = ClusteredPoints(20000, rng);
  const auto hist = BuildPrivTreeHistogram(points, Box::UnitCube(2), 0.5, {},
                                           rng);
  for (std::size_t i = 0; i < hist.tree.size(); ++i) {
    const auto& node = hist.tree.node(static_cast<NodeId>(i));
    if (node.is_leaf()) continue;
    double child_total = 0.0;
    for (NodeId child : node.children) child_total += hist.count[child];
    EXPECT_NEAR(hist.count[i], child_total, 1e-9);
  }
}

TEST(PrivTreeHistogramTest, FullDomainQueryEqualsRootCount) {
  Rng rng(3);
  const PointSet points = ClusteredPoints(10000, rng);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_NEAR(hist.Query(Box::UnitCube(2)), hist.count[0], 1e-6);
}

TEST(PrivTreeHistogramTest, QueryAccuracyImprovesWithEpsilon) {
  Rng rng(4);
  const PointSet points = ClusteredPoints(100000, rng);
  const Box query({0.15, 0.25}, {0.35, 0.45});  // Covers cluster 1.
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  const auto error_at = [&](double epsilon) {
    double total = 0.0;
    for (int rep = 0; rep < 8; ++rep) {
      const auto hist = BuildPrivTreeHistogram(points, Box::UnitCube(2),
                                               epsilon, {}, rng);
      total += std::abs(hist.Query(query) - exact);
    }
    return total / 8.0;
  };
  const double coarse = error_at(0.05);
  const double fine = error_at(1.6);
  EXPECT_LT(fine, exact * 0.1);
  EXPECT_LT(fine, coarse);
}

TEST(PrivTreeHistogramTest, TreeGrowsDeepInDenseRegions) {
  Rng rng(5);
  const PointSet points = ClusteredPoints(100000, rng);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  // Leaves inside the tight cluster should be much deeper than leaves in
  // the sparse background.
  std::int32_t max_depth_cluster = 0, max_depth_corner = 0;
  const std::vector<double> cluster_point = {0.205, 0.305};
  const std::vector<double> corner_point = {0.99, 0.01};
  for (NodeId leaf : hist.tree.LeafIds()) {
    const auto& node = hist.tree.node(leaf);
    if (node.domain.box.Contains(cluster_point)) {
      max_depth_cluster = std::max(max_depth_cluster, node.depth);
    }
    if (node.domain.box.Contains(corner_point)) {
      max_depth_corner = std::max(max_depth_corner, node.depth);
    }
  }
  EXPECT_GT(max_depth_cluster, max_depth_corner + 2);
}

TEST(PrivTreeHistogramTest, RoundRobinFanoutOption) {
  Rng rng(6);
  const PointSet points = ClusteredPoints(5000, rng);
  PrivTreeHistogramOptions options;
  options.dims_per_split = 1;  // β = 2.
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, options, rng);
  for (const auto& node : hist.tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_EQ(node.children.size(), 2u);
    }
  }
}

TEST(PrivTreeHistogramTest, LeavesPartitionTheDomain) {
  Rng rng(7);
  const PointSet points = ClusteredPoints(20000, rng);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 0.8, {}, rng);
  double leaf_volume = 0.0;
  for (NodeId leaf : hist.tree.LeafIds()) {
    leaf_volume += hist.tree.node(leaf).domain.box.Volume();
  }
  EXPECT_NEAR(leaf_volume, 1.0, 1e-9);
}

TEST(PrivTreeHistogramTest, DisjointQueryIsZero) {
  Rng rng(8);
  const PointSet points = ClusteredPoints(1000, rng);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_DOUBLE_EQ(hist.Query(Box({2.0, 2.0}, {3.0, 3.0})), 0.0);
}

TEST(SimpleTreeHistogramTest, HeightCapIsRespected) {
  Rng rng(9);
  const PointSet points = ClusteredPoints(100000, rng);
  SimpleTreeHistogramOptions options;
  options.height = 4;
  const auto hist = BuildSimpleTreeHistogram(points, Box::UnitCube(2), 1.0,
                                             options, rng);
  EXPECT_LE(hist.tree.Height(), 3);
  EXPECT_EQ(hist.count.size(), hist.tree.size());
}

TEST(SimpleTreeHistogramTest, PrivTreeBeatsSimpleTreeOnSkewedData) {
  // The headline utility claim on a miniature version of Figure 5.
  Rng rng(10);
  const PointSet points = ClusteredPoints(100000, rng);
  const Box query({0.19, 0.29}, {0.23, 0.33});  // Small query on cluster 1.
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  ASSERT_GT(exact, 1000.0);
  double privtree_error = 0.0, simple_error = 0.0;
  constexpr int kReps = 10;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto pt =
        BuildPrivTreeHistogram(points, Box::UnitCube(2), 0.4, {}, rng);
    privtree_error += std::abs(pt.Query(query) - exact);
    SimpleTreeHistogramOptions options;
    options.height = 10;  // Deep enough to resolve the cluster ⇒ huge noise.
    const auto st = BuildSimpleTreeHistogram(points, Box::UnitCube(2), 0.4,
                                             options, rng);
    simple_error += std::abs(st.Query(query) - exact);
  }
  EXPECT_LT(privtree_error, simple_error);
}

}  // namespace
}  // namespace privtree
