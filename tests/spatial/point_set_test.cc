#include "spatial/point_set.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace privtree {
namespace {

TEST(PointSetTest, AddAndAccess) {
  PointSet points(2);
  EXPECT_TRUE(points.empty());
  const std::vector<double> p1 = {0.1, 0.2};
  const std::vector<double> p2 = {0.3, 0.4};
  points.Add(p1);
  points.Add(p2);
  EXPECT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points.point(0)[0], 0.1);
  EXPECT_DOUBLE_EQ(points.point(1)[1], 0.4);
}

TEST(PointSetTest, WrapExistingCoords) {
  PointSet points(3, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  EXPECT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points.point(1)[2], 6.0);
}

TEST(PointSetTest, ExactRangeCount) {
  PointSet points(2);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> p = {0.1 * i, 0.1 * i};
    points.Add(p);
  }
  // [0, 0.35)² contains points at 0.0, 0.1, 0.2, 0.3.
  EXPECT_EQ(points.ExactRangeCount(Box({0.0, 0.0}, {0.35, 0.35})), 4u);
  EXPECT_EQ(points.ExactRangeCount(Box({0.0, 0.0}, {1.0, 1.0})), 10u);
  EXPECT_EQ(points.ExactRangeCount(Box({2.0, 2.0}, {3.0, 3.0})), 0u);
}

TEST(PointSetTest, ExactRangeCountIsHalfOpen) {
  PointSet points(1);
  const std::vector<double> p = {0.5};
  points.Add(p);
  EXPECT_EQ(points.ExactRangeCount(Box({0.5}, {0.6})), 1u);
  EXPECT_EQ(points.ExactRangeCount(Box({0.4}, {0.5})), 0u);
}

TEST(PointSetTest, BoundingBoxContainsEveryPoint) {
  PointSet points(2);
  const std::vector<std::vector<double>> data = {
      {0.5, -1.0}, {2.0, 3.0}, {-0.5, 0.0}};
  for (const auto& p : data) points.Add(p);
  const Box bounds = points.BoundingBox();
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(bounds.Contains(points.point(i))) << i;
  }
}

TEST(PointSetTest, BoundingBoxOfSinglePointIsNonDegenerate) {
  PointSet points(2);
  const std::vector<double> p = {0.5, 0.5};
  points.Add(p);
  const Box bounds = points.BoundingBox();
  EXPECT_TRUE(bounds.Contains(points.point(0)));
  EXPECT_GT(bounds.Volume(), 0.0);
}

TEST(PointSetDeathTest, NonFiniteCoordinatesAbort) {
  PointSet points(2);
  const std::vector<double> with_nan = {0.5, std::nan("")};
  EXPECT_DEATH(points.Add(with_nan), "PRIVTREE_CHECK");
  const std::vector<double> with_inf = {
      std::numeric_limits<double>::infinity(), 0.5};
  EXPECT_DEATH(points.Add(with_inf), "PRIVTREE_CHECK");
}

TEST(PointSetDeathTest, WrongDimensionAborts) {
  PointSet points(2);
  const std::vector<double> p = {0.1};
  EXPECT_DEATH(points.Add(p), "PRIVTREE_CHECK");
  EXPECT_DEATH(PointSet(2, {1.0, 2.0, 3.0}), "PRIVTREE_CHECK");
  EXPECT_DEATH(PointSet(0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
