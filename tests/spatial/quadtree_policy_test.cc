#include "spatial/quadtree_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/morton_index.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(QuadtreePolicyTest, RootCoversEverything) {
  Rng rng(1);
  const PointSet points = RandomPoints(1000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  const QuadtreePolicy policy(index, Box::UnitCube(2), 2);
  const auto root = policy.Root();
  EXPECT_EQ(policy.Score(root), 1000.0);
  EXPECT_EQ(policy.fanout(), 4);
}

TEST(QuadtreePolicyTest, SplitProducesFanoutChildren) {
  Rng rng(2);
  const PointSet points = RandomPoints(100, 4, rng);
  const MortonIndex index(points, Box::UnitCube(4));
  for (int i : {1, 2, 3, 4}) {
    const QuadtreePolicy policy(index, Box::UnitCube(4), i);
    EXPECT_EQ(policy.fanout(), 1 << i);
    const auto children = policy.Split(policy.Root());
    EXPECT_EQ(children.size(), static_cast<std::size_t>(1 << i));
  }
}

TEST(QuadtreePolicyTest, ChildScoresSumToParent) {
  Rng rng(3);
  const PointSet points = RandomPoints(50000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  const QuadtreePolicy policy(index, Box::UnitCube(2), 2);
  // Walk two levels down; at each node, children partition the score.
  std::vector<SpatialCell> frontier = {policy.Root()};
  for (int level = 0; level < 3; ++level) {
    std::vector<SpatialCell> next;
    for (const auto& cell : frontier) {
      const double parent_score = policy.Score(cell);
      double child_total = 0.0;
      for (const auto& child : policy.Split(cell)) {
        child_total += policy.Score(child);
        next.push_back(child);
      }
      EXPECT_DOUBLE_EQ(child_total, parent_score);
    }
    frontier = std::move(next);
  }
}

TEST(QuadtreePolicyTest, GeometryMatchesMortonCounts) {
  // The box geometry and the Morton-prefix count must agree: the score of
  // every cell equals the exact count of points in its box.
  Rng rng(4);
  const PointSet points = RandomPoints(20000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  const QuadtreePolicy policy(index, Box::UnitCube(2), 2);
  std::vector<SpatialCell> frontier = {policy.Root()};
  for (int level = 0; level < 4; ++level) {
    std::vector<SpatialCell> next;
    for (const auto& cell : frontier) {
      for (auto& child : policy.Split(cell)) next.push_back(std::move(child));
    }
    frontier = std::move(next);
  }
  for (const auto& cell : frontier) {
    EXPECT_EQ(policy.Score(cell),
              static_cast<double>(points.ExactRangeCount(cell.box)))
        << cell.box.ToString();
  }
}

TEST(QuadtreePolicyTest, RoundRobinSplitsCycleDimensions) {
  Rng rng(5);
  const PointSet points = RandomPoints(100, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  const QuadtreePolicy policy(index, Box::UnitCube(2), 1);  // β = 2.
  const auto root = policy.Root();
  const auto level1 = policy.Split(root);
  ASSERT_EQ(level1.size(), 2u);
  // First split bisects dim 0: children differ in x-extent only.
  EXPECT_DOUBLE_EQ(level1[0].box.hi(0), 0.5);
  EXPECT_DOUBLE_EQ(level1[0].box.hi(1), 1.0);
  const auto level2 = policy.Split(level1[0]);
  // Second split bisects dim 1.
  EXPECT_DOUBLE_EQ(level2[0].box.hi(1), 0.5);
  EXPECT_DOUBLE_EQ(level2[0].box.hi(0), 0.5);
}

TEST(QuadtreePolicyTest, RoundRobinScoresMatchGeometry4D) {
  Rng rng(6);
  const PointSet points = RandomPoints(30000, 4, rng);
  const MortonIndex index(points, Box::UnitCube(4));
  const QuadtreePolicy policy(index, Box::UnitCube(4), 2);  // β = 4.
  std::vector<SpatialCell> frontier = {policy.Root()};
  for (int level = 0; level < 3; ++level) {
    std::vector<SpatialCell> next;
    for (const auto& cell : frontier) {
      for (auto& child : policy.Split(cell)) next.push_back(std::move(child));
    }
    frontier = std::move(next);
  }
  for (const auto& cell : frontier) {
    EXPECT_EQ(policy.Score(cell),
              static_cast<double>(points.ExactRangeCount(cell.box)));
  }
}

TEST(QuadtreePolicyTest, CanSplitExhaustsBitBudget) {
  Rng rng(7);
  const PointSet points = RandomPoints(10, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  const QuadtreePolicy policy(index, Box::UnitCube(2), 2);
  SpatialCell cell = policy.Root();
  int splits = 0;
  while (policy.CanSplit(cell)) {
    cell = policy.Split(cell)[0];
    ++splits;
  }
  EXPECT_EQ(splits, index.max_prefix_bits() / 2);
}

TEST(QuadtreePolicyDeathTest, InvalidDimsPerSplitAborts) {
  Rng rng(8);
  const PointSet points = RandomPoints(10, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  EXPECT_DEATH(QuadtreePolicy(index, Box::UnitCube(2), 0), "PRIVTREE_CHECK");
  EXPECT_DEATH(QuadtreePolicy(index, Box::UnitCube(2), 3), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
