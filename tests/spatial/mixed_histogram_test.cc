// Tests of the Section 3.5 extension: PrivTree over mixed numeric +
// categorical domains with taxonomy splits.
#include "spatial/mixed_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/privtree.h"
#include "dp/rng.h"
#include "spatial/mixed_policy.h"
#include "spatial/taxonomy.h"

namespace privtree {
namespace {

/// One categorical attribute with 4 values grouped {0,1} vs {2,3}, plus
/// one numeric attribute.
class MixedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    taxonomy_.AddRoot("root");
    const NodeId left = taxonomy_.AddCategory(0, "left");
    const NodeId right = taxonomy_.AddCategory(0, "right");
    taxonomy_.AddCategory(left, "a");
    taxonomy_.AddCategory(left, "b");
    taxonomy_.AddCategory(right, "c");
    taxonomy_.AddCategory(right, "d");
    taxonomy_.Finalize();
    data_ = std::make_unique<MixedDataset>(
        1, std::vector<const Taxonomy*>{&taxonomy_});
    // Skewed data: category "a" with numeric values near 0.25 dominates.
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
      MixedRecord record;
      if (rng.NextDouble() < 0.7) {
        record.numeric = {0.25 + 0.01 * rng.NextDouble()};
        record.categories = {0};
      } else {
        record.numeric = {rng.NextDouble()};
        record.categories = {
            static_cast<CategoryValue>(rng.NextBounded(4))};
      }
      data_->Add(std::move(record));
    }
  }

  std::size_t ExactCount(const MixedCell& q) const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < data_->size(); ++i) {
      if (q.Contains(*data_, data_->record(i))) ++count;
    }
    return count;
  }

  Taxonomy taxonomy_;
  std::unique_ptr<MixedDataset> data_;
};

TEST_F(MixedFixture, PolicyRootCoversEverything) {
  MixedPolicy policy(*data_);
  const auto root = policy.Root();
  EXPECT_EQ(policy.Score(root), 20000.0);
  EXPECT_TRUE(policy.CanSplit(root));
  EXPECT_EQ(policy.fanout(), 2);
}

TEST_F(MixedFixture, SplitAlternatesNumericAndCategorical) {
  MixedPolicy policy(*data_);
  const auto root = policy.Root();
  const auto level1 = policy.Split(root);  // Numeric bisection first.
  ASSERT_EQ(level1.size(), 2u);
  EXPECT_DOUBLE_EQ(level1[0].box.hi(0), 0.5);
  EXPECT_EQ(level1[0].category_nodes[0], taxonomy_.root());
  const auto level2 = policy.Split(level1[0]);  // Then the taxonomy.
  ASSERT_EQ(level2.size(), 2u);
  EXPECT_EQ(level2[0].category_nodes[0], taxonomy_.children(0)[0]);
  EXPECT_DOUBLE_EQ(level2[0].box.hi(0), 0.5);  // Box unchanged.
}

TEST_F(MixedFixture, ChildScoresPartitionParent) {
  MixedPolicy policy(*data_);
  std::vector<MixedCell> frontier = {policy.Root()};
  for (int level = 0; level < 3; ++level) {
    std::vector<MixedCell> next;
    for (const auto& cell : frontier) {
      if (!policy.CanSplit(cell)) continue;
      const double parent = policy.Score(cell);
      double total = 0.0;
      for (auto& child : policy.Split(cell)) {
        total += policy.Score(child);
        next.push_back(std::move(child));
      }
      EXPECT_DOUBLE_EQ(total, parent);
    }
    frontier = std::move(next);
  }
}

TEST_F(MixedFixture, TaxonomySplitsExhaust) {
  MixedPolicy policy(*data_, /*max_numeric_depth=*/2);
  // Descend always into the first child: after 2 numeric and 2 taxonomy
  // levels nothing remains splittable.
  MixedCell cell = policy.Root();
  int splits = 0;
  while (policy.CanSplit(cell)) {
    cell = policy.Split(cell)[0];
    ++splits;
  }
  EXPECT_EQ(splits, 4);
}

TEST_F(MixedFixture, HistogramAnswersMixedQueries) {
  Rng rng(2);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.6, {}, rng);
  EXPECT_GT(hist.tree.size(), 1u);

  // Query: category subtree "left" (= values {a, b}) with x ∈ [0.2, 0.3).
  MixedCell query;
  query.box = Box({0.2}, {0.3});
  query.category_nodes = {taxonomy_.children(0)[0]};
  const double exact = static_cast<double>(ExactCount(query));
  ASSERT_GT(exact, 10000.0);
  EXPECT_NEAR(hist.Query(query), exact, 0.15 * exact);
}

TEST_F(MixedFixture, FullDomainQueryNearCardinality) {
  Rng rng(3);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.0, {}, rng);
  MixedCell query;
  query.box = Box({0.0}, {1.0});
  query.category_nodes = {taxonomy_.root()};
  EXPECT_NEAR(hist.Query(query), 20000.0, 1500.0);
}

TEST_F(MixedFixture, LeafCategoryQueryIsAnswerable) {
  Rng rng(4);
  const MixedHistogram hist = BuildMixedHistogram(*data_, 1.6, {}, rng);
  MixedCell query;
  query.box = Box({0.0}, {1.0});
  query.category_nodes = {taxonomy_.NodeOf(3)};  // Value "d" only.
  const double exact = static_cast<double>(ExactCount(query));
  // "d" holds ~7.5% of the data; tolerate coarse-leaf uniformity error.
  EXPECT_NEAR(hist.Query(query), exact, 0.5 * exact + 300.0);
}

TEST(MixedCategoricalOnlyTest, WorksWithoutNumericDims) {
  Taxonomy taxonomy = Taxonomy::Balanced(8, 2);
  MixedDataset data(0, {&taxonomy});
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    MixedRecord record;
    record.categories = {
        static_cast<CategoryValue>(rng.NextBounded(2))};  // Skewed to 0/1.
    data.Add(std::move(record));
  }
  const MixedHistogram hist = BuildMixedHistogram(data, 1.6, {}, rng);
  MixedCell query;
  query.box = Box::UnitCube(0);
  query.category_nodes = {taxonomy.root()};
  EXPECT_NEAR(hist.Query(query), 5000.0, 500.0);
}

TEST(MixedDeathTest, RecordValidationAborts) {
  Taxonomy taxonomy = Taxonomy::Flat(3);
  MixedDataset data(1, {&taxonomy});
  MixedRecord bad_numeric;
  bad_numeric.numeric = {1.5};
  bad_numeric.categories = {0};
  EXPECT_DEATH(data.Add(bad_numeric), "PRIVTREE_CHECK");
  MixedRecord bad_category;
  bad_category.numeric = {0.5};
  bad_category.categories = {7};
  EXPECT_DEATH(data.Add(bad_category), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
