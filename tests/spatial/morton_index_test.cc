#include "spatial/morton_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(MortonIndexTest, EmptyPrefixCountsEverything) {
  Rng rng(1);
  const PointSet points = RandomPoints(1000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  EXPECT_EQ(index.CountPrefix(0, 0), 1000u);
}

TEST(MortonIndexTest, FirstLevelPartitions2D) {
  Rng rng(2);
  const PointSet points = RandomPoints(5000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  // The four depth-1 quadrants (2 bits) partition the points.
  std::size_t total = 0;
  for (MortonKey q = 0; q < 4; ++q) total += index.CountPrefix(q, 2);
  EXPECT_EQ(total, 5000u);
}

TEST(MortonIndexTest, PrefixCountsMatchExactBoxCounts2D) {
  Rng rng(3);
  const PointSet points = RandomPoints(20000, 2, rng);
  const Box root = Box::UnitCube(2);
  const MortonIndex index(points, root);
  // Check a concrete depth-2 cell: first split x (bit 1 of prefix level 1),
  // then y.  Bit order is level-major, dim-minor: bits = (x1, y1, x2, y2).
  // Prefix 0b1010 (x1=1, y1=0, x2=1, y2=0) = x ∈ [0.75,1.0), y ∈ [0,0.25).
  const std::size_t morton = index.CountPrefix(0b1010, 4);
  const std::size_t exact =
      points.ExactRangeCount(Box({0.75, 0.0}, {1.0, 0.25}));
  EXPECT_EQ(morton, exact);
}

TEST(MortonIndexTest, PrefixCountsMatchExactBoxCounts4D) {
  Rng rng(4);
  const PointSet points = RandomPoints(30000, 4, rng);
  const MortonIndex index(points, Box::UnitCube(4));
  // Depth-1 cell (4 bits): lower half in dims 0 and 2, upper in 1 and 3.
  // Bit order: (d0, d1, d2, d3) → prefix 0b0101.
  const std::size_t morton = index.CountPrefix(0b0101, 4);
  const std::size_t exact = points.ExactRangeCount(
      Box({0.0, 0.5, 0.0, 0.5}, {0.5, 1.0, 0.5, 1.0}));
  EXPECT_EQ(morton, exact);
}

TEST(MortonIndexTest, ChildrenPartitionParent) {
  Rng rng(5);
  const PointSet points = RandomPoints(10000, 2, rng);
  const MortonIndex index(points, Box::UnitCube(2));
  // For a few random prefixes, the two one-bit extensions partition.
  for (int bits = 0; bits <= 20; bits += 4) {
    const MortonKey prefix = 0b1001 & ((MortonKey{1} << bits) - 1);
    const std::size_t parent = index.CountPrefix(prefix, bits);
    const std::size_t left = index.CountPrefix(prefix << 1, bits + 1);
    const std::size_t right =
        index.CountPrefix((prefix << 1) | 1, bits + 1);
    EXPECT_EQ(parent, left + right) << "bits=" << bits;
  }
}

TEST(MortonIndexTest, PointsOutsideRootAreClamped) {
  PointSet points(2);
  const std::vector<double> out_low = {-5.0, -5.0};
  const std::vector<double> out_high = {7.0, 7.0};
  points.Add(out_low);
  points.Add(out_high);
  const MortonIndex index(points, Box::UnitCube(2));
  EXPECT_EQ(index.CountPrefix(0, 0), 2u);
  // Clamped to the corners: prefix 00 (lower-left) and 11 (upper-right).
  EXPECT_EQ(index.CountPrefix(0b00, 2), 1u);
  EXPECT_EQ(index.CountPrefix(0b11, 2), 1u);
}

TEST(MortonIndexTest, NonUnitRootBoxCountsMatchGeometry) {
  Rng rng(9);
  const Box root({-10.0, 5.0}, {30.0, 6.0});
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 20000; ++i) {
    p[0] = -10.0 + 40.0 * rng.NextDouble();
    p[1] = 5.0 + 1.0 * rng.NextDouble();
    points.Add(p);
  }
  const MortonIndex index(points, root);
  // Depth-2 cell: x-upper then y-lower halves → prefix 0b10 over the
  // first split of x, then y.  Verify against the geometric box
  // [10, 30) x [5, 5.5).
  const std::size_t morton = index.CountPrefix(0b10, 2);
  const std::size_t exact =
      points.ExactRangeCount(Box({10.0, 5.0}, {30.0, 5.5}));
  EXPECT_EQ(morton, exact);
}

TEST(MortonIndexTest, LevelsPerDimBudget) {
  Rng rng(6);
  const PointSet p2 = RandomPoints(10, 2, rng);
  const MortonIndex i2(p2, Box::UnitCube(2));
  EXPECT_EQ(i2.levels_per_dim(), 63);
  EXPECT_EQ(i2.max_prefix_bits(), 126);
  const PointSet p4 = RandomPoints(10, 4, rng);
  const MortonIndex i4(p4, Box::UnitCube(4));
  EXPECT_EQ(i4.levels_per_dim(), 31);
  EXPECT_EQ(i4.max_prefix_bits(), 124);
}

TEST(MortonIndexTest, DeepPrefixOfTightClusterKeepsCount) {
  // 1000 identical points stay together arbitrarily deep.
  PointSet points(2);
  const std::vector<double> p = {0.3, 0.3};
  for (int i = 0; i < 1000; ++i) points.Add(p);
  const MortonIndex index(points, Box::UnitCube(2));
  const MortonKey key = index.KeyOf(p);
  for (int bits = 0; bits <= index.max_prefix_bits(); bits += 6) {
    const MortonKey prefix = key >> (index.max_prefix_bits() - bits);
    EXPECT_EQ(index.CountPrefix(prefix, bits), 1000u) << bits;
  }
}

}  // namespace
}  // namespace privtree
