// Randomized consistency fuzz: Morton-prefix counts must equal exact box
// counts for every cell of random decomposition paths, across dimensions
// and fanouts.
#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "spatial/morton_index.h"
#include "spatial/point_set.h"
#include "spatial/quadtree_policy.h"

namespace privtree {
namespace {

struct FuzzCase {
  std::size_t dim;
  int dims_per_split;
  std::uint64_t seed;
};

class MortonFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(MortonFuzzTest, RandomDescentCountsMatchGeometry) {
  const FuzzCase& config = GetParam();
  Rng rng(config.seed);
  // Clustered data so deep cells still contain points.
  PointSet points(config.dim);
  std::vector<double> p(config.dim);
  std::vector<double> center(config.dim);
  for (auto& c : center) c = rng.NextDouble();
  for (int i = 0; i < 20000; ++i) {
    const bool clustered = rng.NextDouble() < 0.6;
    for (std::size_t j = 0; j < config.dim; ++j) {
      p[j] = clustered
                 ? std::min(0.999999, center[j] + 0.001 * rng.NextDouble())
                 : rng.NextDouble();
    }
    points.Add(p);
  }
  const Box domain = Box::UnitCube(config.dim);
  const MortonIndex index(points, domain);
  const QuadtreePolicy policy(index, domain, config.dims_per_split);

  // 20 random root-to-depth-10 walks.
  for (int walk = 0; walk < 20; ++walk) {
    SpatialCell cell = policy.Root();
    for (int depth = 0; depth < 10 && policy.CanSplit(cell); ++depth) {
      auto children = policy.Split(cell);
      // Verify all children, then descend into a random one (biased toward
      // the cluster half the time so deep cells stay populated).
      double total = 0.0;
      for (const auto& child : children) {
        const double score = policy.Score(child);
        ASSERT_EQ(score,
                  static_cast<double>(points.ExactRangeCount(child.box)))
            << "walk " << walk << " depth " << depth;
        total += score;
      }
      ASSERT_EQ(total, policy.Score(cell));
      if (rng.NextDouble() < 0.5) {
        // Follow the cluster.
        std::size_t best = 0;
        for (std::size_t c = 1; c < children.size(); ++c) {
          if (policy.Score(children[c]) > policy.Score(children[best])) {
            best = c;
          }
        }
        cell = children[best];
      } else {
        cell = children[rng.NextBounded(children.size())];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndFanouts, MortonFuzzTest,
    ::testing::Values(FuzzCase{1, 1, 11}, FuzzCase{2, 2, 22},
                      FuzzCase{2, 1, 33}, FuzzCase{3, 3, 44},
                      FuzzCase{3, 2, 55}, FuzzCase{4, 4, 66},
                      FuzzCase{4, 2, 77}, FuzzCase{4, 1, 88}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.dim) + "_i" +
             std::to_string(info.param.dims_per_split);
    });

}  // namespace
}  // namespace privtree
