// Randomized fuzz of the prefix-sum grid query against the O(cells)
// brute-force fractional sum, across dimensions and grid shapes.
#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "hist/grid.h"

namespace privtree {
namespace {

struct GridFuzzCase {
  std::vector<std::int64_t> cells;
  std::uint64_t seed;
};

class GridFuzzTest : public ::testing::TestWithParam<GridFuzzCase> {};

double BruteForce(const GridHistogram& grid, const Box& query) {
  const std::size_t d = grid.dim();
  std::vector<std::int64_t> cell(d, 0);
  double expected = 0.0;
  bool done = false;
  while (!done) {
    const Box box = grid.CellBox(cell);
    const double volume = box.Volume();
    if (volume > 0.0) {
      expected += grid.counts()[grid.FlatIndex(cell)] *
                  box.IntersectionVolume(query) / volume;
    }
    done = true;
    for (std::size_t j = d; j-- > 0;) {
      if (++cell[j] < grid.cells_per_dim()[j]) {
        done = false;
        break;
      }
      cell[j] = 0;
    }
  }
  return expected;
}

TEST_P(GridFuzzTest, QueriesMatchBruteForce) {
  const GridFuzzCase& config = GetParam();
  Rng rng(config.seed);
  const std::size_t d = config.cells.size();
  GridHistogram grid(Box::UnitCube(d), config.cells);
  for (double& c : grid.counts()) {
    c = rng.NextDouble() * 100.0 - 20.0;  // Include negative cells.
  }
  grid.BuildPrefixSums();

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      // Occasionally out-of-domain coordinates to exercise clipping.
      double a = rng.NextDouble() * 1.4 - 0.2;
      double b = rng.NextDouble() * 1.4 - 0.2;
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b) + 1e-9;
    }
    const Box query(lo, hi);
    const double fast = grid.Query(query);
    const double slow = BruteForce(grid, query);
    ASSERT_NEAR(fast, slow, 1e-6 * (1.0 + std::abs(slow)))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridFuzzTest,
    ::testing::Values(GridFuzzCase{{17}, 1}, GridFuzzCase{{1}, 2},
                      GridFuzzCase{{5, 9}, 3}, GridFuzzCase{{16, 16}, 4},
                      GridFuzzCase{{1, 7}, 5}, GridFuzzCase{{3, 4, 5}, 6},
                      GridFuzzCase{{2, 3, 2, 3}, 7}),
    [](const auto& info) {
      std::string name = "cells";
      for (auto c : info.param.cells) name += "_" + std::to_string(c);
      return name;
    });

}  // namespace
}  // namespace privtree
