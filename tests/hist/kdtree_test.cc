#include "hist/kdtree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

PointSet SkewedPoints(std::size_t n, Rng& rng) {
  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.7) {
      p[0] = 0.2 + 0.05 * rng.NextDouble();
      p[1] = 0.8 + 0.05 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(PrivateMedianTest, HighEpsilonNearTrueMedian) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 1001; ++i) values.push_back(i / 1000.0);
  double total = 0.0;
  for (int rep = 0; rep < 30; ++rep) {
    total += PrivateMedianSplit(values, 0.0, 1.0, 20.0, rng);
  }
  EXPECT_NEAR(total / 30.0, 0.5, 0.05);
}

TEST(KdTreeTest, LeafCountIsTwoToTheHeight) {
  Rng rng(2);
  const PointSet points = SkewedPoints(10000, rng);
  KdTreeOptions options;
  options.height = 6;
  const KdTreeHistogram hist(points, Box::UnitCube(2), 1.0, options, rng);
  EXPECT_EQ(hist.LeafCount(), 64u);
}

TEST(KdTreeTest, LeavesPartitionTheDomain) {
  Rng rng(3);
  const PointSet points = SkewedPoints(5000, rng);
  KdTreeOptions options;
  options.height = 5;
  const KdTreeHistogram hist(points, Box::UnitCube(2), 1.0, options, rng);
  double volume = 0.0;
  for (NodeId leaf : hist.tree().LeafIds()) {
    volume += hist.tree().node(leaf).domain.Volume();
  }
  EXPECT_NEAR(volume, 1.0, 1e-9);
}

TEST(KdTreeTest, FullDomainQueryNearCardinality) {
  Rng rng(4);
  const PointSet points = SkewedPoints(50000, rng);
  const KdTreeHistogram hist(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_NEAR(hist.Query(Box::UnitCube(2)), 50000.0, 3000.0);
}

TEST(KdTreeTest, AdaptsSplitsTowardDenseRegions) {
  Rng rng(5);
  const PointSet points = SkewedPoints(50000, rng);
  KdTreeOptions options;
  options.height = 8;
  const KdTreeHistogram hist(points, Box::UnitCube(2), 1.6, options, rng);
  // The leaf containing the cluster centre should be much smaller than the
  // leaf containing the empty corner.
  const std::vector<double> cluster = {0.22, 0.82};
  const std::vector<double> corner = {0.95, 0.05};
  double cluster_volume = 0.0, corner_volume = 0.0;
  for (NodeId leaf : hist.tree().LeafIds()) {
    const Box& box = hist.tree().node(leaf).domain;
    if (box.Contains(cluster)) cluster_volume = box.Volume();
    if (box.Contains(corner)) corner_volume = box.Volume();
  }
  ASSERT_GT(cluster_volume, 0.0);
  ASSERT_GT(corner_volume, 0.0);
  EXPECT_LT(cluster_volume, corner_volume);
}

TEST(KdTreeTest, QueryAccuracyOnCluster) {
  Rng rng(6);
  const PointSet points = SkewedPoints(100000, rng);
  const Box query({0.18, 0.78}, {0.28, 0.88});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  ASSERT_GT(exact, 50000.0);
  double total_error = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const KdTreeHistogram hist(points, Box::UnitCube(2), 1.0, {}, rng);
    total_error += std::abs(hist.Query(query) - exact);
  }
  EXPECT_LT(total_error / 5.0, 0.2 * exact);
}

TEST(KdTreeDeathTest, InvalidOptionsAbort) {
  Rng rng(7);
  const PointSet points = SkewedPoints(100, rng);
  KdTreeOptions options;
  options.height = 0;
  EXPECT_DEATH(KdTreeHistogram(points, Box::UnitCube(2), 1.0, options, rng),
               "PRIVTREE_CHECK");
  options.height = 2;
  options.split_budget_fraction = 1.0;
  EXPECT_DEATH(KdTreeHistogram(points, Box::UnitCube(2), 1.0, options, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
