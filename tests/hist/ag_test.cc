#include "hist/ag.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

PointSet SkewedPoints(std::size_t n, Rng& rng) {
  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.8) {
      p[0] = 0.4 + 0.05 * rng.NextDouble();
      p[1] = 0.6 + 0.05 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(AgTest, FullDomainQueryNearCardinality) {
  Rng rng(1);
  const PointSet points = SkewedPoints(50000, rng);
  const AdaptiveGrid grid(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 50000.0, 2500.0);
}

TEST(AgTest, DenseRegionsGetFinerSubGrids) {
  Rng rng(2);
  const PointSet points = SkewedPoints(100000, rng);
  const AdaptiveGrid grid(points, Box::UnitCube(2), 1.0, {}, rng);
  // More total cells than the level-1 grid alone ⇒ refinement happened.
  const std::size_t m1 = static_cast<std::size_t>(grid.level1_granularity());
  EXPECT_GT(grid.TotalCells(), 2 * m1 * m1);
}

TEST(AgTest, QueryAccuracyOnDenseCluster) {
  Rng rng(3);
  const PointSet points = SkewedPoints(100000, rng);
  const Box query({0.39, 0.59}, {0.46, 0.66});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  ASSERT_GT(exact, 10000.0);
  double total_error = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const AdaptiveGrid grid(points, Box::UnitCube(2), 0.8, {}, rng);
    total_error += std::abs(grid.Query(query) - exact);
  }
  EXPECT_LT(total_error / 5.0, 0.15 * exact);
}

TEST(AgTest, DisjointQueryIsZero) {
  Rng rng(4);
  const PointSet points = SkewedPoints(1000, rng);
  const AdaptiveGrid grid(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_DOUBLE_EQ(grid.Query(Box({5.0, 5.0}, {6.0, 6.0})), 0.0);
}

TEST(AgTest, ImprovesOnPureLevel2AtLowEpsilon) {
  // The constrained-inference step anchors sub-grids to their parent; the
  // full-domain estimate should have smaller error than summing raw
  // independent level-2 noise would give.  We proxy by checking the total
  // over a large cell-aligned region is close to truth.
  Rng rng(5);
  const PointSet points = SkewedPoints(50000, rng);
  const Box query({0.0, 0.0}, {0.5, 1.0});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  double total_error = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const AdaptiveGrid grid(points, Box::UnitCube(2), 0.2, {}, rng);
    total_error += std::abs(grid.Query(query) - exact);
  }
  EXPECT_LT(total_error / 5.0, 0.2 * 50000.0);
}

TEST(AgTest, CellScaleChangesGranularity) {
  Rng rng(6);
  const PointSet points = SkewedPoints(20000, rng);
  AdaptiveGridOptions small_options;
  small_options.cell_scale = 1.0 / 9.0;
  AdaptiveGridOptions big_options;
  big_options.cell_scale = 9.0;
  const AdaptiveGrid small(points, Box::UnitCube(2), 1.0, small_options, rng);
  const AdaptiveGrid big(points, Box::UnitCube(2), 1.0, big_options, rng);
  EXPECT_LT(small.TotalCells(), big.TotalCells());
}

TEST(AgDeathTest, RequiresTwoDimensions) {
  Rng rng(7);
  PointSet points(4);
  const std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
  points.Add(p);
  EXPECT_DEATH(AdaptiveGrid(points, Box::UnitCube(4), 1.0, {}, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
