#include "hist/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

namespace privtree {
namespace {

TEST(HilbertTest, Order1TwoDimensionalIsTheClassicCurve) {
  // The four cells of the order-1 2-d curve, in curve order:
  // (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertIndex({0, 0}, 1), 0u);
  EXPECT_EQ(HilbertIndex({0, 1}, 1), 1u);
  EXPECT_EQ(HilbertIndex({1, 1}, 1), 2u);
  EXPECT_EQ(HilbertIndex({1, 0}, 1), 3u);
}

TEST(HilbertTest, RoundTrip2D) {
  const int bits = 5;
  for (std::uint32_t x = 0; x < 32; ++x) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      const std::uint64_t h = HilbertIndex({x, y}, bits);
      const auto coords = HilbertCoords(h, bits, 2);
      EXPECT_EQ(coords[0], x);
      EXPECT_EQ(coords[1], y);
    }
  }
}

TEST(HilbertTest, IsABijection2D) {
  const int bits = 4;
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < 16; ++x) {
    for (std::uint32_t y = 0; y < 16; ++y) {
      const std::uint64_t h = HilbertIndex({x, y}, bits);
      EXPECT_LT(h, 256u);
      EXPECT_TRUE(seen.insert(h).second) << "duplicate index " << h;
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(HilbertTest, ConsecutiveIndicesAreAdjacentCells) {
  // The defining property of the Hilbert curve: successive cells differ by
  // 1 in exactly one coordinate.
  const int bits = 5;
  auto prev = HilbertCoords(0, bits, 2);
  for (std::uint64_t h = 1; h < 1024; ++h) {
    const auto cur = HilbertCoords(h, bits, 2);
    const int dx = std::abs(static_cast<int>(cur[0]) -
                            static_cast<int>(prev[0]));
    const int dy = std::abs(static_cast<int>(cur[1]) -
                            static_cast<int>(prev[1]));
    EXPECT_EQ(dx + dy, 1) << "jump at h=" << h;
    prev = cur;
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreAdjacentCells4D) {
  const int bits = 3;
  auto prev = HilbertCoords(0, bits, 4);
  const std::uint64_t total = 1ULL << (bits * 4);
  for (std::uint64_t h = 1; h < total; ++h) {
    const auto cur = HilbertCoords(h, bits, 4);
    int manhattan = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      manhattan += std::abs(static_cast<int>(cur[j]) -
                            static_cast<int>(prev[j]));
    }
    EXPECT_EQ(manhattan, 1) << "jump at h=" << h;
    prev = cur;
  }
}

TEST(HilbertTest, RoundTrip4D) {
  const int bits = 3;
  const std::uint64_t total = 1ULL << (bits * 4);
  for (std::uint64_t h = 0; h < total; ++h) {
    const auto coords = HilbertCoords(h, bits, 4);
    EXPECT_EQ(HilbertIndex(coords, bits), h);
  }
}

TEST(HilbertDeathTest, BitBudgetEnforced) {
  EXPECT_DEATH(HilbertIndex({0, 0}, 32), "PRIVTREE_CHECK");
  EXPECT_DEATH(HilbertCoords(0, 16, 4), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
