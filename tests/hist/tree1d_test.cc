#include "hist/tree1d.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {
namespace {

TEST(Tree1DTest, PreservesLength) {
  Rng rng(1);
  const std::vector<double> exact(100, 5.0);
  const auto noisy = MeasureHierarchical1D(exact, 1.0, {}, rng);
  EXPECT_EQ(noisy.size(), exact.size());
}

TEST(Tree1DTest, EmptyInput) {
  Rng rng(2);
  const auto noisy = MeasureHierarchical1D({}, 1.0, {}, rng);
  EXPECT_TRUE(noisy.empty());
}

TEST(Tree1DTest, SmallInputUsesFlatMeasurement) {
  Rng rng(3);
  const std::vector<double> exact = {10.0, 20.0, 30.0};
  const auto noisy = MeasureHierarchical1D(exact, 5.0, {}, rng);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(noisy[i], exact[i], 3.0);
  }
}

TEST(Tree1DTest, EstimatesAreUnbiased) {
  Rng rng(4);
  std::vector<double> exact(256);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    exact[i] = static_cast<double>(i % 17);
  }
  std::vector<double> mean(exact.size(), 0.0);
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto noisy = MeasureHierarchical1D(exact, 1.0, {}, rng);
    for (std::size_t i = 0; i < exact.size(); ++i) mean[i] += noisy[i];
  }
  for (std::size_t i = 0; i < exact.size(); i += 37) {
    EXPECT_NEAR(mean[i] / kReps, exact[i], 1.5) << i;
  }
}

TEST(Tree1DTest, RangeSumsBeatFlatMeasurementForLargeRanges) {
  // The point of the hierarchy: a prefix sum over half the domain touches
  // O(log n) nodes instead of n/2 cells.
  Rng rng(5);
  std::vector<double> exact(4096, 3.0);
  const double true_half =
      std::accumulate(exact.begin(), exact.begin() + 2048, 0.0);
  const double epsilon = 0.5;

  double hier_error = 0.0, flat_error = 0.0;
  constexpr int kReps = 30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto hier = MeasureHierarchical1D(exact, epsilon, {}, rng);
    hier_error += std::abs(
        std::accumulate(hier.begin(), hier.begin() + 2048, 0.0) - true_half);
    // Flat: Lap(1/ε) per cell.
    double flat_sum = 0.0;
    for (int i = 0; i < 2048; ++i) {
      flat_sum += exact[static_cast<std::size_t>(i)] +
                  SampleLaplace(rng, 1.0 / epsilon);
    }
    flat_error += std::abs(flat_sum - true_half);
  }
  EXPECT_LT(hier_error, flat_error);
}

TEST(Tree1DTest, ConsistencyHoldsAcrossBranches) {
  // After mean-consistency, the sum of all leaves under any level-1 node
  // equals that node's final value — indirectly testable: two runs of the
  // full-vector sum have variance governed by the top level only, which is
  // far below n·Var(leaf).
  Rng rng(6);
  const std::vector<double> exact(4096, 1.0);
  const double total_true = 4096.0;
  double total_error = 0.0;
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto noisy = MeasureHierarchical1D(exact, 1.0, {}, rng);
    total_error += std::abs(
        std::accumulate(noisy.begin(), noisy.end(), 0.0) - total_true);
  }
  // Flat noise would give mean |error| ≈ √(2·4096/π) ≈ 51; the hierarchy's
  // top level (16 nodes at scale 3) gives ≈ √(2·16/π)·3 ≈ 9.6.
  EXPECT_LT(total_error / kReps, 30.0);
}

TEST(Tree1DDeathTest, InvalidOptionsAbort) {
  Rng rng(7);
  const std::vector<double> exact(10, 1.0);
  EXPECT_DEATH(MeasureHierarchical1D(exact, 0.0, {}, rng), "PRIVTREE_CHECK");
  Tree1DOptions options;
  options.branching = 1;
  EXPECT_DEATH(MeasureHierarchical1D(exact, 1.0, options, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
