#include "hist/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(GridHistogramTest, FromPointsCountsExactly) {
  PointSet points(2);
  const std::vector<std::vector<double>> data = {
      {0.1, 0.1}, {0.1, 0.15}, {0.9, 0.9}};
  for (const auto& p : data) points.Add(p);
  GridHistogram grid =
      GridHistogram::FromPoints(points, Box::UnitCube(2), {4, 4});
  EXPECT_DOUBLE_EQ(grid.counts()[grid.FlatIndex({0, 0})], 2.0);
  EXPECT_DOUBLE_EQ(grid.counts()[grid.FlatIndex({3, 3})], 1.0);
  EXPECT_DOUBLE_EQ(grid.Total(), 3.0);
}

TEST(GridHistogramTest, CellOfClampsOutOfRange) {
  GridHistogram grid(Box::UnitCube(1), {10});
  EXPECT_EQ(grid.CellOf(-0.5, 0), 0);
  EXPECT_EQ(grid.CellOf(1.5, 0), 9);
  EXPECT_EQ(grid.CellOf(0.35, 0), 3);
}

TEST(GridHistogramTest, CellBoxTilesDomain) {
  GridHistogram grid(Box({0.0, 0.0}, {2.0, 4.0}), {2, 4});
  const Box cell = grid.CellBox({1, 2});
  EXPECT_DOUBLE_EQ(cell.lo(0), 1.0);
  EXPECT_DOUBLE_EQ(cell.hi(0), 2.0);
  EXPECT_DOUBLE_EQ(cell.lo(1), 2.0);
  EXPECT_DOUBLE_EQ(cell.hi(1), 3.0);
}

TEST(GridHistogramTest, QueryFullDomainEqualsTotal) {
  Rng rng(1);
  const PointSet points = RandomPoints(5000, 2, rng);
  GridHistogram grid =
      GridHistogram::FromPoints(points, Box::UnitCube(2), {16, 16});
  grid.BuildPrefixSums();
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 5000.0, 1e-6);
}

TEST(GridHistogramTest, QueryAlignedBoxIsExact) {
  Rng rng(2);
  const PointSet points = RandomPoints(20000, 2, rng);
  GridHistogram grid =
      GridHistogram::FromPoints(points, Box::UnitCube(2), {8, 8});
  grid.BuildPrefixSums();
  // Cell-aligned query: the uniformity assumption is exact.
  const Box query({0.25, 0.5}, {0.75, 0.875});
  EXPECT_NEAR(grid.Query(query),
              static_cast<double>(points.ExactRangeCount(query)), 1e-6);
}

TEST(GridHistogramTest, QueryMatchesBruteForceFractionalSum) {
  Rng rng(3);
  const PointSet points = RandomPoints(3000, 2, rng);
  GridHistogram grid =
      GridHistogram::FromPoints(points, Box::UnitCube(2), {7, 5});
  grid.BuildPrefixSums();
  const Box query({0.13, 0.22}, {0.61, 0.77});
  // Brute force: Σ count(cell)·fraction-of-cell-in-query.
  double expected = 0.0;
  for (std::int64_t cx = 0; cx < 7; ++cx) {
    for (std::int64_t cy = 0; cy < 5; ++cy) {
      const Box cell = grid.CellBox({cx, cy});
      expected += grid.counts()[grid.FlatIndex({cx, cy})] *
                  cell.IntersectionVolume(query) / cell.Volume();
    }
  }
  EXPECT_NEAR(grid.Query(query), expected, 1e-9);
}

TEST(GridHistogramTest, QueryMatchesBruteForce4D) {
  Rng rng(4);
  const PointSet points = RandomPoints(5000, 4, rng);
  GridHistogram grid = GridHistogram::FromPoints(points, Box::UnitCube(4),
                                                 {3, 4, 2, 5});
  grid.BuildPrefixSums();
  const Box query({0.1, 0.2, 0.05, 0.3}, {0.8, 0.55, 0.95, 0.66});
  double expected = 0.0;
  std::vector<std::int64_t> cell(4, 0);
  bool done = false;
  while (!done) {
    const Box box = grid.CellBox(cell);
    expected += grid.counts()[grid.FlatIndex(cell)] *
                box.IntersectionVolume(query) / box.Volume();
    done = true;
    const std::vector<std::int64_t> dims = {3, 4, 2, 5};
    for (std::size_t j = 4; j-- > 0;) {
      if (++cell[j] < dims[j]) {
        done = false;
        break;
      }
      cell[j] = 0;
    }
  }
  EXPECT_NEAR(grid.Query(query), expected, 1e-9);
}

TEST(GridHistogramTest, QueryOutsideDomainIsZero) {
  GridHistogram grid(Box::UnitCube(2), {4, 4});
  grid.BuildPrefixSums();
  EXPECT_DOUBLE_EQ(grid.Query(Box({2.0, 2.0}, {3.0, 3.0})), 0.0);
}

TEST(GridHistogramTest, QueryClipsToDomain) {
  PointSet points(1);
  const std::vector<double> p = {0.5};
  points.Add(p);
  GridHistogram grid = GridHistogram::FromPoints(points, Box::UnitCube(1),
                                                 {2});
  grid.BuildPrefixSums();
  // A query covering far more than the domain still returns the total.
  EXPECT_NEAR(grid.Query(Box({-10.0}, {10.0})), 1.0, 1e-9);
}

TEST(GridHistogramTest, LaplaceNoiseIsUnbiased) {
  Rng rng(5);
  GridHistogram grid(Box::UnitCube(2), {32, 32});
  grid.AddLaplaceNoise(2.0, rng);
  grid.BuildPrefixSums();
  // Sum of 1024 zero-mean Laplace(2) draws: sd ≈ 2·√2·32 ≈ 90.
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 0.0, 400.0);
}

TEST(GridHistogramDeathTest, QueryBeforePrefixSumsAborts) {
  GridHistogram grid(Box::UnitCube(1), {4});
  EXPECT_DEATH((void)grid.Query(Box::UnitCube(1)), "PRIVTREE_CHECK");
}

TEST(GridHistogramDeathTest, BadConstructionAborts) {
  EXPECT_DEATH(GridHistogram(Box::UnitCube(2), {4}), "PRIVTREE_CHECK");
  EXPECT_DEATH(GridHistogram(Box::UnitCube(1), {0}), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
