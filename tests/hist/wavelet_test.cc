#include "hist/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(HaarTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<double> line(64);
  for (auto& x : line) x = rng.NextDouble() * 10.0;
  const std::vector<double> original = line;
  HaarForward(&line);
  HaarInverse(&line);
  for (std::size_t i = 0; i < line.size(); ++i) {
    EXPECT_NEAR(line[i], original[i], 1e-9) << i;
  }
}

TEST(HaarTest, LengthTwoIsAverageAndHalfDifference) {
  std::vector<double> line = {3.0, 1.0};
  HaarForward(&line);
  EXPECT_DOUBLE_EQ(line[0], 2.0);  // (3+1)/2.
  EXPECT_DOUBLE_EQ(line[1], 1.0);  // (3−1)/2.
}

TEST(HaarTest, FirstCoefficientIsGlobalAverage) {
  std::vector<double> line = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  HaarForward(&line);
  EXPECT_DOUBLE_EQ(line[0], 4.5);
}

TEST(HaarTest, ConstantVectorHasZeroDetailCoefficients) {
  std::vector<double> line(32, 7.0);
  HaarForward(&line);
  EXPECT_DOUBLE_EQ(line[0], 7.0);
  for (std::size_t i = 1; i < line.size(); ++i) {
    EXPECT_DOUBLE_EQ(line[i], 0.0) << i;
  }
}

TEST(HaarWeightsTest, MatchesPaperWeights) {
  // m = 8: W(0) = 8; positions 1 → 8; 2,3 → 4; 4..7 → 2.
  const auto weights = HaarWeights(8);
  ASSERT_EQ(weights.size(), 8u);
  EXPECT_DOUBLE_EQ(weights[0], 8.0);
  EXPECT_DOUBLE_EQ(weights[1], 8.0);
  EXPECT_DOUBLE_EQ(weights[2], 4.0);
  EXPECT_DOUBLE_EQ(weights[3], 4.0);
  for (std::size_t p = 4; p < 8; ++p) EXPECT_DOUBLE_EQ(weights[p], 2.0);
}

TEST(HaarWeightsTest, UnitTupleChangeHasWeightedL1SensitivityOnePlusLogM) {
  // Generalized sensitivity: adding one point to leaf j changes each
  // coefficient c by Δc with Σ W(c)·|Δc| = 1 + log2 m.
  constexpr std::size_t kM = 64;
  const auto weights = HaarWeights(kM);
  for (std::size_t leaf : {std::size_t{0}, std::size_t{17}, kM - 1}) {
    std::vector<double> line(kM, 0.0);
    line[leaf] = 1.0;
    HaarForward(&line);
    double weighted = 0.0;
    for (std::size_t p = 0; p < kM; ++p) {
      weighted += weights[p] * std::abs(line[p]);
    }
    EXPECT_NEAR(weighted, 1.0 + std::log2(static_cast<double>(kM)), 1e-9)
        << "leaf " << leaf;
  }
}

TEST(HaarWeightsTest, MultiDimSensitivityIsProductOfPerDimFactors) {
  // Standard (per-dimension) decomposition of a 2-d grid: one tuple's
  // weighted coefficient change must be (1 + log2 m)^2.
  constexpr std::size_t kM = 16;
  const auto weights = HaarWeights(kM);
  std::vector<double> grid(kM * kM, 0.0);
  grid[5 * kM + 11] = 1.0;  // One tuple at cell (5, 11).
  // Transform rows then columns.
  std::vector<double> line(kM);
  for (std::size_t r = 0; r < kM; ++r) {
    for (std::size_t c = 0; c < kM; ++c) line[c] = grid[r * kM + c];
    HaarForward(&line);
    for (std::size_t c = 0; c < kM; ++c) grid[r * kM + c] = line[c];
  }
  for (std::size_t c = 0; c < kM; ++c) {
    for (std::size_t r = 0; r < kM; ++r) line[r] = grid[r * kM + c];
    HaarForward(&line);
    for (std::size_t r = 0; r < kM; ++r) grid[r * kM + c] = line[r];
  }
  double weighted = 0.0;
  for (std::size_t r = 0; r < kM; ++r) {
    for (std::size_t c = 0; c < kM; ++c) {
      weighted += weights[r] * weights[c] * std::abs(grid[r * kM + c]);
    }
  }
  const double per_dim = 1.0 + std::log2(static_cast<double>(kM));
  EXPECT_NEAR(weighted, per_dim * per_dim, 1e-9);
}

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(PriveletTest, FullDomainQueryNearCardinality) {
  Rng rng(2);
  const PointSet points = RandomPoints(100000, 2, rng);
  PriveletOptions options;
  options.target_total_cells = 1 << 12;  // 64×64 keeps the test fast.
  const auto grid = BuildPriveletHistogram(points, Box::UnitCube(2), 1.0,
                                           options, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 100000.0, 5000.0);
}

TEST(PriveletTest, LargeRangeQueriesHavePolylogError) {
  // The wavelet mechanism's selling point: large queries do not accumulate
  // per-cell noise linearly.
  Rng rng(3);
  const PointSet points = RandomPoints(200000, 2, rng);
  PriveletOptions options;
  options.target_total_cells = 1 << 12;
  const Box query({0.1, 0.1}, {0.9, 0.9});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  double total_error = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto grid = BuildPriveletHistogram(points, Box::UnitCube(2), 0.8,
                                             options, rng);
    total_error += std::abs(grid.Query(query) - exact);
  }
  EXPECT_LT(total_error / 5.0, 0.05 * exact);
}

TEST(PriveletTest, FourDimensionalBuildWorks) {
  Rng rng(4);
  const PointSet points = RandomPoints(20000, 4, rng);
  PriveletOptions options;
  options.target_total_cells = 1 << 12;  // 8 per dim in 4-d.
  const auto grid = BuildPriveletHistogram(points, Box::UnitCube(4), 1.6,
                                           options, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(4)), 20000.0, 8000.0);
}

TEST(PriveletDeathTest, OddLengthLineAborts) {
  std::vector<double> line(10, 1.0);
  EXPECT_DEATH(HaarForward(&line), "PRIVTREE_CHECK");
  EXPECT_DEATH(HaarInverse(&line), "PRIVTREE_CHECK");
  EXPECT_DEATH(HaarWeights(12), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
