#include "hist/ug.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(UgTest, GranularityFollowsHeuristic) {
  // m = (nε/10)^(2/(d+2)); for n = 10^6, ε = 1, d = 2: (10^5)^(1/2) ≈ 317.
  const std::int64_t m = UniformGridGranularity(1000000, 2, 1.0);
  EXPECT_NEAR(static_cast<double>(m), std::sqrt(1e5), 2.0);
}

TEST(UgTest, GranularityGrowsWithEpsilon) {
  EXPECT_LT(UniformGridGranularity(100000, 2, 0.05),
            UniformGridGranularity(100000, 2, 1.6));
}

TEST(UgTest, GranularityShrinksWithDimension) {
  EXPECT_GT(UniformGridGranularity(100000, 2, 1.0),
            UniformGridGranularity(100000, 4, 1.0));
}

TEST(UgTest, CellScaleMultipliesTotalCells) {
  UniformGridOptions big;
  big.cell_scale = 9.0;
  const std::int64_t base = UniformGridGranularity(500000, 2, 0.5);
  const std::int64_t scaled = UniformGridGranularity(500000, 2, 0.5, big);
  // 9× the cells is 3× per dimension in 2-d.
  EXPECT_NEAR(static_cast<double>(scaled) / static_cast<double>(base), 3.0,
              0.15);
}

TEST(UgTest, SmallDatasetsGetAtLeastOneCell) {
  EXPECT_GE(UniformGridGranularity(1, 2, 0.05), 1);
}

TEST(UgTest, QueryIsReasonablyAccurateAtHighEpsilon) {
  Rng rng(1);
  const PointSet points = RandomPoints(100000, 2, rng);
  const auto grid =
      BuildUniformGrid(points, Box::UnitCube(2), 1.6, {}, rng);
  const Box query({0.2, 0.2}, {0.6, 0.7});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  EXPECT_NEAR(grid.Query(query), exact, 0.1 * exact);
}

TEST(UgTest, NoiseDominatesAtTinyEpsilonWithManyCells) {
  // Sanity check of the UG error model: per-cell noise Lap(1/ε) with
  // ε = 0.05 is large; total still near n because noise cancels.
  Rng rng(2);
  const PointSet points = RandomPoints(50000, 2, rng);
  const auto grid =
      BuildUniformGrid(points, Box::UnitCube(2), 0.05, {}, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 50000.0, 5000.0);
}

}  // namespace
}  // namespace privtree
