// SummedAreaTable2D: rectangle sums against brute force, clamping, and
// empty/degenerate ranges.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dp/rng.h"
#include "hist/sat.h"

namespace privtree {
namespace {

TEST(SummedAreaTableTest, KnownSmallTable) {
  // 2 × 3 cells:
  //   1 2 3
  //   4 5 6
  const std::vector<double> cells = {1, 2, 3, 4, 5, 6};
  const SummedAreaTable2D sat(cells, 2, 3);
  EXPECT_EQ(sat.rows(), 2);
  EXPECT_EQ(sat.cols(), 3);
  EXPECT_DOUBLE_EQ(sat.RectSum(0, 0, 2, 3), 21.0);
  EXPECT_DOUBLE_EQ(sat.RectSum(0, 0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(sat.RectSum(1, 1, 2, 3), 11.0);
  EXPECT_DOUBLE_EQ(sat.RectSum(0, 2, 2, 3), 9.0);
}

TEST(SummedAreaTableTest, EmptyAndInvertedRangesAreZero) {
  const std::vector<double> cells = {1, 2, 3, 4};
  const SummedAreaTable2D sat(cells, 2, 2);
  EXPECT_EQ(sat.RectSum(0, 0, 0, 2), 0.0);  // Empty row range.
  EXPECT_EQ(sat.RectSum(1, 1, 1, 1), 0.0);  // Point.
  EXPECT_EQ(sat.RectSum(2, 0, 1, 2), 0.0);  // Inverted.
}

TEST(SummedAreaTableTest, RangesClampToTheTable) {
  const std::vector<double> cells = {1, 2, 3, 4};
  const SummedAreaTable2D sat(cells, 2, 2);
  EXPECT_DOUBLE_EQ(sat.RectSum(-5, -5, 10, 10), 10.0);
  EXPECT_DOUBLE_EQ(sat.RectSum(1, 0, 99, 99), 7.0);
}

TEST(SummedAreaTableTest, MatchesBruteForceOnRandomTables) {
  Rng rng(0x5A7);
  const std::int64_t rows = 13, cols = 17;
  std::vector<double> cells(static_cast<std::size_t>(rows * cols));
  for (double& c : cells) c = rng.NextDouble() * 10.0 - 3.0;
  const SummedAreaTable2D sat(cells, rows, cols);
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t r0 = static_cast<std::int64_t>(rng.NextBounded(rows + 1));
    std::int64_t r1 = static_cast<std::int64_t>(rng.NextBounded(rows + 1));
    std::int64_t c0 = static_cast<std::int64_t>(rng.NextBounded(cols + 1));
    std::int64_t c1 = static_cast<std::int64_t>(rng.NextBounded(cols + 1));
    if (r0 > r1) std::swap(r0, r1);
    if (c0 > c1) std::swap(c0, c1);
    double expected = 0.0;
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int64_t c = c0; c < c1; ++c) {
        expected += cells[static_cast<std::size_t>(r * cols + c)];
      }
    }
    EXPECT_NEAR(sat.RectSum(r0, c0, r1, c1), expected, 1e-9)
        << "rect [" << r0 << "," << r1 << ")x[" << c0 << "," << c1 << ")";
  }
}

TEST(SummedAreaTableTest, ZeroSizedTable) {
  const SummedAreaTable2D sat(std::vector<double>{}, 0, 0);
  EXPECT_EQ(sat.RectSum(0, 0, 1, 1), 0.0);
}

}  // namespace
}  // namespace privtree
