#include "hist/hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

PointSet RandomPoints(std::size_t n, std::size_t dim, Rng& rng) {
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(HierarchyTest, DefaultMatchesPaperHeuristic) {
  Rng rng(1);
  const PointSet points = RandomPoints(1000, 2, rng);
  const HierarchyHistogram hist(points, Box::UnitCube(2), 1.0, {}, rng);
  // h = 3, target 64 ⇒ b = 8 (β = 64), leaves 64×64.
  EXPECT_EQ(hist.branching(), 8);
  EXPECT_EQ(hist.leaf_resolution(), 64);
  EXPECT_EQ(hist.TotalCounts(), 64u + 4096u);
}

TEST(HierarchyTest, HeightSweepAdjustsBranching) {
  Rng rng(2);
  const PointSet points = RandomPoints(1000, 2, rng);
  HierarchyOptions options;
  options.height = 7;  // b = round(64^(1/6)) = 2, leaves 64.
  const HierarchyHistogram hist(points, Box::UnitCube(2), 1.0, options, rng);
  EXPECT_EQ(hist.branching(), 2);
  EXPECT_EQ(hist.leaf_resolution(), 64);
}

TEST(HierarchyTest, FullDomainQueryNearCardinality) {
  Rng rng(3);
  const PointSet points = RandomPoints(100000, 2, rng);
  const HierarchyHistogram hist(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_NEAR(hist.Query(Box::UnitCube(2)), 100000.0, 3000.0);
}

TEST(HierarchyTest, AlignedQueryIsAccurateAtHighEpsilon) {
  Rng rng(4);
  const PointSet points = RandomPoints(200000, 2, rng);
  const HierarchyHistogram hist(points, Box::UnitCube(2), 1.6, {}, rng);
  const Box query({0.25, 0.125}, {0.75, 0.625});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  EXPECT_NEAR(hist.Query(query), exact, 0.08 * exact);
}

TEST(HierarchyTest, UnalignedQueryUsesFractionalLeaves) {
  Rng rng(5);
  const PointSet points = RandomPoints(200000, 2, rng);
  const HierarchyHistogram hist(points, Box::UnitCube(2), 1.6, {}, rng);
  const Box query({0.213, 0.377}, {0.641, 0.589});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  EXPECT_NEAR(hist.Query(query), exact, 0.12 * exact);
}

TEST(HierarchyTest, ConstrainedInferenceMakesLevelsConsistent) {
  // After consistency, a query aligned to a level-1 cell must give the same
  // answer whether served from level 1 or summed from the leaves — i.e.
  // the greedy descent and a leaf-only sum agree.
  Rng rng(6);
  const PointSet points = RandomPoints(50000, 2, rng);
  const HierarchyHistogram hist(points, Box::UnitCube(2), 0.5, {}, rng);
  // Level-1 cell (b = 8): [0.125, 0.25) × [0.25, 0.375).
  const Box cell({0.125, 0.25}, {0.25, 0.375});
  const double from_descent = hist.Query(cell);
  // Sum of the 8×8 leaf cells inside: query slightly inset to force leaf
  // evaluation... instead evaluate by summing 64 aligned leaf queries.
  double from_leaves = 0.0;
  const double leaf_width = 1.0 / 64.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const Box leaf({0.125 + i * leaf_width, 0.25 + j * leaf_width},
                     {0.125 + (i + 1) * leaf_width,
                      0.25 + (j + 1) * leaf_width});
      from_leaves += hist.Query(leaf);
    }
  }
  EXPECT_NEAR(from_descent, from_leaves, 1e-6);
}

TEST(HierarchyTest, WithoutInferenceLevelsDisagree) {
  Rng rng(7);
  const PointSet points = RandomPoints(50000, 2, rng);
  HierarchyOptions options;
  options.constrained_inference = false;
  const HierarchyHistogram hist(points, Box::UnitCube(2), 0.1, options, rng);
  const Box cell({0.125, 0.25}, {0.25, 0.375});
  const double from_descent = hist.Query(cell);
  double from_leaves = 0.0;
  const double leaf_width = 1.0 / 64.0;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const Box leaf({0.125 + i * leaf_width, 0.25 + j * leaf_width},
                     {0.125 + (i + 1) * leaf_width,
                      0.25 + (j + 1) * leaf_width});
      from_leaves += hist.Query(leaf);
    }
  }
  // With ε = 0.1 and independent noise, exact agreement is essentially
  // impossible.
  EXPECT_GT(std::abs(from_descent - from_leaves), 1e-3);
}

TEST(HierarchyDeathTest, InvalidOptionsAbort) {
  Rng rng(8);
  const PointSet points = RandomPoints(10, 2, rng);
  HierarchyOptions options;
  options.height = 1;
  EXPECT_DEATH(HierarchyHistogram(points, Box::UnitCube(2), 1.0, options,
                                  rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
