#include "hist/dawa.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(DawaPartitionTest, CoversTheWholeDomain) {
  Rng rng(1);
  std::vector<double> cells(512, 1.0);
  const auto partition = DawaPartition1D(cells, 0.5, 1.5, rng);
  ASSERT_FALSE(partition.bucket_end.empty());
  EXPECT_EQ(partition.bucket_end.back(), 512);
  for (std::size_t i = 1; i < partition.bucket_end.size(); ++i) {
    EXPECT_GT(partition.bucket_end[i], partition.bucket_end[i - 1]);
  }
}

TEST(DawaPartitionTest, UniformDataMergesIntoFewBuckets) {
  Rng rng(2);
  const std::vector<double> cells(1024, 10.0);
  // A generous stage-1 budget keeps the cost noise below the per-bucket
  // penalty; a perfectly uniform array (zero deviation) should then merge
  // into long dyadic buckets.
  const auto partition = DawaPartition1D(cells, 50.0, 6.0, rng);
  EXPECT_LT(partition.bucket_end.size(), 64u);
}

TEST(DawaPartitionTest, SharpBoundaryIsRespected) {
  Rng rng(3);
  // 256 empty cells then 256 cells of 100: with high budget the partition
  // should not place a bucket straddling the boundary by much.
  std::vector<double> cells(512, 0.0);
  for (std::size_t i = 256; i < 512; ++i) cells[i] = 100.0;
  const auto partition = DawaPartition1D(cells, 20.0, 20.0, rng);
  // Some bucket boundary should fall exactly at 256.
  bool found = false;
  for (std::int64_t end : partition.bucket_end) {
    if (end == 256) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DawaPartitionTest, BucketLengthsAreDyadic) {
  Rng rng(4);
  std::vector<double> cells(256);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i] = static_cast<double>(i % 7);
  }
  const auto partition = DawaPartition1D(cells, 1.0, 3.0, rng);
  std::int64_t begin = 0;
  for (std::int64_t end : partition.bucket_end) {
    const std::int64_t len = end - begin;
    EXPECT_EQ(len & (len - 1), 0) << "non-dyadic bucket " << len;
    begin = end;
  }
}

PointSet SkewedPoints(std::size_t n, Rng& rng) {
  PointSet points(2);
  double p[2];
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.7) {
      p[0] = 0.3 + 0.02 * rng.NextDouble();
      p[1] = 0.5 + 0.02 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(DawaTest, FullDomainQueryNearCardinality) {
  Rng rng(5);
  const PointSet points = SkewedPoints(50000, rng);
  DawaOptions options;
  options.target_total_cells = 1 << 12;
  const auto grid =
      BuildDawaHistogram(points, Box::UnitCube(2), 1.0, options, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(2)), 50000.0, 3000.0);
}

TEST(DawaTest, AccurateOnModeratelySkewedData) {
  Rng rng(6);
  const PointSet points = SkewedPoints(100000, rng);
  DawaOptions options;
  options.target_total_cells = 1 << 12;
  const Box query({0.25, 0.45}, {0.4, 0.6});
  const double exact = static_cast<double>(points.ExactRangeCount(query));
  ASSERT_GT(exact, 30000.0);
  double total_error = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto grid =
        BuildDawaHistogram(points, Box::UnitCube(2), 0.8, options, rng);
    total_error += std::abs(grid.Query(query) - exact);
  }
  EXPECT_LT(total_error / 5.0, 0.15 * exact);
}

TEST(DawaTest, FourDimensionalBuildWorks) {
  Rng rng(7);
  PointSet points(4);
  double p[4];
  for (int i = 0; i < 20000; ++i) {
    for (auto& x : p) x = rng.NextDouble();
    points.Add(p);
  }
  DawaOptions options;
  options.target_total_cells = 1 << 12;
  const auto grid =
      BuildDawaHistogram(points, Box::UnitCube(4), 1.6, options, rng);
  EXPECT_NEAR(grid.Query(Box::UnitCube(4)), 20000.0, 6000.0);
}

TEST(DawaDeathTest, InvalidBudgetSplitAborts) {
  Rng rng(8);
  const PointSet points = SkewedPoints(100, rng);
  DawaOptions options;
  options.partition_budget_fraction = 1.0;
  EXPECT_DEATH(
      BuildDawaHistogram(points, Box::UnitCube(2), 1.0, options, rng),
      "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
