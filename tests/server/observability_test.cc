// The observability surface over a live socket: protocol-v4 clients still
// handshake and round-trip bit-for-bit, a kTraced wrapper never changes a
// single reply byte, GetStats returns a JSON snapshot whose counters match
// the traffic that was actually served, and the trace ring records one
// finished trace per request with the spans a query pipeline must have.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "release/dataset.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/event/event_loop.h"
#include "server/protocol.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;

PointSet TestPoints(std::size_t n = 300) {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 25) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// One epoll serving stack on an ephemeral port, torn down in order.
class ObservabilityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().Reset();
    obs::TraceRing::Global().Reset();
    points_ = std::make_unique<PointSet>(TestPoints());
    pool_ = std::make_unique<serve::ThreadPool>(4);
    cache_ = std::make_unique<serve::SynopsisCache>(32);
    registry_ = std::make_unique<DatasetRegistry>(*pool_, *cache_);
    auto registered = registry_->Register(
        "test", release::Dataset(*points_, Box::UnitCube(2)));
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    dispatcher_ = std::make_unique<Dispatcher>(*registry_);
    auto listener = ListenSocket::Listen(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    loop_ = std::make_unique<EventLoop>(*dispatcher_,
                                        std::move(listener).value());
    port_ = loop_->port();
    serving_ = std::thread([this] { run_status_ = loop_->Run(); });
  }

  void TearDown() override {
    loop_->Stop();
    serving_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  /// Raw frame round trip on `conn` (no Client-layer retry logic).
  std::string RoundTripRaw(Connection& conn, const std::string& payload) {
    EXPECT_TRUE(conn.SendFrame(payload).ok());
    auto reply = conn.RecvFrame();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? std::move(reply).value() : std::string();
  }

  std::unique_ptr<PointSet> points_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<serve::SynopsisCache> cache_;
  std::unique_ptr<DatasetRegistry> registry_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::thread serving_;
  Status run_status_ = Status::OK();
};

TEST_F(ObservabilityFixture, ProtocolV4ClientStillRoundTripsBitForBit) {
  // A v4 client sends Hello{version=4} and expects the echo to say 4 —
  // exactly what pre-v5 DialAndHello hard-checks.  The server must
  // negotiate down and serve its QueryBatch unchanged.
  auto dialed = Connection::Dial("127.0.0.1", port_, 2000);
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  Connection conn = std::move(dialed).value();
  HelloRequest hello;
  hello.version = 4;
  const std::string hello_reply = RoundTripRaw(conn, EncodeHello(hello));
  HelloReply info;
  ASSERT_TRUE(DecodeHelloReply(hello_reply, &info).ok());
  EXPECT_EQ(info.version, 4u);

  QueryBatchRequest request;
  request.spec = FitSpec{"ug", {}, kEpsilon, 0xC11};
  request.queries = TestQueries();
  const std::string v4_reply =
      RoundTripRaw(conn, EncodeQueryBatch(request));
  ASSERT_EQ(PeekType(v4_reply).value(), MessageType::kQueryBatchReply);

  // The same request through a current (v5) Client answers with the same
  // bytes — the protocol bump changed nothing the old client can see.
  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto answers =
      client.value().QueryBatch(request.spec, request.queries);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  QueryBatchReply decoded;
  ASSERT_TRUE(DecodeQueryBatchReply(v4_reply, &decoded).ok());
  EXPECT_EQ(decoded.answers, answers.value());
}

TEST_F(ObservabilityFixture, UnsupportedHelloVersionIsRefusedCleanly) {
  auto dialed = Connection::Dial("127.0.0.1", port_, 2000);
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  Connection conn = std::move(dialed).value();
  HelloRequest hello;
  hello.version = 3;  // Below kMinProtocolVersion.
  const std::string reply = RoundTripRaw(conn, EncodeHello(hello));
  ASSERT_EQ(PeekType(reply).value(), MessageType::kErrorReply);
  Status carried;
  ASSERT_TRUE(DecodeErrorReply(reply, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
}

TEST_F(ObservabilityFixture, TracedWrapperNeverChangesReplyBytes) {
  auto dialed = Connection::Dial("127.0.0.1", port_, 2000);
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  Connection conn = std::move(dialed).value();
  RoundTripRaw(conn, EncodeHello(HelloRequest{}));

  QueryBatchRequest request;
  request.spec = FitSpec{"ug", {}, kEpsilon, 0xC11};
  request.queries = TestQueries();
  const std::string payload = EncodeQueryBatch(request);
  // Warm the synopsis cache first: the reply carries a cache-hit flag, so
  // the comparison below must pit hit against hit, not miss against hit.
  RoundTripRaw(conn, payload);
  const std::string plain = RoundTripRaw(conn, payload);
  const std::string traced =
      RoundTripRaw(conn, EncodeTraced(0xFACE, payload));
  EXPECT_EQ(plain, traced);  // Bit-for-bit, not just equal answers.

  // The client-side wrapper is the same machinery.
  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  client.value().EnableTraceIds(0x1000);
  auto answers =
      client.value().QueryBatch(request.spec, request.queries);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  QueryBatchReply decoded;
  ASSERT_TRUE(DecodeQueryBatchReply(plain, &decoded).ok());
  EXPECT_EQ(answers.value(), decoded.answers);
}

TEST_F(ObservabilityFixture, GetStatsCountsMatchServedTraffic) {
  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const FitSpec spec{"ug", {}, kEpsilon, 0xC11};
  const std::vector<Box> queries = TestQueries();
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    auto answers = client.value().QueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  }

  auto json = client.value().GetStatsJson();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  // Counter values must agree with the closed-loop accounting: one Hello
  // + kRequests QueryBatches served so far, the GetStats frame itself not
  // yet finished when the snapshot was taken.  Frames served is at least
  // the requests; admission admitted exactly kRequests (Hello and
  // GetStats never pass admission).
  const std::string& s = json.value();
  EXPECT_NE(s.find("\"admission.admitted\":" + std::to_string(kRequests)),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("\"event.accepted\":1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"engine.queue_wait_us\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"engine.kernel_us\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"server.request_us\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"traces\":{"), std::string::npos) << s;
  EXPECT_NE(s.find("\"faults\":{"), std::string::npos) << s;
  // The registry agrees with the engine's own struct-based accounting.
  const auto engine_stats =
      registry_->Find(registry_->default_fingerprint())->Stats();
  EXPECT_EQ(engine_stats.admission.admitted,
            static_cast<std::size_t>(kRequests));
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("admission.admitted")
                .Value(),
            static_cast<std::uint64_t>(kRequests));
}

TEST_F(ObservabilityFixture, EveryServedRequestFinishesOneTrace) {
  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const FitSpec spec{"ug", {}, kEpsilon, 0xC11};
  const std::vector<Box> queries = TestQueries();
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    auto answers = client.value().QueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  }
  // Traces finish when the reply's last byte is flushed, which the client
  // has observed by the time QueryBatch returned — but give the loop
  // thread a moment to run its bookkeeping after the final send.
  std::uint64_t finished = 0;
  for (int spin = 0; spin < 100; ++spin) {
    finished = obs::TraceRing::Global().finished();
    if (finished >= kRequests + 1) break;  // +1 for the Hello.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(finished, static_cast<std::uint64_t>(kRequests));

  // The most recent query trace carries the pipeline's span skeleton.
  bool found_query_trace = false;
  for (const obs::TraceContext& trace :
       obs::TraceRing::Global().Recent()) {
    if (trace.span(obs::Span::kKernel) < 0) continue;
    found_query_trace = true;
    EXPECT_GE(trace.span(obs::Span::kDispatch), 0);
    EXPECT_GE(trace.span(obs::Span::kQueueWait), 0);
    EXPECT_GE(trace.span(obs::Span::kFit), 0);
    EXPECT_GE(trace.span(obs::Span::kSerialize), 0);
    EXPECT_GE(trace.span(obs::Span::kSocketWrite), 0);
    EXPECT_GE(trace.total_us, 0);
  }
  EXPECT_TRUE(found_query_trace);
}

TEST_F(ObservabilityFixture, ClientTraceIdsSurfaceInTheRing) {
  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  client.value().EnableTraceIds(0x5EED0000);
  const FitSpec spec{"ug", {}, kEpsilon, 0xC11};
  auto answers = client.value().QueryBatch(spec, TestQueries());
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();

  bool found = false;
  for (int spin = 0; spin < 100 && !found; ++spin) {
    for (const obs::TraceContext& trace :
         obs::TraceRing::Global().Recent()) {
      if (trace.trace_id == 0x5EED0000 && trace.client_supplied_id) {
        found = true;
        break;
      }
    }
    if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(found) << "client-supplied trace id never reached the ring";
}

}  // namespace
}  // namespace privtree::server
