// Client resilience: bounded connect/Hello handshakes, retry-after-honoring
// backoff on served Unavailable, transparent reconnect + resend after a
// transport failure, the no-retry discipline on Shutdown, and a real
// server-restart survived mid-session.  The scripted scenarios run against
// a raw frame-speaking fake so the test controls exactly which failure the
// client sees; the restart scenario runs the full ServerLoop stack.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MillisSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               start)
      .count();
}

/// Answers the Hello handshake on `conn` like a real v-current server.
void AnswerHello(Connection& conn) {
  auto frame = conn.RecvFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  HelloReply hello;
  hello.dim = 2;
  hello.point_count = 1;
  hello.methods = {"ug"};
  ASSERT_TRUE(conn.SendFrame(EncodeHelloReply(hello)).ok());
}

TEST(ClientRetryTest, SilentListenerYieldsDeadlineExceededNotAHang) {
  // The listener accepts into its backlog but never answers Hello; without
  // the handshake timeout Connect would block forever.
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  ClientOptions options;
  options.connect_timeout_millis = 200;
  const auto start = Clock::now();
  auto connected =
      Client::Connect("127.0.0.1", listener.value().port(), options);
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(MillisSince(start), 5000);
}

TEST(ClientRetryTest, ServedUnavailableBacksOffHonoringRetryAfter) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener.value().Accept();
    ASSERT_TRUE(conn.ok());
    AnswerHello(conn.value());
    // First Stats: shed with a 120ms retry-after hint.  Second: serve.
    auto first = conn.value().RecvFrame();
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(conn.value()
                    .SendFrame(EncodeErrorReply(
                        Status::Unavailable("shed").WithRetryAfter(120)))
                    .ok());
    auto second = conn.value().RecvFrame();
    ASSERT_TRUE(second.ok());
    StatsReply stats;
    stats.admitted = 7;
    ASSERT_TRUE(conn.value().SendFrame(EncodeStatsReply(stats)).ok());
  });

  ClientOptions options;
  options.max_attempts = 3;
  options.base_backoff_millis = 1;  // The hint, not this, must set the wait.
  auto client = Client::Connect("127.0.0.1", listener.value().port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto start = Clock::now();
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().admitted, 7u);
  // The wait honored the server's floor, and no reconnect happened (the
  // shed reply arrived on a healthy connection).
  EXPECT_GE(MillisSince(start), 110);
  EXPECT_EQ(client.value().telemetry().retries, 1u);
  EXPECT_EQ(client.value().telemetry().reconnects, 0u);
  server.join();
}

TEST(ClientRetryTest, TransportFailureReconnectsAndResends) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    {  // First connection: handshake, then die before answering Stats.
      auto conn = listener.value().Accept();
      ASSERT_TRUE(conn.ok());
      AnswerHello(conn.value());
      auto request = conn.value().RecvFrame();
      ASSERT_TRUE(request.ok());
    }  // Closing the scope closes the socket: the client sees EOF.
    auto conn = listener.value().Accept();  // The client's re-dial.
    ASSERT_TRUE(conn.ok());
    AnswerHello(conn.value());
    auto request = conn.value().RecvFrame();
    ASSERT_TRUE(request.ok());
    StatsReply stats;
    stats.admitted = 9;
    ASSERT_TRUE(conn.value().SendFrame(EncodeStatsReply(stats)).ok());
  });

  ClientOptions options;
  options.max_attempts = 3;
  options.base_backoff_millis = 1;
  auto client = Client::Connect("127.0.0.1", listener.value().port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().admitted, 9u);
  EXPECT_EQ(client.value().telemetry().retries, 1u);
  EXPECT_EQ(client.value().telemetry().reconnects, 1u);
  server.join();
}

TEST(ClientRetryTest, FailedReconnectDoesNotCountAsRetry) {
  // Connection 1 dies after taking the request (transport failure).  The
  // re-dial lands on connection 2, which never answers Hello, so that
  // reconnect fails without a single byte of the request being resent.
  // Connection 3 handshakes and serves.  Telemetry must report exactly one
  // retry — the one resend the server actually saw — and one reconnect,
  // the one successful re-dial; the failed reconnect is neither.
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    {  // Connection 1: handshake, swallow the request, die.
      auto conn = listener.value().Accept();
      ASSERT_TRUE(conn.ok());
      AnswerHello(conn.value());
      auto request = conn.value().RecvFrame();
      ASSERT_TRUE(request.ok());
    }
    {  // Connection 2: accept, then stay silent until the client gives up.
      auto conn = listener.value().Accept();
      ASSERT_TRUE(conn.ok());
      auto hello = conn.value().RecvFrame();  // Unanswered Hello.
    }  // Scope exit closes it.
    auto conn = listener.value().Accept();  // Connection 3: serve.
    ASSERT_TRUE(conn.ok());
    AnswerHello(conn.value());
    auto request = conn.value().RecvFrame();
    ASSERT_TRUE(request.ok());
    StatsReply stats;
    stats.admitted = 11;
    ASSERT_TRUE(conn.value().SendFrame(EncodeStatsReply(stats)).ok());
  });

  ClientOptions options;
  options.max_attempts = 4;
  options.base_backoff_millis = 1;
  options.connect_timeout_millis = 200;  // Bounds the silent Hello quickly.
  auto client = Client::Connect("127.0.0.1", listener.value().port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().admitted, 11u);
  EXPECT_EQ(client.value().telemetry().retries, 1u);
  EXPECT_EQ(client.value().telemetry().reconnects, 1u);
  server.join();
}

TEST(ClientRetryTest, ShutdownIsNeverRetried) {
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::atomic<int> connections{0};
  std::thread server([&] {
    {  // Die on the Shutdown frame without answering.
      auto conn = listener.value().Accept();
      ASSERT_TRUE(conn.ok());
      ++connections;
      AnswerHello(conn.value());
      auto request = conn.value().RecvFrame();
      ASSERT_TRUE(request.ok());
    }
    // A retrying client would re-dial here; give it the chance to.
    auto conn = listener.value().Accept();
    if (conn.ok()) ++connections;
  });

  ClientOptions options;
  options.max_attempts = 5;
  options.base_backoff_millis = 1;
  auto client = Client::Connect("127.0.0.1", listener.value().port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const Status shutdown = client.value().Shutdown();
  EXPECT_FALSE(shutdown.ok());  // The lost reply surfaces, not a resend.
  EXPECT_EQ(client.value().telemetry().retries, 0u);
  EXPECT_EQ(client.value().telemetry().reconnects, 0u);
  // Unblock the server thread's second Accept and make sure the client
  // never dialed it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.value().Shutdown();
  server.join();
  EXPECT_EQ(connections.load(), 1);
}

TEST(ClientRetryTest, ClientSurvivesServerRestartTransparently) {
  Rng data_rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < 200; ++i) {
    p[0] = data_rng.NextDouble();
    p[1] = data_rng.NextDouble();
    points.Add(p);
  }
  serve::ThreadPool pool(2);
  serve::SynopsisCache cache(16);
  DatasetRegistry registry(pool, cache);
  ASSERT_TRUE(
      registry.Register("test", release::Dataset(points, Box::UnitCube(2)))
          .ok());
  Dispatcher dispatcher(registry);

  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  auto loop = std::make_unique<ServerLoop>(dispatcher,
                                           std::move(listener).value());
  std::thread serving([&loop] { EXPECT_TRUE(loop->Run().ok()); });

  ClientOptions options;
  options.max_attempts = 8;
  options.base_backoff_millis = 20;
  auto client = Client::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const FitSpec spec{"ug", {}, 1.0, 0xC11};
  Rng query_rng(0xBEEF);
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 20, kMediumQueries, query_rng);
  auto before = client.value().QueryBatch(spec, queries);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Restart the server on the same port; the client's next call must
  // reconnect and answer identically (the fit is deterministic in the
  // spec's seed, and the synopsis cache survives with the process here).
  loop->Stop();
  serving.join();
  auto relisten = ListenSocket::Listen(port);
  ASSERT_TRUE(relisten.ok()) << relisten.status().ToString();
  loop = std::make_unique<ServerLoop>(dispatcher, std::move(relisten).value());
  std::thread reserving([&loop] { EXPECT_TRUE(loop->Run().ok()); });

  auto after = client.value().QueryBatch(spec, queries);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(client.value().telemetry().reconnects, 1u);
  ASSERT_EQ(after.value().size(), before.value().size());
  for (std::size_t i = 0; i < after.value().size(); ++i) {
    EXPECT_EQ(after.value()[i], before.value()[i]) << "query " << i;
  }

  loop->Stop();
  reserving.join();
}

}  // namespace
}  // namespace privtree::server
