// The AsyncEngine serving contract:
//   * answers are bit-for-bit identical to in-process ReleaseSession
//     execution, for every registered method, serial or under N client
//     threads submitting mixed fit/query traffic;
//   * a saturated queue sheds with a clean Unavailable status instead of
//     queueing unboundedly;
//   * a request whose deadline passes while queued is retired with
//     DeadlineExceeded and never executes;
//   * identical in-flight fits coalesce onto the cache's single-flight
//     path; Warm() fills the cache in the background.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.h"
#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "release/registry.h"
#include "release/session.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::uint64_t kSeed = 0xC11;

PointSet TestPoints(std::size_t n = 400) {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 40) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// The ground truth the engine must reproduce exactly: an in-process
/// session release with the same seed.
std::vector<double> SessionAnswers(const PointSet& points,
                                   const std::string& method,
                                   const std::vector<Box>& queries,
                                   std::uint64_t seed = kSeed) {
  release::ReleaseSession session(points, Box::UnitCube(2), kEpsilon, seed);
  return session.Release(method, kEpsilon)->QueryBatch(queries);
}

/// Blocks the (single) pool worker until Release() is called, so requests
/// pile up in the engine's queue.  Block() returns only once the worker is
/// provably inside the wedge task (otherwise a LIFO pop could service a
/// later-submitted request first and the test would race).
class Wedge {
 public:
  void Block(serve::ThreadPool& pool) {
    pool.Submit([this] {
      MutexLock lk(mu_);
      started_ = true;
      cv_.NotifyAll();
      while (!released_) cv_.Wait(lk);
    });
    MutexLock lk(mu_);
    while (!started_) cv_.Wait(lk);
  }
  void Release() {
    {
      MutexLock lk(mu_);
      released_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool started_ GUARDED_BY(mu_) = false;
  bool released_ GUARDED_BY(mu_) = false;
};

TEST(AsyncEngineTest, EveryMethodMatchesReleaseSessionBitForBit) {
  const PointSet points = TestPoints();
  const std::vector<Box> queries = TestQueries();
  serve::ThreadPool pool(4);
  serve::SynopsisCache cache(16);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  for (const std::string& method :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    const FitSpec spec{method, {}, kEpsilon, kSeed};
    const QueryBatchResponse& response =
        engine.SubmitQueryBatch(spec, queries).Get();
    ASSERT_TRUE(response.status.ok()) << method << ": "
                                      << response.status.ToString();
    const std::vector<double> want =
        SessionAnswers(points, method, queries);
    ASSERT_EQ(response.answers.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(response.answers[i], want[i])
          << method << " query " << i << " diverged from ReleaseSession";
    }
  }
}

TEST(AsyncEngineTest, FitReportsSessionAccounting) {
  const PointSet points = TestPoints();
  serve::ThreadPool pool(2);
  serve::SynopsisCache cache(16);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  const FitSpec spec{"privtree", {}, kEpsilon, kSeed};
  const FitResponse& first = engine.SubmitFit(spec).Get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.metadata.method, "privtree");
  EXPECT_EQ(first.metadata.dim, 2u);
  EXPECT_DOUBLE_EQ(first.metadata.epsilon_spent, kEpsilon);
  EXPECT_GT(first.metadata.synopsis_size, 0u);

  const FitResponse& second = engine.SubmitFit(spec).Get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.metadata.synopsis_size, first.metadata.synopsis_size);
}

TEST(AsyncEngineTest, ConcurrentMixedTrafficMatchesSerialExecution) {
  const PointSet points = TestPoints();
  const std::vector<Box> queries = TestQueries();
  const std::vector<std::string> methods =
      release::GlobalMethodRegistry().Names(
          release::DatasetKind::kSpatial);

  // Serial ground truth, one per (method, seed) release.
  std::map<std::pair<std::string, std::uint64_t>, std::vector<double>> want;
  for (const std::string& method : methods) {
    for (const std::uint64_t seed : {kSeed, kSeed + 1}) {
      want[{method, seed}] = SessionAnswers(points, method, queries, seed);
    }
  }

  serve::ThreadPool pool(4);
  serve::SynopsisCache cache(64);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  constexpr std::size_t kClients = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Every client walks the methods at its own phase, mixing fits and
      // query batches over two seeds; all of them race on the one cache.
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const std::string& method = methods[(m + c) % methods.size()];
        const std::uint64_t seed = kSeed + (c % 2);
        const FitSpec spec{method, {}, kEpsilon, seed};
        if (c % 2 == 0) {
          const FitResponse& fitted = engine.SubmitFit(spec).Get();
          if (!fitted.status.ok()) ++failures;
        }
        const QueryBatchResponse& response =
            engine.SubmitQueryBatch(spec, queries).Get();
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        if (response.answers != want[{method, seed}]) ++mismatches;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent serving diverged from serial execution";
}

TEST(AsyncEngineTest, SaturatedQueueShedsWithUnavailable) {
  const PointSet points = TestPoints(100);
  serve::ThreadPool pool(1);
  serve::SynopsisCache cache(16);
  EngineOptions options;
  options.admission.max_queue_depth = 2;
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache, options);

  Wedge wedge;
  wedge.Block(pool);

  const std::vector<Box> queries = TestQueries(4);
  std::vector<Future<QueryBatchResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    // Distinct seeds: six distinct requests, no coalescing in play.
    futures.push_back(engine.SubmitQueryBatch(
        {"ug", {}, kEpsilon, kSeed + static_cast<std::uint64_t>(i)},
        queries));
  }
  // With the worker wedged, only max_queue_depth requests may wait; the
  // rest must already be resolved as shed.
  std::size_t shed = 0;
  for (const auto& future : futures) {
    if (future.Ready() &&
        future.Get().status.code() == StatusCode::kUnavailable) {
      ++shed;
    }
  }
  EXPECT_EQ(shed, 4u);
  EXPECT_EQ(engine.Stats().admission.shed_queue_full, 4u);
  EXPECT_EQ(engine.Stats().admission.admitted, 2u);

  wedge.Release();
  std::size_t served = 0;
  for (const auto& future : futures) {
    const QueryBatchResponse& response = future.Get();
    if (response.status.ok()) {
      ++served;
      EXPECT_EQ(response.answers.size(), queries.size());
    }
  }
  EXPECT_EQ(served, 2u);
}

TEST(AsyncEngineTest, ExpiredRequestsNeverExecute) {
  const PointSet points = TestPoints(100);
  serve::ThreadPool pool(1);
  serve::SynopsisCache cache(16);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  Wedge wedge;
  wedge.Block(pool);

  const auto deadline =
      DeadlineClock::now() + std::chrono::milliseconds(20);
  Future<QueryBatchResponse> future =
      engine.SubmitQueryBatch({"ug", {}, kEpsilon, kSeed}, TestQueries(4),
                              deadline);
  const std::size_t misses_before = cache.stats().misses;
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  wedge.Release();

  const QueryBatchResponse& response = future.Get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.answers.empty());
  pool.WaitIdle();
  // The fit never ran: no cache traffic happened on the request's behalf.
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_EQ(engine.Stats().admission.expired, 1u);
  EXPECT_EQ(engine.admission().InFlightFits(), 0u);
}

TEST(AsyncEngineTest, IdenticalInFlightFitsCoalesce) {
  const PointSet points = TestPoints(100);
  serve::ThreadPool pool(1);
  serve::SynopsisCache cache(16);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  Wedge wedge;
  wedge.Block(pool);
  const FitSpec spec{"ug", {}, kEpsilon, kSeed};
  Future<FitResponse> first = engine.SubmitFit(spec);
  Future<FitResponse> second = engine.SubmitFit(spec);
  EXPECT_EQ(engine.Stats().admission.coalesced_fits, 1u);
  EXPECT_EQ(engine.admission().InFlightFits(), 1u);
  wedge.Release();

  ASSERT_TRUE(first.Get().status.ok());
  ASSERT_TRUE(second.Get().status.ok());
  // One real fit; the coalesced request rode the cache's single flight.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(first.Get().metadata.synopsis_size,
            second.Get().metadata.synopsis_size);
  EXPECT_EQ(engine.admission().InFlightFits(), 0u);
}

TEST(AsyncEngineTest, WarmPrefetchesTheCache) {
  const PointSet points = TestPoints(100);
  serve::ThreadPool pool(2);
  serve::SynopsisCache cache(16);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  const std::vector<FitSpec> specs = {
      {"ug", {}, kEpsilon, kSeed},
      {"privtree", {}, kEpsilon, kSeed},
      {"nonsense", {}, kEpsilon, kSeed},  // Skipped, not an error.
  };
  EXPECT_EQ(engine.Warm(specs), 2u);
  pool.WaitIdle();
  EXPECT_NE(cache.Lookup(engine.KeyFor(specs[0])), nullptr);
  EXPECT_NE(cache.Lookup(engine.KeyFor(specs[1])), nullptr);
  // A second Warm finds everything cached and accepts nothing.
  EXPECT_EQ(engine.Warm(specs), 0u);
  // Warmed fits serve as cache hits.
  const FitResponse& fitted = engine.SubmitFit(specs[0]).Get();
  ASSERT_TRUE(fitted.status.ok());
  EXPECT_TRUE(fitted.cache_hit);
}

TEST(AsyncEngineTest, InvalidSpecsResolveImmediately) {
  const PointSet points = TestPoints(100);
  serve::ThreadPool pool(1);
  serve::SynopsisCache cache(4);
  AsyncEngine engine(points, Box::UnitCube(2), pool, cache);

  {
    Future<FitResponse> future =
        engine.SubmitFit({"nonsense", {}, kEpsilon, kSeed});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  {
    Future<FitResponse> future =
        engine.SubmitFit({"ug", {}, -1.0, kSeed});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  {
    Future<FitResponse> future = engine.SubmitFit(
        {"ug", release::MethodOptions::Parse("bogus_key=1"), kEpsilon,
         kSeed});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  {
    // Well-typed but out of the declared range: the fitter's aborting
    // contract check (height >= 2) must never see this value.
    Future<FitResponse> future = engine.SubmitFit(
        {"hierarchy", release::MethodOptions::Parse("height=-3"), kEpsilon,
         kSeed});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  {
    // Dataset-relative range: more split dims than the data has.
    Future<FitResponse> future = engine.SubmitFit(
        {"privtree", release::MethodOptions::Parse("dims_per_split=3"),
         kEpsilon, kSeed});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  {
    // 3-d boxes against a 2-d dataset.
    Future<QueryBatchResponse> future = engine.SubmitQueryBatch(
        {"ug", {}, kEpsilon, kSeed},
        {Box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0})});
    ASSERT_TRUE(future.Ready());
    EXPECT_EQ(future.Get().status.code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(engine.Stats().admission.admitted, 0u);
}

}  // namespace
}  // namespace privtree::server
