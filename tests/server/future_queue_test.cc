// The serving primitives under the engine: Promise/Future completion
// handles (cross-thread set/get, timed waits, abandonment) and the bounded
// RequestQueue (FIFO order, depth cap, deadline plumbing).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dp/status.h"
#include "server/future.h"
#include "server/request.h"
#include "server/request_queue.h"

namespace privtree::server {
namespace {

/// A minimal response-like payload for the Future tests.
struct TestValue {
  Status status;
  int payload = 0;

  static TestValue Abandoned() {
    return {Status::Internal("request abandoned by its executor"), 0};
  }
};

TEST(FutureTest, DeliversValueAcrossThreads) {
  Promise<TestValue> promise;
  Future<TestValue> future = promise.future();
  EXPECT_FALSE(future.Ready());

  std::thread setter([p = std::move(promise)]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.Set({Status::OK(), 42});
  });
  const TestValue value = future.Get();
  EXPECT_TRUE(value.status.ok());
  EXPECT_EQ(value.payload, 42);
  EXPECT_TRUE(future.Ready());
  setter.join();
}

TEST(FutureTest, CopiedFuturesShareOneValue) {
  Promise<TestValue> promise;
  Future<TestValue> a = promise.future();
  Future<TestValue> b = a;
  promise.Set({Status::OK(), 7});
  EXPECT_EQ(a.Get().payload, 7);
  EXPECT_EQ(b.Get().payload, 7);  // Both handles see the one resolution.
}

TEST(FutureTest, WaitForTimesOutThenSucceeds) {
  Promise<TestValue> promise;
  Future<TestValue> future = promise.future();
  EXPECT_FALSE(future.WaitFor(std::chrono::milliseconds(5)));
  promise.Set({Status::OK(), 1});
  EXPECT_TRUE(future.WaitFor(std::chrono::milliseconds(5)));
}

TEST(FutureTest, DroppedPromiseResolvesWithInternalError) {
  std::optional<Future<TestValue>> future;
  {
    Promise<TestValue> promise;
    future = promise.future();
  }  // Executor died without answering.
  EXPECT_TRUE(future->Ready());
  EXPECT_EQ(future->Get().status.code(), StatusCode::kInternal);
}

TEST(RequestQueueTest, FifoOrderAndDepth) {
  RequestQueue queue(4);
  std::vector<int> ran;
  for (int i = 0; i < 3; ++i) {
    QueuedRequest request;
    request.run = [&ran, i] { ran.push_back(i); };
    request.expire = [](Status) {};
    EXPECT_TRUE(queue.TryPush(request));
  }
  EXPECT_EQ(queue.depth(), 3u);
  QueuedRequest popped;
  while (queue.TryPop(&popped)) popped.run();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, RefusesBeyondMaxDepth) {
  RequestQueue queue(2);
  QueuedRequest request;
  request.run = [] {};
  request.expire = [](Status) {};
  EXPECT_TRUE(queue.TryPush(request));
  request.run = [] {};
  request.expire = [](Status) {};
  EXPECT_TRUE(queue.TryPush(request));

  bool run_survived = false;
  QueuedRequest refused;
  refused.run = [&run_survived] { run_survived = true; };
  refused.expire = [](Status) {};
  EXPECT_FALSE(queue.TryPush(refused));
  // A refused request is left intact for the caller to resolve.
  ASSERT_NE(refused.run, nullptr);
  refused.run();
  EXPECT_TRUE(run_survived);

  QueuedRequest popped;
  EXPECT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestQueueTest, ZeroDepthClampsToOne) {
  RequestQueue queue(0);
  EXPECT_EQ(queue.max_depth(), 1u);
}

TEST(RequestQueueTest, CarriesDeadlines) {
  RequestQueue queue(1);
  const auto deadline =
      DeadlineClock::now() + std::chrono::milliseconds(1234);
  QueuedRequest request;
  request.deadline = deadline;
  request.run = [] {};
  request.expire = [](Status) {};
  ASSERT_TRUE(queue.TryPush(request));
  QueuedRequest popped;
  ASSERT_TRUE(queue.TryPop(&popped));
  EXPECT_EQ(popped.deadline, deadline);
}

TEST(DeadlineTest, MillisConversion) {
  EXPECT_EQ(DeadlineFromMillis(0), kNoDeadline);
  EXPECT_EQ(DeadlineFromMillis(-5), kNoDeadline);
  const auto before = DeadlineClock::now();
  const auto deadline = DeadlineFromMillis(250);
  EXPECT_GE(deadline, before + std::chrono::milliseconds(250));
  EXPECT_LT(deadline, before + std::chrono::seconds(10));
  // A wire-supplied huge deadline must mean "no deadline", not overflow
  // the clock arithmetic into an instantly-expired time point.
  EXPECT_EQ(DeadlineFromMillis(std::numeric_limits<std::int64_t>::max()),
            kNoDeadline);
}

}  // namespace
}  // namespace privtree::server
