// Multi-tenant serving: the DatasetRegistry hosts many datasets behind one
// pool and one cache with fingerprint-keyed isolation (two tenants fitting
// the same spec never share a synopsis), unknown fingerprints answer
// NotFound, wire uploads are idempotent by content, and one client
// exhausting its per-session ε budget fails cleanly while other clients
// keep serving.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "release/dataset.h"
#include "seq/sequence.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::uint64_t kSeed = 0xC11;

PointSet ClusteredPoints(std::uint64_t seed, double center,
                         std::size_t n = 200) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = center + 0.2 * rng.NextDouble();
    p[1] = center + 0.2 * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 10) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// Two spatial tenants on one ServerLoop, plus knobs for budget tests.
class MultiTenantFixture : public ::testing::Test {
 protected:
  void SetUp() override { Start({}); }

  void Start(DispatcherOptions options) {
    left_ = std::make_unique<PointSet>(ClusteredPoints(0xAAAA, 0.1));
    right_ = std::make_unique<PointSet>(ClusteredPoints(0xBBBB, 0.7));
    pool_ = std::make_unique<serve::ThreadPool>(4);
    cache_ = std::make_unique<serve::SynopsisCache>(32);
    registry_ = std::make_unique<DatasetRegistry>(*pool_, *cache_);
    auto left = registry_->Register(
        "left", release::Dataset(*left_, Box::UnitCube(2)));
    ASSERT_TRUE(left.ok());
    left_fp_ = left.value();
    auto right = registry_->Register(
        "right", release::Dataset(*right_, Box::UnitCube(2)));
    ASSERT_TRUE(right.ok());
    right_fp_ = right.value();
    ASSERT_NE(left_fp_, right_fp_);
    dispatcher_ = std::make_unique<Dispatcher>(*registry_, options);
    auto listener = ListenSocket::Listen(0);
    ASSERT_TRUE(listener.ok());
    loop_ = std::make_unique<ServerLoop>(*dispatcher_,
                                         std::move(listener).value());
    port_ = loop_->port();
    serving_ = std::thread([this] { EXPECT_TRUE(loop_->Run().ok()); });
  }

  void TearDown() override {
    loop_->Stop();
    serving_.join();
  }

  Client MustConnect() {
    auto connected = Client::Connect("127.0.0.1", port_);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  }

  std::unique_ptr<PointSet> left_;
  std::unique_ptr<PointSet> right_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<serve::SynopsisCache> cache_;
  std::unique_ptr<DatasetRegistry> registry_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<ServerLoop> loop_;
  std::uint64_t left_fp_ = 0;
  std::uint64_t right_fp_ = 0;
  std::uint16_t port_ = 0;
  std::thread serving_;
};

TEST_F(MultiTenantFixture, HelloAdvertisesEveryTenant) {
  Client client = MustConnect();
  ASSERT_EQ(client.info().datasets.size(), 2u);
  EXPECT_EQ(client.info().datasets[0].name, "left");
  EXPECT_EQ(client.info().datasets[0].fingerprint, left_fp_);
  EXPECT_EQ(client.info().datasets[1].name, "right");
  EXPECT_EQ(client.info().datasets[1].fingerprint, right_fp_);
  // The default tenant is the first registered.
  EXPECT_EQ(client.info().dataset_fingerprint, left_fp_);
  EXPECT_EQ(client.info().point_count, left_->size());
}

TEST_F(MultiTenantFixture, SameSpecDifferentTenantsNeverShareASynopsis) {
  // The isolation claim: identical method/options/ε/seed against two
  // tenants must fit twice (two cache misses — the fingerprint is in the
  // SynopsisKey) and answer from the respective datasets.
  Client client = MustConnect();
  const FitSpec spec{"privtree", {}, kEpsilon, kSeed};
  const std::vector<Box> queries = TestQueries();

  client.SelectDataset(left_fp_);
  const auto left_answers = client.QueryBatch(spec, queries);
  ASSERT_TRUE(left_answers.ok()) << left_answers.status().ToString();

  client.SelectDataset(right_fp_);
  const auto right_answers = client.QueryBatch(spec, queries);
  ASSERT_TRUE(right_answers.ok()) << right_answers.status().ToString();

  EXPECT_EQ(cache_->stats().misses, 2u)
      << "tenants shared (or refit) a synopsis";
  EXPECT_NE(left_answers.value(), right_answers.value())
      << "two disjoint datasets answered identically — cache cross-talk";

  // Repeating either tenant's batch is now a pure cache hit.
  const auto again = client.QueryBatch(spec, queries);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), right_answers.value());
  EXPECT_EQ(cache_->stats().misses, 2u);
}

TEST_F(MultiTenantFixture, UnknownFingerprintAnswersNotFound) {
  Client client = MustConnect();
  client.SelectDataset(0x1234567890ABCDEF);
  const auto fitted = client.Fit({"privtree", {}, kEpsilon, kSeed});
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kNotFound);
  // The connection survives; selecting a real tenant recovers.
  client.SelectDataset(right_fp_);
  EXPECT_TRUE(client.Fit({"privtree", {}, kEpsilon, kSeed}).ok());
}

TEST_F(MultiTenantFixture, UploadedDatasetServesAndIsIdempotent) {
  Client client = MustConnect();
  RegisterDatasetRequest upload;
  upload.name = "uploaded";
  upload.kind = release::DatasetKind::kSpatial;
  upload.dim = 2;
  upload.domain_lo = {0.0, 0.0};
  upload.domain_hi = {1.0, 1.0};
  for (double x = 0.05; x < 1.0; x += 0.1) {
    upload.coords.push_back(x);
    upload.coords.push_back(x);
  }
  const auto registered = client.RegisterDataset(upload);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_EQ(registered.value().point_count, 10u);
  EXPECT_NE(registered.value().fingerprint, left_fp_);

  // Same content again: same fingerprint, no new tenant.
  const auto again = client.RegisterDataset(upload);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().fingerprint, registered.value().fingerprint);
  EXPECT_EQ(registry_->size(), 3u);

  // A *new* connection can serve the uploaded tenant by fingerprint.
  Client other = MustConnect();
  other.SelectDataset(registered.value().fingerprint);
  const auto answers =
      other.QueryBatch({"ug", {}, kEpsilon, kSeed}, TestQueries());
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
}

TEST_F(MultiTenantFixture, SequenceTenantServesNextToSpatialOnes) {
  Client client = MustConnect();
  RegisterDatasetRequest upload;
  upload.name = "clicks";
  upload.kind = release::DatasetKind::kSequence;
  upload.dim = 4;
  Rng rng(0x5EC);
  for (int i = 0; i < 50; ++i) {
    std::vector<Symbol> s;
    for (std::size_t j = 0; j < 1 + rng.NextBounded(5); ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(4)));
    }
    upload.sequences.push_back(std::move(s));
  }
  const auto registered = client.RegisterDataset(upload);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();

  client.SelectDataset(registered.value().fingerprint);
  release::MethodOptions options;
  options.Set("l_top", "6");
  const FitSpec spec{"pst_privtree", options, kEpsilon, kSeed};
  const std::vector<release::SequenceQuery> queries = {
      release::SequenceQuery::Frequency({0, 1}),
      release::SequenceQuery::PrefixCount({2})};
  const auto answers = client.SeqQueryBatch(spec, queries);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers.value().size(), 2u);

  // The spatial default still serves box batches on the same connection.
  client.SelectDataset(0);
  EXPECT_TRUE(
      client.QueryBatch({"ug", {}, kEpsilon, kSeed}, TestQueries()).ok());
}

/// Budget-capped sessions: Σε ≤ 2 per connection.
class BudgetFixture : public MultiTenantFixture {
 protected:
  void SetUp() override {
    DispatcherOptions options;
    options.session_budget = 2.0;
    Start(options);
  }
};

TEST_F(BudgetFixture, HelloAnnouncesTheBudget) {
  Client client = MustConnect();
  EXPECT_EQ(client.info().budget_total, 2.0);
  EXPECT_EQ(client.info().budget_spent, 0.0);
}

TEST_F(BudgetFixture, ExhaustionFailsCleanlyAndOthersKeepServing) {
  Client spender = MustConnect();
  const std::vector<Box> queries = TestQueries();

  // Two distinct ε=1 releases spend the whole budget...
  ASSERT_TRUE(spender.Fit({"privtree", {}, kEpsilon, kSeed}).ok());
  ASSERT_TRUE(spender.Fit({"privtree", {}, kEpsilon, kSeed + 1}).ok());
  // ...so a third distinct release is refused with OutOfRange.
  const auto broke = spender.Fit({"privtree", {}, kEpsilon, kSeed + 2});
  ASSERT_FALSE(broke.ok());
  EXPECT_EQ(broke.status().code(), StatusCode::kOutOfRange);

  // Already-paid releases stay free: queries are post-processing.
  EXPECT_TRUE(
      spender.QueryBatch({"privtree", {}, kEpsilon, kSeed}, queries).ok());

  // A different connection has its own untouched budget.
  Client fresh = MustConnect();
  EXPECT_TRUE(fresh.Fit({"privtree", {}, kEpsilon, kSeed + 2}).ok());

  // And the broke session still serves control frames.
  EXPECT_TRUE(spender.Stats().ok());
}

TEST_F(BudgetFixture, RejectedSpecDoesNotBurnBudget) {
  Client client = MustConnect();
  // An invalid spec must refund (or never charge): the budget is for
  // *released* ε, not attempts.
  ASSERT_FALSE(client.Fit({"nonsense", {}, kEpsilon, kSeed}).ok());
  ASSERT_TRUE(client.Fit({"privtree", {}, kEpsilon, kSeed}).ok());
  ASSERT_TRUE(client.Fit({"privtree", {}, kEpsilon, kSeed + 1}).ok());
}

TEST(DatasetRegistryUnitTest, EmptyAndCapBehaviour) {
  serve::ThreadPool pool(2);
  serve::SynopsisCache cache(8);
  DatasetRegistryOptions options;
  options.max_datasets = 2;
  DatasetRegistry registry(pool, cache, options);
  EXPECT_EQ(registry.Find(0), nullptr);
  EXPECT_EQ(registry.default_fingerprint(), 0u);
  EXPECT_TRUE(registry.List().empty());

  PointSet a = ClusteredPoints(1, 0.2, 50);
  PointSet b = ClusteredPoints(2, 0.5, 50);
  PointSet c = ClusteredPoints(3, 0.8, 50);
  auto first = registry.Register("a", std::move(a), Box::UnitCube(2));
  ASSERT_TRUE(first.ok());
  auto second = registry.Register("b", std::move(b), Box::UnitCube(2));
  ASSERT_TRUE(second.ok());
  // At the cap: a third distinct dataset is refused with Unavailable...
  auto third = registry.Register("c", std::move(c), Box::UnitCube(2));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  // ...but re-registering existing content is idempotent, not refused.
  PointSet a_again = ClusteredPoints(1, 0.2, 50);
  auto repeat =
      registry.Register("a2", std::move(a_again), Box::UnitCube(2));
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value(), first.value());
  EXPECT_EQ(registry.size(), 2u);

  // Find resolves 0 to the first registered tenant.
  EXPECT_EQ(registry.Find(0), registry.Find(first.value()));
  EXPECT_NE(registry.Find(second.value()), nullptr);
  EXPECT_EQ(registry.Find(0xDEAD), nullptr);

  // An empty dataset is refused.
  DatasetRegistry fresh(pool, cache);
  auto empty = fresh.Register("empty", PointSet(2), Box::UnitCube(2));
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetRegistryUnitTest, UploadsCanBeDisabled) {
  serve::ThreadPool pool(2);
  serve::SynopsisCache cache(8);
  DatasetRegistry registry(pool, cache);
  PointSet points = ClusteredPoints(7, 0.4, 50);
  ASSERT_TRUE(
      registry.Register("base", std::move(points), Box::UnitCube(2)).ok());
  DispatcherOptions options;
  options.allow_uploads = false;
  Dispatcher dispatcher(registry, options);

  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  ServerLoop loop(dispatcher, std::move(listener).value());
  std::thread serving([&loop] { EXPECT_TRUE(loop.Run().ok()); });
  auto connected = Client::Connect("127.0.0.1", loop.port());
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected).value();

  RegisterDatasetRequest upload;
  upload.name = "nope";
  upload.dim = 1;
  upload.domain_lo = {0.0};
  upload.domain_hi = {1.0};
  upload.coords = {0.5};
  const auto refused = client.RegisterDataset(upload);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.size(), 1u);

  loop.Stop();
  serving.join();
}

}  // namespace
}  // namespace privtree::server
