// The epoll readiness loop, end to end: served answers are bit-for-bit
// ServerLoop (and in-process ReleaseSession) answers, pipelined frames
// come back in request order, a half-open slow-loris peer is reaped by the
// idle timeout without disturbing other clients (the regression this file
// pins), malformed length prefixes answer ErrorReply and close cleanly,
// and Shutdown drains the loop gracefully.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/byteio.h"
#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/session.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/event/event_loop.h"
#include "server/protocol.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::uint64_t kSeed = 0xC11;

PointSet TestPoints(std::size_t n = 300) {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 25) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// One epoll serving stack on an ephemeral port, torn down in order.
class EventLoopFixture : public ::testing::Test {
 protected:
  void SetUp() override { Start({}); }

  void Start(EventLoopOptions options) {
    points_ = std::make_unique<PointSet>(TestPoints());
    pool_ = std::make_unique<serve::ThreadPool>(4);
    cache_ = std::make_unique<serve::SynopsisCache>(32);
    registry_ = std::make_unique<DatasetRegistry>(*pool_, *cache_);
    auto registered = registry_->Register(
        "test", release::Dataset(*points_, Box::UnitCube(2)));
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    dispatcher_ = std::make_unique<Dispatcher>(*registry_);
    auto listener = ListenSocket::Listen(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    loop_ = std::make_unique<EventLoop>(
        *dispatcher_, std::move(listener).value(), options);
    port_ = loop_->port();
    serving_ = std::thread([this] { run_status_ = loop_->Run(); });
  }

  void TearDown() override {
    loop_->Stop();
    serving_.join();
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  Client MustConnect() {
    auto connected = Client::Connect("127.0.0.1", port_);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  }

  std::unique_ptr<PointSet> points_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<serve::SynopsisCache> cache_;
  std::unique_ptr<DatasetRegistry> registry_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<EventLoop> loop_;
  std::uint16_t port_ = 0;
  std::thread serving_;
  Status run_status_ = Status::OK();
};

TEST_F(EventLoopFixture, ServesReleaseSessionAnswersBitForBit) {
  Client client = MustConnect();
  const std::vector<Box> queries = TestQueries();
  for (const std::string& method :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    const FitSpec spec{method, {}, kEpsilon, kSeed};
    const auto answers = client.QueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << method << ": "
                              << answers.status().ToString();
    release::ReleaseSession session(*points_, Box::UnitCube(2), kEpsilon,
                                    kSeed);
    const std::vector<double> want =
        session.Release(method, kEpsilon)->QueryBatch(queries);
    ASSERT_EQ(answers.value().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(answers.value()[i], want[i])
          << method << " query " << i << " diverged over epoll";
    }
  }
}

TEST_F(EventLoopFixture, MatchesThreadLoopAnswersExactly) {
  // The parity oracle: the same dispatcher behind the thread-per-connection
  // loop must hand out byte-identical answers.
  auto oracle_listener = ListenSocket::Listen(0);
  ASSERT_TRUE(oracle_listener.ok());
  ServerLoop oracle(*dispatcher_, std::move(oracle_listener).value());
  const std::uint16_t oracle_port = oracle.port();
  std::thread oracle_thread([&oracle] { EXPECT_TRUE(oracle.Run().ok()); });

  Client epoll_client = MustConnect();
  auto oracle_connected = Client::Connect("127.0.0.1", oracle_port);
  ASSERT_TRUE(oracle_connected.ok());
  Client oracle_client = std::move(oracle_connected).value();

  const std::vector<Box> queries = TestQueries();
  for (const char* method : {"privtree", "ug", "wavelet"}) {
    const FitSpec spec{method, {}, kEpsilon, kSeed};
    const auto via_epoll = epoll_client.QueryBatch(spec, queries);
    const auto via_threads = oracle_client.QueryBatch(spec, queries);
    ASSERT_TRUE(via_epoll.ok());
    ASSERT_TRUE(via_threads.ok());
    EXPECT_EQ(via_epoll.value(), via_threads.value()) << method;
  }
  oracle.Stop();
  oracle_thread.join();
}

TEST_F(EventLoopFixture, PipelinedFramesAnswerInRequestOrder) {
  // Send many frames back to back without reading, then collect every
  // reply: each must decode and arrive in request order (Fit replies
  // carry the method name, which is how order is observable).
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();

  const std::vector<std::string> methods = {"privtree", "ug", "wavelet",
                                            "privtree", "ag", "ug"};
  std::string burst;
  for (const std::string& method : methods) {
    const std::string payload =
        EncodeFit({FitSpec{method, {}, kEpsilon, kSeed}, 0, 0});
    ByteWriter w(&burst);
    w.U32(static_cast<std::uint32_t>(payload.size()));
    burst.append(payload);
  }
  ASSERT_EQ(::send(conn.fd(), burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  for (std::size_t i = 0; i < methods.size(); ++i) {
    auto reply = conn.RecvFrame();
    ASSERT_TRUE(reply.ok()) << "reply " << i;
    FitReply fit;
    ASSERT_TRUE(DecodeFitReply(reply.value(), &fit).ok()) << "reply " << i;
    EXPECT_EQ(fit.metadata.method, methods[i])
        << "pipelined reply " << i << " out of order";
  }
  EXPECT_GE(loop_->stats().served_frames, methods.size());
}

TEST_F(EventLoopFixture, ConcurrentClientsShareOneCache) {
  const std::vector<Box> queries = TestQueries();
  constexpr std::size_t kClients = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto connected = Client::Connect("127.0.0.1", port_);
      if (!connected.ok()) {
        ++failures;
        return;
      }
      Client client = std::move(connected).value();
      for (const char* method : {"privtree", "ug"}) {
        const FitSpec spec{method, {}, kEpsilon, kSeed};
        const auto answers = client.QueryBatch(spec, queries);
        if (!answers.ok()) ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  // All clients shared one cache: exactly one fit per method happened.
  EXPECT_EQ(cache_->stats().misses, 2u);
}

class EventLoopTimeoutFixture : public EventLoopFixture {
 protected:
  void SetUp() override {
    EventLoopOptions options;
    options.idle_timeout = std::chrono::milliseconds(150);
    Start(options);
  }
};

TEST_F(EventLoopTimeoutFixture, SlowLorisHalfFrameIsReapedByIdleTimeout) {
  // The regression: a peer that sends two bytes of a length prefix and
  // stalls used to hold its server thread hostage forever.  Under the
  // event loop the idle timeout reaps it with a clean close, and a
  // well-behaved client on the same loop stays fully served throughout.
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection loris = std::move(dialed).value();
  const char half_header[2] = {0x10, 0x00};  // A partial length prefix.
  ASSERT_EQ(::send(loris.fd(), half_header, sizeof(half_header), 0), 2);

  // The healthy client keeps getting answers while the loris waits.
  Client healthy = MustConnect();
  const std::vector<Box> queries = TestQueries(5);
  for (int i = 0; i < 3; ++i) {
    const auto answers =
        healthy.QueryBatch({"ug", {}, kEpsilon, kSeed}, queries);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // By now (>= 300ms > 150ms idle) the loris must have been reaped: its
  // next read observes the server-side close as a clean error Status.
  const auto reply = loris.RecvFrame();
  ASSERT_FALSE(reply.ok());
  EXPECT_GE(loop_->stats().reaped_idle, 1u);

  // And the loop still accepts and serves new connections.
  Client after = MustConnect();
  EXPECT_TRUE(after.QueryBatch({"ug", {}, kEpsilon, kSeed}, queries).ok());
}

TEST_F(EventLoopTimeoutFixture, BusyConnectionsAreNeverReaped) {
  // A connection with steady traffic outlives many idle timeouts.
  Client client = MustConnect();
  const std::vector<Box> queries = TestQueries(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client.QueryBatch({"privtree", {}, kEpsilon, kSeed}, queries).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  EXPECT_EQ(loop_->stats().reaped_idle, 0u);
}

TEST_F(EventLoopFixture, OversizedLengthPrefixAnswersErrorAndCloses) {
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();
  // A length prefix far past kMaxFramePayload.
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_EQ(::send(conn.fd(), huge, sizeof(huge), 0), 4);

  auto reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(PeekType(reply.value()).value(), MessageType::kErrorReply);
  Status carried;
  ASSERT_TRUE(DecodeErrorReply(reply.value(), &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  // The stream is unsynchronized; the server closes after the error.
  EXPECT_FALSE(conn.RecvFrame().ok());
  EXPECT_GE(loop_->stats().malformed_frames, 1u);

  // Other connections are unaffected.
  Client client = MustConnect();
  EXPECT_TRUE(
      client.QueryBatch({"ug", {}, kEpsilon, kSeed}, TestQueries(3)).ok());
}

TEST_F(EventLoopFixture, MalformedPayloadKeepsTheConnectionAlive) {
  // A well-framed but undecodable payload answers ErrorReply and keeps
  // serving — only an unsynchronized *stream* forces a close.
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();
  ASSERT_TRUE(conn.SendFrame("garbage frame").ok());
  auto reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(reply.value()).value(), MessageType::kErrorReply);

  ASSERT_TRUE(conn.SendFrame(EncodeHello(HelloRequest{})).ok());
  reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(reply.value()).value(), MessageType::kHelloReply);
}

TEST_F(EventLoopFixture, ShutdownFrameDrainsTheLoop) {
  Client client = MustConnect();
  EXPECT_TRUE(client.Shutdown().ok());
  serving_.join();  // Run() must return on its own after Shutdown.
  EXPECT_TRUE(run_status_.ok());
  serving_ = std::thread([] {});  // Keep TearDown's join well-defined.
  // New connections are refused once the loop stopped (port released).
  auto refused = Client::Connect("127.0.0.1", port_);
  EXPECT_FALSE(refused.ok());
}

TEST_F(EventLoopFixture, StopFromAnotherThreadDrains) {
  Client client = MustConnect();
  loop_->Stop();
  serving_.join();
  EXPECT_TRUE(run_status_.ok());
  serving_ = std::thread([] {});
  // The existing connection observes the close.
  EXPECT_FALSE(client.Stats().ok());
}

class EventLoopCapacityFixture : public EventLoopFixture {
 protected:
  void SetUp() override {
    EventLoopOptions options;
    options.max_connections = 2;
    Start(options);
  }
};

TEST_F(EventLoopCapacityFixture, AcceptsPastCapacityAreRefused) {
  Client a = MustConnect();
  Client b = MustConnect();
  // The third connection is closed on accept: the dial itself succeeds
  // (the kernel completes the handshake) but the handshake frame dies.
  auto refused = Client::Connect("127.0.0.1", port_);
  EXPECT_FALSE(refused.ok());
  EXPECT_GE(loop_->stats().refused_at_capacity, 1u);
  // The two admitted connections still serve.
  EXPECT_TRUE(a.Stats().ok());
  EXPECT_TRUE(b.Stats().ok());
}

}  // namespace
}  // namespace privtree::server
