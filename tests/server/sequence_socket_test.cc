// Served sequence traffic, end to end: a ServerLoop over a sequence-kind
// AsyncEngine answers remote pst_privtree / ngram fits and SequenceQuery
// batches bit-for-bit like an in-process ReleaseSession, hostile specs
// (out-of-range options, out-of-alphabet symbols, wrong query shape) come
// back as clean Status errors, and the SeqQueryBatch wire codec is total
// under truncation and bit flips.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dp/rng.h"
#include "dp/status.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/session.h"
#include "seq/sequence.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::uint64_t kSeed = 0xC11;
constexpr std::size_t kAlphabet = 6;
constexpr std::size_t kLTop = 8;

SequenceDataset TestSequences(std::size_t n = 300) {
  Rng rng(0xDA7A5EC);
  SequenceDataset data(kAlphabet);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t len = 1 + rng.NextBounded(10);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(kAlphabet)));
    }
    data.Add(s);
  }
  return data.Truncate(kLTop);
}

release::MethodOptions SeqOptions() {
  release::MethodOptions options;
  options.Set("l_top", std::to_string(kLTop));
  return options;
}

std::vector<release::SequenceQuery> TestQueries() {
  std::vector<release::SequenceQuery> queries;
  Rng rng(0xF00D);
  for (int i = 0; i < 30; ++i) {
    std::vector<Symbol> s;
    const std::size_t len = 1 + rng.NextBounded(4);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(kAlphabet)));
    }
    queries.push_back(i % 4 == 0
                          ? release::SequenceQuery::PrefixCount(s)
                          : release::SequenceQuery::Frequency(s));
  }
  queries.push_back(release::SequenceQuery::TopK(5, 2));
  return queries;
}

/// The in-process ground truth for one served release.
std::vector<double> SessionAnswers(
    const SequenceDataset& data, const std::string& method,
    const std::vector<release::SequenceQuery>& queries,
    std::uint64_t seed = kSeed) {
  release::ReleaseSession session(data, kEpsilon, seed);
  const auto released = session.ReleaseRemaining(method, SeqOptions());
  return released->QueryBatch(std::span(queries));
}

/// One sequence serving stack on an ephemeral port, torn down in order.
class SequenceServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sequences_ = std::make_unique<SequenceDataset>(TestSequences());
    pool_ = std::make_unique<serve::ThreadPool>(4);
    cache_ = std::make_unique<serve::SynopsisCache>(32);
    registry_ = std::make_unique<DatasetRegistry>(*pool_, *cache_);
    auto registered =
        registry_->Register("seq", release::Dataset(*sequences_));
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    dispatcher_ = std::make_unique<Dispatcher>(*registry_);
    auto listener = ListenSocket::Listen(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    loop_ = std::make_unique<ServerLoop>(*dispatcher_,
                                         std::move(listener).value());
    port_ = loop_->port();
    serving_ = std::thread([this] { EXPECT_TRUE(loop_->Run().ok()); });
  }

  void TearDown() override {
    loop_->Stop();
    serving_.join();
  }

  Client MustConnect() {
    auto connected = Client::Connect("127.0.0.1", port_);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  }

  std::unique_ptr<SequenceDataset> sequences_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<serve::SynopsisCache> cache_;
  std::unique_ptr<DatasetRegistry> registry_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<ServerLoop> loop_;
  std::uint16_t port_ = 0;
  std::thread serving_;
};

TEST_F(SequenceServerFixture, HelloDescribesTheSequenceDataset) {
  Client client = MustConnect();
  EXPECT_EQ(client.info().kind, release::DatasetKind::kSequence);
  EXPECT_EQ(client.info().dim, kAlphabet);  // Alphabet size.
  EXPECT_EQ(client.info().point_count, sequences_->size());
  EXPECT_EQ(client.info().dataset_fingerprint,
            registry_->default_fingerprint());
  // Only the methods this server can fit are advertised.
  EXPECT_EQ(client.info().methods,
            release::GlobalMethodRegistry().Names(
                release::DatasetKind::kSequence));
}

TEST_F(SequenceServerFixture, BothMethodsServeSessionAnswersOverTheSocket) {
  Client client = MustConnect();
  const std::vector<release::SequenceQuery> queries = TestQueries();
  for (const std::string& method :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSequence)) {
    SCOPED_TRACE(method);
    const FitSpec spec{method, SeqOptions(), kEpsilon, kSeed};
    const auto fitted = client.Fit(spec);
    ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
    EXPECT_EQ(fitted.value().metadata.method, method);
    EXPECT_EQ(fitted.value().metadata.dim, kAlphabet);

    const auto answers = client.SeqQueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    const std::vector<double> want =
        SessionAnswers(*sequences_, method, queries);
    ASSERT_EQ(answers.value().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(answers.value()[i], want[i])
          << method << " query " << i << " diverged from ReleaseSession";
    }
  }
}

TEST_F(SequenceServerFixture, HostileSpecsGetCleanStatuses) {
  Client client = MustConnect();
  const std::vector<release::SequenceQuery> queries = TestQueries();

  // A spatial method against a sequence server.
  {
    const FitSpec spec{"privtree", {}, kEpsilon, kSeed};
    const auto fitted = client.Fit(spec);
    ASSERT_FALSE(fitted.ok());
    EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument);
  }
  // Box queries against a sequence server.
  {
    const FitSpec spec{"pst_privtree", SeqOptions(), kEpsilon, kSeed};
    const std::vector<Box> boxes = {Box::UnitCube(2)};
    const auto answers = client.QueryBatch(spec, boxes);
    ASSERT_FALSE(answers.ok());
    EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
  }
  // Out-of-range option values: the registry's OptionKey ranges screen
  // them before any fitter contract check can abort the server.
  for (const auto& [key, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"l_top", "0"},
           {"l_top", "-5"},
           {"max_depth", "0"},
           {"tree_budget_fraction", "1"}}) {
    release::MethodOptions options;
    options.Set(key, value);
    const FitSpec spec{"pst_privtree", options, kEpsilon, kSeed};
    const auto fitted = client.Fit(spec);
    ASSERT_FALSE(fitted.ok()) << key << "=" << value;
    EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument)
        << key << "=" << value;
  }
  {
    release::MethodOptions options;
    options.Set("n_max", "0");
    const FitSpec spec{"ngram", options, kEpsilon, kSeed};
    EXPECT_FALSE(client.Fit(spec).ok());
  }
  // Out-of-alphabet symbols and hostile top-k ranks.
  {
    const FitSpec spec{"pst_privtree", SeqOptions(), kEpsilon, kSeed};
    for (const release::SequenceQuery& bad :
         {release::SequenceQuery::Frequency(
              {static_cast<Symbol>(kAlphabet)}),
          release::SequenceQuery::Frequency({}),
          release::SequenceQuery::TopK(0, 2),
          release::SequenceQuery::TopK(3, 99)}) {
      const auto answers = client.SeqQueryBatch(
          spec, std::span<const release::SequenceQuery>(&bad, 1));
      ASSERT_FALSE(answers.ok());
      EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // The connection survives all of the above.
  const FitSpec spec{"pst_privtree", SeqOptions(), kEpsilon, kSeed};
  EXPECT_TRUE(client.SeqQueryBatch(spec, queries).ok());
}

TEST_F(SequenceServerFixture, SpatialEngineRejectsSeqQueryBatch) {
  // The inverse shape error, in-process: a spatial engine must answer a
  // SeqQueryBatch with a clean InvalidArgument.
  PointSet points(2);
  points.Add(std::vector<double>{0.5, 0.5});
  AsyncEngine spatial(points, Box::UnitCube(2), *pool_, *cache_);
  const FitSpec spec{"privtree", {}, kEpsilon, kSeed};
  const auto response =
      spatial
          .SubmitSeqQueryBatch(spec,
                               {release::SequenceQuery::Frequency({0})})
          .Get();
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(SeqProtocolTest, SeqQueryBatchRoundTrips) {
  SeqQueryBatchRequest request;
  request.spec = {"pst_privtree", SeqOptions(), 0.5, 42};
  request.deadline_millis = 1500;
  request.queries = TestQueries();

  const std::string payload = EncodeSeqQueryBatch(request);
  ASSERT_EQ(PeekType(payload).value(), MessageType::kSeqQueryBatch);
  SeqQueryBatchRequest decoded;
  ASSERT_TRUE(DecodeSeqQueryBatch(payload, &decoded).ok());
  EXPECT_EQ(decoded.spec.method, request.spec.method);
  EXPECT_EQ(decoded.spec.options.ToString(),
            request.spec.options.ToString());
  EXPECT_EQ(decoded.spec.epsilon, request.spec.epsilon);
  EXPECT_EQ(decoded.spec.seed, request.spec.seed);
  EXPECT_EQ(decoded.deadline_millis, request.deadline_millis);
  ASSERT_EQ(decoded.queries.size(), request.queries.size());
  for (std::size_t i = 0; i < request.queries.size(); ++i) {
    EXPECT_EQ(decoded.queries[i].kind, request.queries[i].kind);
    EXPECT_EQ(decoded.queries[i].symbols, request.queries[i].symbols);
    EXPECT_EQ(decoded.queries[i].k, request.queries[i].k);
    EXPECT_EQ(decoded.queries[i].max_len, request.queries[i].max_len);
  }
}

TEST(SeqProtocolTest, DecoderIsTotalUnderCorruption) {
  SeqQueryBatchRequest request;
  request.spec = {"ngram", SeqOptions(), 1.0, 7};
  request.queries = TestQueries();
  const std::string payload = EncodeSeqQueryBatch(request);

  // Every truncation prefix fails cleanly.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    SeqQueryBatchRequest out;
    EXPECT_FALSE(DecodeSeqQueryBatch(payload.substr(0, cut), &out).ok())
        << "truncation at " << cut;
  }
  // Bit flips either decode to a different-but-valid request or fail
  // cleanly; they never crash.  (A flip can legitimately survive: symbol
  // values, ranks and deadlines admit many valid encodings.)
  for (std::size_t bit = 0; bit < payload.size() * 8; bit += 7) {
    std::string corrupt = payload;
    corrupt[bit / 8] =
        static_cast<char>(corrupt[bit / 8] ^ (1 << (bit % 8)));
    SeqQueryBatchRequest out;
    // lint-ok: discarded-status — fuzzing: any verdict is acceptable, the
    // assertion is only that the decoder does not crash.
    (void)DecodeSeqQueryBatch(corrupt, &out);
  }
  // Trailing bytes are rejected.
  SeqQueryBatchRequest out;
  EXPECT_FALSE(DecodeSeqQueryBatch(payload + "x", &out).ok());
  // Oversized symbol values are malformed (symbols are 16-bit).
  SeqQueryBatchRequest big;
  big.spec = request.spec;
  release::SequenceQuery q;
  q.symbols = {1};
  big.queries = {q};
  std::string encoded = EncodeSeqQueryBatch(big);
  // The last 4 bytes are the single symbol's u32; overwrite with 2^20.
  encoded[encoded.size() - 4] = 0;
  encoded[encoded.size() - 3] = 0;
  encoded[encoded.size() - 2] = 0x10;
  encoded[encoded.size() - 1] = 0;
  EXPECT_FALSE(DecodeSeqQueryBatch(encoded, &out).ok());
}

}  // namespace
}  // namespace privtree::server
