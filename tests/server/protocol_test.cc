// The wire protocol: every message round-trips through encode/decode, and
// every malformation — truncation, trailing bytes, wrong tags, inverted
// boxes, unparsable options — decodes to a clean Status error.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "core/byteio.h"
#include "dp/status.h"
#include "server/protocol.h"
#include "server/request.h"
#include "spatial/box.h"

namespace privtree::server {
namespace {

FitSpec SampleSpec() {
  FitSpec spec;
  spec.method = "privtree";
  spec.options = release::MethodOptions::Parse("max_depth=12");
  spec.epsilon = 0.5;
  spec.seed = 0xC11;
  return spec;
}

TEST(ProtocolTest, HelloRoundTrip) {
  HelloReply reply;
  reply.dim = 2;
  reply.point_count = 1000;
  reply.dataset_fingerprint = 0xDEADBEEF;
  reply.methods = {"ag", "privtree", "ug"};
  reply.budget_total = 4.0;
  reply.budget_spent = 0.5;
  reply.datasets = {{"taxi", release::DatasetKind::kSpatial, 2, 1000,
                     0xDEADBEEF},
                    {"msnbc", release::DatasetKind::kSequence, 17, 500,
                     0xFEEDFACE}};
  const std::string payload = EncodeHelloReply(reply);
  ASSERT_EQ(PeekType(payload).value(), MessageType::kHelloReply);

  HelloReply decoded;
  ASSERT_TRUE(DecodeHelloReply(payload, &decoded).ok());
  EXPECT_EQ(decoded.version, kProtocolVersion);
  EXPECT_EQ(decoded.dim, 2u);
  EXPECT_EQ(decoded.point_count, 1000u);
  EXPECT_EQ(decoded.dataset_fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(decoded.methods, reply.methods);
  EXPECT_EQ(decoded.budget_total, 4.0);
  EXPECT_EQ(decoded.budget_spent, 0.5);
  ASSERT_EQ(decoded.datasets.size(), 2u);
  EXPECT_EQ(decoded.datasets[0].name, "taxi");
  EXPECT_EQ(decoded.datasets[0].fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(decoded.datasets[1].name, "msnbc");
  EXPECT_EQ(decoded.datasets[1].kind, release::DatasetKind::kSequence);
  EXPECT_EQ(decoded.datasets[1].dim, 17u);
  EXPECT_EQ(decoded.datasets[1].point_count, 500u);

  HelloRequest request;
  ASSERT_TRUE(DecodeHello(EncodeHello(HelloRequest{}), &request).ok());
  EXPECT_EQ(request.version, kProtocolVersion);
}

TEST(ProtocolTest, FitRoundTripPreservesSpec) {
  const std::string payload = EncodeFit({SampleSpec(), 1500});
  FitRequest decoded;
  ASSERT_TRUE(DecodeFit(payload, &decoded).ok());
  EXPECT_EQ(decoded.spec.method, "privtree");
  EXPECT_EQ(decoded.spec.options.ToString(), "max_depth=12");
  EXPECT_EQ(decoded.spec.epsilon, 0.5);
  EXPECT_EQ(decoded.spec.seed, 0xC11u);
  EXPECT_EQ(decoded.deadline_millis, 1500);
}

TEST(ProtocolTest, FitReplyRoundTripsMetadata) {
  FitReply reply;
  reply.metadata.method = "ug";
  reply.metadata.dim = 2;
  reply.metadata.epsilon_spent = 1.25;
  reply.metadata.synopsis_size = 4096;
  reply.metadata.height = -1;
  reply.cache_hit = true;
  FitReply decoded;
  ASSERT_TRUE(DecodeFitReply(EncodeFitReply(reply), &decoded).ok());
  EXPECT_EQ(decoded.metadata.method, "ug");
  EXPECT_EQ(decoded.metadata.dim, 2u);
  EXPECT_EQ(decoded.metadata.epsilon_spent, 1.25);
  EXPECT_EQ(decoded.metadata.synopsis_size, 4096u);
  EXPECT_EQ(decoded.metadata.height, -1);
  EXPECT_TRUE(decoded.cache_hit);
}

TEST(ProtocolTest, QueryBatchRoundTripsBoxesBitForBit) {
  QueryBatchRequest request;
  request.spec = SampleSpec();
  request.deadline_millis = 0;
  request.queries = {Box({0.125, 0.25}, {0.875, 0.5}),
                     Box({0.0, 0.0}, {1.0, 1.0})};
  QueryBatchRequest decoded;
  ASSERT_TRUE(DecodeQueryBatch(EncodeQueryBatch(request), &decoded).ok());
  ASSERT_EQ(decoded.queries.size(), 2u);
  EXPECT_EQ(decoded.queries[0], request.queries[0]);
  EXPECT_EQ(decoded.queries[1], request.queries[1]);

  QueryBatchReply reply;
  reply.answers = {1.5, -2.25, 1e-300};
  reply.cache_hit = false;
  QueryBatchReply decoded_reply;
  ASSERT_TRUE(
      DecodeQueryBatchReply(EncodeQueryBatchReply(reply), &decoded_reply)
          .ok());
  EXPECT_EQ(decoded_reply.answers, reply.answers);
}

TEST(ProtocolTest, EmptyQueryBatchIsValid) {
  QueryBatchRequest request;
  request.spec = SampleSpec();
  QueryBatchRequest decoded;
  ASSERT_TRUE(DecodeQueryBatch(EncodeQueryBatch(request), &decoded).ok());
  EXPECT_TRUE(decoded.queries.empty());
}

TEST(ProtocolTest, WarmRoundTrip) {
  WarmRequest request;
  request.specs = {SampleSpec(), SampleSpec()};
  request.specs[1].method = "ug";
  request.specs[1].options = {};
  WarmRequest decoded;
  ASSERT_TRUE(DecodeWarm(EncodeWarm(request), &decoded).ok());
  ASSERT_EQ(decoded.specs.size(), 2u);
  EXPECT_EQ(decoded.specs[0].method, "privtree");
  EXPECT_EQ(decoded.specs[1].method, "ug");

  WarmReply reply;
  ASSERT_TRUE(DecodeWarmReply(EncodeWarmReply({2}), &reply).ok());
  EXPECT_EQ(reply.accepted, 2u);
}

TEST(ProtocolTest, StatsReplyRoundTrip) {
  StatsReply reply;
  reply.queue_depth = 3;
  reply.admitted = 100;
  reply.shed_queue_full = 7;
  reply.expired = 2;
  reply.writeback_hits = 5;
  StatsReply decoded;
  ASSERT_TRUE(DecodeStatsReply(EncodeStatsReply(reply), &decoded).ok());
  EXPECT_EQ(decoded.queue_depth, 3u);
  EXPECT_EQ(decoded.admitted, 100u);
  EXPECT_EQ(decoded.shed_queue_full, 7u);
  EXPECT_EQ(decoded.expired, 2u);
  EXPECT_EQ(decoded.writeback_hits, 5u);
}

TEST(ProtocolTest, TracedWrapperRoundTripsIdAndInnerPayload) {
  const std::string inner = EncodeFit({SampleSpec(), 1500});
  const std::string payload = EncodeTraced(0xABCDEF0123456789ull, inner);
  ASSERT_EQ(PeekType(payload).value(), MessageType::kTraced);

  std::uint64_t trace_id = 0;
  std::string_view unwrapped;
  ASSERT_TRUE(DecodeTraced(payload, &trace_id, &unwrapped).ok());
  EXPECT_EQ(trace_id, 0xABCDEF0123456789ull);
  // The inner payload comes back byte-identical — the wrapper is pure
  // framing, so the dispatcher's view of the request cannot change.
  EXPECT_EQ(unwrapped, inner);
  FitRequest decoded;
  ASSERT_TRUE(DecodeFit(unwrapped, &decoded).ok());
  EXPECT_EQ(decoded.spec.seed, 0xC11u);
}

TEST(ProtocolTest, TracedRejectsEmptyInnerAndNesting) {
  const std::string inner = EncodeGetStats();
  std::uint64_t trace_id = 0;
  std::string_view unwrapped;
  // No inner payload at all.
  EXPECT_FALSE(
      DecodeTraced(EncodeTraced(7, ""), &trace_id, &unwrapped).ok());
  // A Traced inside a Traced: one level only.
  const std::string nested =
      EncodeTraced(7, EncodeTraced(8, inner));
  EXPECT_FALSE(DecodeTraced(nested, &trace_id, &unwrapped).ok());
  // Truncated id.
  EXPECT_FALSE(
      DecodeTraced(EncodeTraced(7, inner).substr(0, 6), &trace_id,
                   &unwrapped)
          .ok());
}

TEST(ProtocolTest, GetStatsRoundTrip) {
  const std::string request = EncodeGetStats();
  ASSERT_EQ(PeekType(request).value(), MessageType::kGetStats);

  const std::string json =
      "{\"counters\":{\"event.accepted\":3},\"gauges\":{},"
      "\"histograms\":{}}";
  const std::string payload = EncodeGetStatsReply(json);
  ASSERT_EQ(PeekType(payload).value(), MessageType::kGetStatsReply);
  std::string decoded;
  ASSERT_TRUE(DecodeGetStatsReply(payload, &decoded).ok());
  EXPECT_EQ(decoded, json);
  // Malformations fail cleanly: truncation and trailing bytes.
  EXPECT_FALSE(
      DecodeGetStatsReply(payload.substr(0, payload.size() - 1), &decoded)
          .ok());
  EXPECT_FALSE(DecodeGetStatsReply(payload + "x", &decoded).ok());
}

TEST(ProtocolTest, ErrorReplyCarriesEveryStatusCode) {
  for (const Status& status :
       {Status::InvalidArgument("bad spec"), Status::NotFound("eof"),
        Status::IOError("io"), Status::OutOfRange("range"),
        Status::Internal("bug"), Status::Unavailable("shed"),
        Status::DeadlineExceeded("late")}) {
    Status decoded;
    ASSERT_TRUE(DecodeErrorReply(EncodeErrorReply(status), &decoded).ok());
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(ProtocolTest, TruncationAlwaysFailsCleanly) {
  const std::string payload = EncodeQueryBatch(
      {SampleSpec(), 10, 0, {Box({0.1, 0.2}, {0.3, 0.4})}});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    QueryBatchRequest decoded;
    EXPECT_FALSE(
        DecodeQueryBatch(payload.substr(0, cut), &decoded).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolTest, TrailingBytesAreRejected) {
  std::string payload = EncodeFit({SampleSpec(), 0});
  payload += '\0';
  FitRequest decoded;
  EXPECT_FALSE(DecodeFit(payload, &decoded).ok());
}

TEST(ProtocolTest, WrongTagIsRejected) {
  const std::string payload = EncodeFit({SampleSpec(), 0});
  QueryBatchRequest decoded;
  EXPECT_FALSE(DecodeQueryBatch(payload, &decoded).ok());
  EXPECT_FALSE(PeekType("").ok());
  std::string unknown;
  unknown.assign("\xEE\xEE\xEE\xEE", 4);
  EXPECT_FALSE(PeekType(unknown).ok());
}

TEST(ProtocolTest, InvertedBoxIsRejected) {
  QueryBatchRequest request;
  request.spec = SampleSpec();
  request.queries = {Box({0.1, 0.1}, {0.9, 0.9})};
  std::string payload = EncodeQueryBatch(request);
  // Swap the last box's lo_2/hi_2 doubles in place: lo > hi on the wire.
  std::string lo = payload.substr(payload.size() - 16, 8);
  std::string hi = payload.substr(payload.size() - 8, 8);
  payload.replace(payload.size() - 16, 8, hi);
  payload.replace(payload.size() - 8, 8, lo);
  QueryBatchRequest decoded;
  const Status status = DecodeQueryBatch(payload, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, HostileDimensionsAndCountsAreRejectedNotFatal) {
  // A hand-crafted QueryBatch whose u64 dim makes 16·dim wrap (or whose
  // count implies a huge allocation) must decode to an error — one frame
  // must never be able to kill the server via SIGFPE or bad_alloc.
  for (const std::uint64_t dim :
       {std::uint64_t{1} << 60, (std::uint64_t{1} << 60) + 1,
        std::uint64_t{0}, std::uint64_t{1} << 40}) {
    std::string payload;
    ByteWriter w(&payload);
    w.U32(static_cast<std::uint32_t>(MessageType::kQueryBatch));
    w.Str("ug");
    w.Str("");
    w.F64(1.0);
    w.U64(0xC11);
    w.I64(0);
    w.U64(0);  // Dataset fingerprint (v3): 0 = server default.
    w.U64(dim);
    w.U64(1);  // One claimed box.
    w.F64(0.0);
    w.F64(1.0);
    QueryBatchRequest decoded;
    EXPECT_FALSE(DecodeQueryBatch(payload, &decoded).ok())
        << "dim=" << dim << " decoded";
  }
}

TEST(ProtocolTest, HostileReplyCountsAreRejectedNotFatal) {
  // A QueryBatchReply claiming 2^61 answers must fail cleanly in the
  // client (F64Vec bounds-check, no allocation), not throw length_error.
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(MessageType::kQueryBatchReply));
  w.U32(0);
  w.U64(std::uint64_t{1} << 61);
  w.F64(1.0);
  QueryBatchReply decoded;
  EXPECT_FALSE(DecodeQueryBatchReply(payload, &decoded).ok());
}

TEST(ProtocolTest, HostileWarmCountsAreRejectedNotFatal) {
  // A Warm frame claiming millions of specs backed by filler bytes must
  // not pre-allocate count FitSpecs (a multi-GB amplification); specs are
  // at least 24 wire bytes each, and the count is bounded by that.
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(MessageType::kWarm));
  w.U64(0);  // Dataset fingerprint (v3).
  w.U64(67'000'000);
  payload.append(1024, '\0');  // Filler far short of the claimed specs.
  WarmRequest decoded;
  EXPECT_FALSE(DecodeWarm(payload, &decoded).ok());
  EXPECT_TRUE(decoded.specs.empty());
}

TEST(ProtocolTest, ErrorReplyWithOkCodeBecomesInternal) {
  // An ErrorReply can never legitimately carry OK; mapping it to OK would
  // feed an OK Status into Result (which aborts on OK-as-error).
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(MessageType::kErrorReply));
  w.U32(0);  // StatusCode::kOk on the wire.
  w.Str("liar");
  w.U64(0);  // Retry-after hint (v4).
  Status decoded;
  ASSERT_TRUE(DecodeErrorReply(payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
}

TEST(ProtocolTest, ErrorReplyRoundTripsRetryAfterHint) {
  Status shed = Status::Unavailable("queue full").WithRetryAfter(250);
  Status decoded;
  ASSERT_TRUE(DecodeErrorReply(EncodeErrorReply(shed), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.retry_after_millis(), 250u);
  // A v3-shaped frame (no trailing u64) is now malformed.
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(MessageType::kErrorReply));
  w.U32(static_cast<std::uint32_t>(StatusCode::kUnavailable));
  w.Str("shed");
  EXPECT_FALSE(DecodeErrorReply(payload, &decoded).ok());
}

TEST(ProtocolTest, UnparsableOptionsAreRejected) {
  FitRequest request{SampleSpec(), 0};
  std::string payload = EncodeFit(request);
  // Rebuild with a corrupt options string via a hand-rolled spec.
  FitSpec bad = SampleSpec();
  bad.options = {};
  std::string raw = EncodeFit({bad, 0});
  // "max_depth=12" is absent; craft "no-equals" text by hand instead.
  // Simpler: the decoder runs TryParse, so feed it through a spec whose
  // canonical text is malformed — impossible via MethodOptions, so splice
  // raw bytes: replace the empty options string with "oops" (no '=').
  const std::string needle(
      "\x00\x00\x00\x00", 4);  // u32 length 0 of the options string.
  const std::size_t method_end =
      4 /*tag*/ + 4 + bad.method.size();  // tag + str header + bytes.
  ASSERT_EQ(raw.compare(method_end, 4, needle), 0);
  const std::string options_text = "oops";
  std::string spliced = raw.substr(0, method_end);
  spliced += std::string("\x04\x00\x00\x00", 4);
  spliced += options_text;
  spliced += raw.substr(method_end + 4);
  FitRequest decoded;
  EXPECT_FALSE(DecodeFit(spliced, &decoded).ok());
}

TEST(ProtocolTest, DatasetFingerprintRoundTripsOnEveryRequest) {
  FitRequest fit{SampleSpec(), 100, 0xABCD};
  FitRequest fit_decoded;
  ASSERT_TRUE(DecodeFit(EncodeFit(fit), &fit_decoded).ok());
  EXPECT_EQ(fit_decoded.dataset_fingerprint, 0xABCDu);

  QueryBatchRequest qb{SampleSpec(), 0, 0x1234, {Box({0.0}, {1.0})}};
  QueryBatchRequest qb_decoded;
  ASSERT_TRUE(DecodeQueryBatch(EncodeQueryBatch(qb), &qb_decoded).ok());
  EXPECT_EQ(qb_decoded.dataset_fingerprint, 0x1234u);

  WarmRequest warm{0x5678, {SampleSpec()}};
  WarmRequest warm_decoded;
  ASSERT_TRUE(DecodeWarm(EncodeWarm(warm), &warm_decoded).ok());
  EXPECT_EQ(warm_decoded.dataset_fingerprint, 0x5678u);
}

TEST(ProtocolTest, RegisterSpatialDatasetRoundTrip) {
  RegisterDatasetRequest request;
  request.name = "uploaded";
  request.kind = release::DatasetKind::kSpatial;
  request.dim = 2;
  request.domain_lo = {0.0, -1.0};
  request.domain_hi = {1.0, 1.0};
  request.coords = {0.25, 0.5, 0.75, -0.5};
  const std::string payload = EncodeRegisterDataset(request);
  ASSERT_EQ(PeekType(payload).value(), MessageType::kRegisterDataset);

  RegisterDatasetRequest decoded;
  ASSERT_TRUE(DecodeRegisterDataset(payload, &decoded).ok());
  EXPECT_EQ(decoded.name, "uploaded");
  EXPECT_EQ(decoded.kind, release::DatasetKind::kSpatial);
  EXPECT_EQ(decoded.dim, 2u);
  EXPECT_EQ(decoded.domain_lo, request.domain_lo);
  EXPECT_EQ(decoded.domain_hi, request.domain_hi);
  EXPECT_EQ(decoded.coords, request.coords);

  RegisterDatasetReply reply{0xFACE, 2};
  RegisterDatasetReply reply_decoded;
  ASSERT_TRUE(DecodeRegisterDatasetReply(EncodeRegisterDatasetReply(reply),
                                         &reply_decoded)
                  .ok());
  EXPECT_EQ(reply_decoded.fingerprint, 0xFACEu);
  EXPECT_EQ(reply_decoded.point_count, 2u);
}

TEST(ProtocolTest, RegisterSequenceDatasetRoundTrip) {
  RegisterDatasetRequest request;
  request.name = "clicks";
  request.kind = release::DatasetKind::kSequence;
  request.dim = 17;  // Alphabet size.
  request.sequences = {{1, 2, 3}, {}, {16, 0}};
  RegisterDatasetRequest decoded;
  ASSERT_TRUE(
      DecodeRegisterDataset(EncodeRegisterDataset(request), &decoded).ok());
  EXPECT_EQ(decoded.kind, release::DatasetKind::kSequence);
  EXPECT_EQ(decoded.dim, 17u);
  EXPECT_EQ(decoded.sequences, request.sequences);
}

TEST(ProtocolTest, HostileRegisterDatasetIsRejectedNotFatal) {
  // Inverted domain.
  RegisterDatasetRequest bad;
  bad.name = "d";
  bad.dim = 1;
  bad.domain_lo = {1.0};
  bad.domain_hi = {0.0};
  RegisterDatasetRequest decoded;
  EXPECT_EQ(DecodeRegisterDataset(EncodeRegisterDataset(bad), &decoded)
                .code(),
            StatusCode::kInvalidArgument);

  // NaN domain bound (NaN fails the lo <= hi check by design).
  bad.domain_lo = {std::numeric_limits<double>::quiet_NaN()};
  bad.domain_hi = {1.0};
  EXPECT_EQ(DecodeRegisterDataset(EncodeRegisterDataset(bad), &decoded)
                .code(),
            StatusCode::kInvalidArgument);

  // Non-finite coordinate.
  bad.domain_lo = {0.0};
  bad.coords = {std::numeric_limits<double>::infinity()};
  EXPECT_EQ(DecodeRegisterDataset(EncodeRegisterDataset(bad), &decoded)
                .code(),
            StatusCode::kInvalidArgument);

  // A symbol outside the declared alphabet.
  RegisterDatasetRequest seq;
  seq.name = "s";
  seq.kind = release::DatasetKind::kSequence;
  seq.dim = 4;
  seq.sequences = {{0, 1, 4}};  // 4 >= alphabet size 4.
  EXPECT_EQ(DecodeRegisterDataset(EncodeRegisterDataset(seq), &decoded)
                .code(),
            StatusCode::kInvalidArgument);

  // A claimed point count far beyond the payload (allocation bomb).
  std::string payload;
  ByteWriter w(&payload);
  w.U32(static_cast<std::uint32_t>(MessageType::kRegisterDataset));
  w.Str("bomb");
  w.U32(0);  // kSpatial.
  w.U64(2);  // dim.
  w.F64(0.0);
  w.F64(0.0);
  w.F64(1.0);
  w.F64(1.0);
  w.U64(std::uint64_t{1} << 58);  // Claimed points, no backing bytes.
  EXPECT_FALSE(DecodeRegisterDataset(payload, &decoded).ok());
}

}  // namespace
}  // namespace privtree::server
