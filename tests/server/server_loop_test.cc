// End-to-end over the socket: a ServerLoop on an ephemeral loopback port
// serves concurrent clients whose fit + query-batch answers are bit-for-bit
// the in-process ReleaseSession answers, malformed frames answer ErrorReply
// without killing the connection, Warm/Stats work remotely, and Shutdown
// stops the loop cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "release/registry.h"
#include "release/session.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/async_engine.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/server_loop.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::uint64_t kSeed = 0xC11;

PointSet TestPoints(std::size_t n = 300) {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 25) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// One serving stack on an ephemeral port, torn down in order.
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = std::make_unique<PointSet>(TestPoints());
    pool_ = std::make_unique<serve::ThreadPool>(4);
    cache_ = std::make_unique<serve::SynopsisCache>(32);
    registry_ = std::make_unique<DatasetRegistry>(*pool_, *cache_);
    auto registered = registry_->Register(
        "test", release::Dataset(*points_, Box::UnitCube(2)));
    ASSERT_TRUE(registered.ok()) << registered.status().ToString();
    dispatcher_ = std::make_unique<Dispatcher>(*registry_);
    auto listener = ListenSocket::Listen(0);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    loop_ = std::make_unique<ServerLoop>(*dispatcher_,
                                         std::move(listener).value());
    port_ = loop_->port();
    serving_ = std::thread([this] { EXPECT_TRUE(loop_->Run().ok()); });
  }

  void TearDown() override {
    loop_->Stop();
    serving_.join();
  }

  Client MustConnect() {
    auto connected = Client::Connect("127.0.0.1", port_);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  }

  /// The default tenant's engine (the only one in this fixture).
  AsyncEngine& engine() { return *registry_->Find(0); }

  std::unique_ptr<PointSet> points_;
  std::unique_ptr<serve::ThreadPool> pool_;
  std::unique_ptr<serve::SynopsisCache> cache_;
  std::unique_ptr<DatasetRegistry> registry_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<ServerLoop> loop_;
  std::uint16_t port_ = 0;
  std::thread serving_;
};

TEST_F(ServerFixture, HelloDescribesTheServedDataset) {
  Client client = MustConnect();
  EXPECT_EQ(client.info().dim, 2u);
  EXPECT_EQ(client.info().point_count, points_->size());
  EXPECT_EQ(client.info().dataset_fingerprint,
            registry_->default_fingerprint());
  ASSERT_EQ(client.info().datasets.size(), 1u);
  EXPECT_EQ(client.info().datasets[0].name, "test");
  EXPECT_EQ(client.info().budget_total, 0.0);  // No budget configured.
  EXPECT_EQ(client.info().methods,
            release::GlobalMethodRegistry().Names(
                release::DatasetKind::kSpatial));
}

TEST_F(ServerFixture, EveryMethodServesInProcessAnswersOverTheSocket) {
  Client client = MustConnect();
  const std::vector<Box> queries = TestQueries();
  for (const std::string& method :
       release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    const FitSpec spec{method, {}, kEpsilon, kSeed};
    const auto fitted = client.Fit(spec);
    ASSERT_TRUE(fitted.ok()) << method << ": "
                             << fitted.status().ToString();
    EXPECT_EQ(fitted.value().metadata.method, method);

    const auto answers = client.QueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << method << ": "
                              << answers.status().ToString();
    release::ReleaseSession session(*points_, Box::UnitCube(2), kEpsilon,
                                    kSeed);
    const std::vector<double> want =
        session.Release(method, kEpsilon)->QueryBatch(queries);
    ASSERT_EQ(answers.value().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(answers.value()[i], want[i])
          << method << " query " << i << " diverged over the wire";
    }
  }
}

TEST_F(ServerFixture, ConcurrentClientsShareOneCache) {
  const std::vector<Box> queries = TestQueries();
  constexpr std::size_t kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto connected = Client::Connect("127.0.0.1", port_);
      if (!connected.ok()) {
        ++failures;
        return;
      }
      Client client = std::move(connected).value();
      for (const char* method : {"privtree", "ug"}) {
        const FitSpec spec{method, {}, kEpsilon, kSeed};
        const auto answers = client.QueryBatch(spec, queries);
        if (!answers.ok()) ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  // All clients shared one cache: exactly one fit per method happened.
  EXPECT_EQ(cache_->stats().misses, 2u);
  EXPECT_GE(cache_->stats().hits + engine().Stats().admission.coalesced_fits,
            2u * (kClients - 1));
}

TEST_F(ServerFixture, WarmAndStatsWorkRemotely) {
  Client client = MustConnect();
  const std::vector<FitSpec> specs = {{"ug", {}, kEpsilon, kSeed},
                                      {"wavelet", {}, kEpsilon, kSeed}};
  const auto accepted = client.Warm(specs);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.value(), 2u);
  pool_->WaitIdle();

  const auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().admitted, 2u);
  EXPECT_EQ(stats.value().queue_max_depth, 256u);
  // The warmed release now serves as a cache hit.
  const auto fitted = client.Fit(specs[0]);
  ASSERT_TRUE(fitted.ok());
  EXPECT_TRUE(fitted.value().cache_hit);
}

TEST_F(ServerFixture, ServerSideErrorsComeBackAsStatuses) {
  Client client = MustConnect();
  const auto unknown = client.Fit({"nonsense", {}, kEpsilon, kSeed});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  const auto negative = client.Fit({"ug", {}, -2.0, kSeed});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  // The connection survives rejected requests.
  const auto fitted = client.Fit({"ug", {}, kEpsilon, kSeed});
  EXPECT_TRUE(fitted.ok());
}

TEST_F(ServerFixture, MalformedFramesAnswerErrorReplyAndKeepServing) {
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();

  ASSERT_TRUE(conn.SendFrame("garbage frame").ok());
  auto reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(PeekType(reply.value()).value(), MessageType::kErrorReply);
  Status carried;
  ASSERT_TRUE(DecodeErrorReply(reply.value(), &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);

  // A reply tag sent as a request is refused, not crashed on.
  ASSERT_TRUE(conn.SendFrame(EncodeShutdownReply()).ok());
  reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(reply.value()).value(), MessageType::kErrorReply);

  // The same connection still serves a well-formed handshake.
  ASSERT_TRUE(conn.SendFrame(EncodeHello(HelloRequest{})).ok());
  reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(reply.value()).value(), MessageType::kHelloReply);
}

TEST_F(ServerFixture, MixedDimBatchesAreRefusedClientSide) {
  Client client = MustConnect();
  const std::vector<Box> mixed = {Box({0.1, 0.2}, {0.5, 0.6}),
                                  Box({0.1}, {0.5})};
  const auto answers =
      client.QueryBatch({"ug", {}, kEpsilon, kSeed}, mixed);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerFixture, SequentialReconnectsAreServedAndReaped) {
  // Many short-lived clients in a row: each must be served, and the loop
  // reaps finished handler threads as it accepts the next one.
  const std::vector<Box> queries = TestQueries(5);
  for (int i = 0; i < 10; ++i) {
    Client client = MustConnect();
    const auto answers =
        client.QueryBatch({"ug", {}, kEpsilon, kSeed}, queries);
    ASSERT_TRUE(answers.ok()) << "reconnect " << i << ": "
                              << answers.status().ToString();
  }
}

TEST_F(ServerFixture, VersionMismatchIsRefused) {
  auto dialed = Connection::Dial("127.0.0.1", port_);
  ASSERT_TRUE(dialed.ok());
  Connection conn = std::move(dialed).value();
  HelloRequest hello;
  hello.version = kProtocolVersion + 1;
  ASSERT_TRUE(conn.SendFrame(EncodeHello(hello)).ok());
  auto reply = conn.RecvFrame();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(PeekType(reply.value()).value(), MessageType::kErrorReply);
}

TEST_F(ServerFixture, ShutdownStopsTheLoop) {
  Client client = MustConnect();
  EXPECT_TRUE(client.Shutdown().ok());
  serving_.join();  // Run() must return on its own after Shutdown.
  serving_ = std::thread([] {});  // Keep TearDown's join well-defined.
  // New connections are refused once the loop stopped.
  auto refused = Client::Connect("127.0.0.1", port_);
  EXPECT_FALSE(refused.ok());
}

TEST(ServerSocketTest, DialingAClosedPortFails) {
  // Bind-then-close to find a port that is very likely unused.
  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().Close();
  auto dialed = Connection::Dial("127.0.0.1", port);
  EXPECT_FALSE(dialed.ok());
  EXPECT_EQ(dialed.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace privtree::server
