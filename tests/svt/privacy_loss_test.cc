// Tests of Section 5's negative results: the binary SVT (Claim 1) and the
// vanilla SVT (Claim 2) are not ε-DP with k-independent noise.
#include "svt/privacy_loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(BinarySvtLossTest, GrowsLinearlyInK) {
  // Lemma 5.1's derivation gives loss > k/(2λ).
  const double lambda = 2.0;
  const double loss_k4 = BinarySvtLossLemma51(4, lambda);
  const double loss_k8 = BinarySvtLossLemma51(8, lambda);
  const double loss_k16 = BinarySvtLossLemma51(16, lambda);
  EXPECT_GT(loss_k4, 4.0 / (2.0 * lambda));
  EXPECT_GT(loss_k8, 8.0 / (2.0 * lambda));
  EXPECT_GT(loss_k16, 16.0 / (2.0 * lambda));
  // Roughly doubling k doubles the loss.
  EXPECT_NEAR(loss_k16 / loss_k8, 2.0, 0.35);
}

TEST(BinarySvtLossTest, RefutesClaim1) {
  // Claim 1 says λ = 2/ε suffices for ε-DP.  Composition over the two
  // neighboring pairs would then bound the loss by 2ε.  Pick ε = 1,
  // λ = 2, k = 16 ⇒ λ <= k/(4ε) = 4 and the loss must exceed 2ε = 2.
  const double loss = BinarySvtLossLemma51(16, 2.0);
  EXPECT_GT(loss, 2.0);
}

TEST(BinarySvtLossTest, MonteCarloAgreesWithQuadrature) {
  const int k = 4;
  const double lambda = 2.0;
  const double numeric = BinarySvtLossLemma51(k, lambda);
  Rng rng(123);
  const double monte_carlo =
      BinarySvtLossLemma51MonteCarlo(k, lambda, 400000, rng);
  EXPECT_NEAR(monte_carlo, numeric, 0.25);
}

TEST(BinarySvtLossTest, LargeLambdaIsSafe) {
  // With λ = k/(2ε)·(large slack) the loss falls below 2ε — consistent
  // with the Ω(k/ε) requirement.
  const int k = 8;
  const double epsilon = 1.0;
  const double lambda = 4.0 * static_cast<double>(k) / epsilon;
  EXPECT_LT(BinarySvtLossLemma51(k, lambda), 2.0 * epsilon);
}

TEST(VanillaSvtLossTest, MatchesPaperClosedForm) {
  // Appendix A derives the ratio e^{k/λ} exactly.
  for (int k : {2, 8, 32}) {
    for (double lambda : {1.0, 2.0}) {
      EXPECT_NEAR(VanillaSvtLossClaim2(k, lambda),
                  static_cast<double>(k) / lambda, 0.02)
          << "k=" << k << " lambda=" << lambda;
    }
  }
}

TEST(VanillaSvtLossTest, RefutesClaim2) {
  // Claim 2: λ = 2/ε gives ε-DP, so the loss should be <= 2ε.  With ε = 1,
  // λ = 2 and k = 16 the loss is k/λ = 8 > 2.
  EXPECT_GT(VanillaSvtLossClaim2(16, 2.0), 2.0);
}

TEST(PrivacyLossDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH(BinarySvtLossLemma51(3, 1.0), "PRIVTREE_CHECK");  // Odd k.
  EXPECT_DEATH(BinarySvtLossLemma51(4, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(VanillaSvtLossClaim2(1, 1.0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
