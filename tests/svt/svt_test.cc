#include "svt/svt.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(BinarySvtTest, AnswersEveryQuery) {
  Rng rng(1);
  const std::vector<double> answers = {0.0, 100.0, -50.0, 3.0};
  const auto out = BinarySvt(answers, 1.0, 1.0, rng);
  EXPECT_EQ(out.size(), answers.size());
}

TEST(BinarySvtTest, ClearSignalsAreDetected) {
  Rng rng(2);
  const std::vector<double> answers = {1000.0, -1000.0, 1000.0};
  const auto out = BinarySvt(answers, 0.0, 1.0, rng);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 1);
}

TEST(BinarySvtTest, PositiveRateMatchesTheory) {
  // With answer = θ, P(above) = P(Lap − Lap' > 0) = 1/2.
  Rng rng(3);
  const std::vector<double> answers(1, 5.0);
  int positives = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    positives += BinarySvt(answers, 5.0, 1.0, rng)[0];
  }
  EXPECT_NEAR(static_cast<double>(positives) / kTrials, 0.5, 0.01);
}

TEST(VanillaSvtTest, StopsAfterTReleases) {
  Rng rng(4);
  const std::vector<double> answers(20, 1000.0);  // All far above θ.
  const auto out = VanillaSvt(answers, 0.0, 1.0, 3, rng);
  EXPECT_EQ(out.size(), 3u);
  for (const auto& release : out) {
    ASSERT_TRUE(release.has_value());
    EXPECT_NEAR(*release, 1000.0, 50.0);
  }
}

TEST(VanillaSvtTest, BelowThresholdYieldsBottom) {
  Rng rng(5);
  const std::vector<double> answers(5, -1000.0);
  const auto out = VanillaSvt(answers, 0.0, 1.0, 2, rng);
  EXPECT_EQ(out.size(), 5u);
  for (const auto& release : out) EXPECT_FALSE(release.has_value());
}

TEST(VanillaSvtTest, QueryNoiseScalesWithT) {
  Rng rng(6);
  const std::vector<double> answers(2000, 1000.0);
  double spread_t1 = 0.0, spread_t4 = 0.0;
  for (const auto& v : VanillaSvt(answers, 0.0, 1.0, 2000, rng)) {
    if (v) spread_t1 += std::abs(*v - 1000.0);
  }
  // With t large the per-release noise is t·λ.
  Rng rng2(7);
  const auto out4 = VanillaSvt(answers, 0.0, 4.0, 2000, rng2);
  for (const auto& v : out4) {
    if (v) spread_t4 += std::abs(*v - 1000.0);
  }
  EXPECT_GT(spread_t4, spread_t1);
}

TEST(ReducedSvtTest, StopsAfterTOnes) {
  Rng rng(8);
  const std::vector<double> answers(50, 1000.0);
  const auto out = ReducedSvt(answers, 0.0, 1.0, 4, rng);
  EXPECT_EQ(out.size(), 4u);
  for (int bit : out) EXPECT_EQ(bit, 1);
}

TEST(ReducedSvtTest, MixedSignalOutputsExpectedPattern) {
  Rng rng(9);
  const std::vector<double> answers = {1000.0, -1000.0, -1000.0, 1000.0};
  const auto out = ReducedSvt(answers, 0.0, 1.0, 5, rng);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 1);
}

TEST(ImprovedSvtTest, StopsAfterTOnes) {
  Rng rng(10);
  const std::vector<double> answers(50, 1000.0);
  const auto out = ImprovedSvt(answers, 0.0, 1.0, 4, rng);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ImprovedSvtTest, MoreAccurateThanReducedNearThreshold) {
  // The improved SVT's threshold noise has scale λ instead of t·λ, so for
  // answers exactly at θ ± margin it misclassifies less often.
  const double margin = 5.0;
  const std::vector<double> answers = {margin, -margin, margin, -margin,
                                       margin, -margin, margin, -margin};
  const int t = 8;
  const double lambda = 1.0;
  Rng rng(11);
  int improved_errors = 0, reduced_errors = 0;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto improved = ImprovedSvt(answers, 0.0, lambda, t, rng);
    const auto reduced = ReducedSvt(answers, 0.0, lambda, t, rng);
    for (std::size_t i = 0; i < improved.size(); ++i) {
      improved_errors += improved[i] != (answers[i] > 0.0 ? 1 : 0);
    }
    for (std::size_t i = 0; i < reduced.size(); ++i) {
      reduced_errors += reduced[i] != (answers[i] > 0.0 ? 1 : 0);
    }
  }
  EXPECT_LT(improved_errors, reduced_errors);
}

TEST(SvtDeathTest, InvalidParametersAbort) {
  Rng rng(12);
  const std::vector<double> answers = {1.0};
  EXPECT_DEATH(BinarySvt(answers, 0.0, 0.0, rng), "PRIVTREE_CHECK");
  EXPECT_DEATH(VanillaSvt(answers, 0.0, 1.0, 0, rng), "PRIVTREE_CHECK");
  EXPECT_DEATH(ReducedSvt(answers, 0.0, -1.0, 1, rng), "PRIVTREE_CHECK");
  EXPECT_DEATH(ImprovedSvt(answers, 0.0, 1.0, -2, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
