#include "dp/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(LaplaceTest, PdfIntegratesToOne) {
  const double lambda = 1.7;
  double integral = 0.0;
  const double dx = 0.001;
  for (double x = -40.0; x < 40.0; x += dx) {
    integral += LaplacePdf(x, lambda) * dx;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LaplaceTest, CdfMatchesPdfIntegral) {
  const double lambda = 0.8;
  double integral = 0.0;
  const double dx = 0.0005;
  for (double x = -30.0; x < 1.3; x += dx) {
    integral += LaplacePdf(x + dx / 2, lambda) * dx;
  }
  EXPECT_NEAR(integral, LaplaceCdf(1.3, lambda), 1e-4);
}

TEST(LaplaceTest, SfComplementsCdf) {
  for (double x : {-5.0, -0.3, 0.0, 0.3, 5.0}) {
    EXPECT_NEAR(LaplaceCdf(x, 2.0) + LaplaceSf(x, 2.0), 1.0, 1e-12);
  }
}

TEST(LaplaceTest, SfIsStableInFarTail) {
  // 1 - CDF would underflow to 0 long before this.
  const double sf = LaplaceSf(500.0, 1.0);
  EXPECT_GT(sf, 0.0);
  EXPECT_NEAR(std::log(sf), std::log(0.5) - 500.0, 1e-9);
}

TEST(LaplaceTest, SampleMeanAndMad) {
  Rng rng(11);
  const double lambda = 2.5;
  double total = 0.0, abs_total = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleLaplace(rng, lambda);
    total += x;
    abs_total += std::abs(x);
  }
  EXPECT_NEAR(total / kSamples, 0.0, 0.03);
  // E|Lap(λ)| = λ.
  EXPECT_NEAR(abs_total / kSamples, lambda, 0.03);
}

TEST(LaplaceTest, SampleTailMatchesSf) {
  Rng rng(12);
  const double lambda = 1.0, threshold = 2.0;
  int above = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleLaplace(rng, lambda) > threshold) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples,
              LaplaceSf(threshold, lambda), 0.003);
}

TEST(ExponentialTest, SampleMeanIsInverseRate) {
  Rng rng(13);
  const double rate = 3.0;
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleExponential(rng, rate);
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / kSamples, 1.0 / rate, 0.01);
}

TEST(GeometricTest, MeanMatches) {
  Rng rng(14);
  const double p = 0.3;
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(SampleGeometric(rng, p));
  }
  // Mean of the {0,1,...} geometric is (1-p)/p.
  EXPECT_NEAR(total / kSamples, (1.0 - p) / p, 0.03);
}

TEST(GeometricTest, PEqualsOneIsAlwaysZero) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleGeometric(rng, 1.0), 0u);
}

TEST(NormalTest, MeanAndVariance) {
  Rng rng(16);
  const double mean = 1.5, stddev = 2.0;
  double total = 0.0, total_sq = 0.0;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleNormal(rng, mean, stddev);
    total += x;
    total_sq += x * x;
  }
  const double sample_mean = total / kSamples;
  EXPECT_NEAR(sample_mean, mean, 0.02);
  EXPECT_NEAR(total_sq / kSamples - sample_mean * sample_mean,
              stddev * stddev, 0.1);
}

TEST(DiscreteTest, FollowsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(weights.size(), 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[SampleDiscrete(rng, weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 0.6, 0.01);
}

TEST(DiscreteLogTest, MatchesLinearVersion) {
  Rng rng(18);
  // exp(log weights) = {1, e, e^2}; probabilities ∝ those.
  const std::vector<double> log_weights = {0.0, 1.0, 2.0};
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[SampleDiscreteLog(rng, log_weights)];
  }
  const double z = 1.0 + std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 1.0 / z, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), std::exp(2.0) / z,
              0.01);
}

TEST(DiscreteLogTest, HandlesHugeMagnitudes) {
  Rng rng(19);
  // Without max-subtraction these would overflow/underflow.
  const std::vector<double> log_weights = {5000.0, 5001.0, -5000.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[SampleDiscreteLog(rng, log_weights)];
  }
  EXPECT_EQ(counts[2], 0);
  // P(index 1) = e/(1+e) ≈ 0.731.
  EXPECT_NEAR(counts[1] / 20000.0, 0.731, 0.02);
}

TEST(DistributionsDeathTest, InvalidArgumentsAbort) {
  Rng rng(1);
  EXPECT_DEATH(SampleLaplace(rng, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(SampleExponential(rng, -1.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(SampleGeometric(rng, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(SampleDiscrete(rng, {}), "PRIVTREE_CHECK");
  EXPECT_DEATH(SampleDiscrete(rng, {0.0, 0.0}), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
