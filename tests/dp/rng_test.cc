#include "dp/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace privtree {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(1, 10), b(1, 11);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextOpenDoubleStrictlyInside) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextOpenDouble();
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(5);
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / kSamples, 0.5, 0.005);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(21);
  constexpr std::uint64_t kBound = 8;
  std::vector<int> counts(kBound, 0);
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBound, kSamples * 0.01);
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.Next() != child2.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.Next(), fb.Next());
}

TEST(RngTest, BitsAreBalanced) {
  Rng rng(3);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    ones += __builtin_popcountll(rng.Next());
  }
  // Expect about 32 bits set per 64-bit word.
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, 32.0, 0.3);
}

TEST(RngDeathTest, BoundedZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextBounded(0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
