#include "dp/discrete_laplace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(DiscreteLaplaceTest, PmfSumsToOne) {
  const double alpha = 0.7;
  double total = 0.0;
  for (std::int64_t z = -200; z <= 200; ++z) {
    total += DiscreteLaplacePmf(z, alpha);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DiscreteLaplaceTest, PmfIsSymmetric) {
  for (std::int64_t z : {1, 3, 10}) {
    EXPECT_DOUBLE_EQ(DiscreteLaplacePmf(z, 0.5),
                     DiscreteLaplacePmf(-z, 0.5));
  }
}

TEST(DiscreteLaplaceTest, SampleFrequenciesMatchPmf) {
  Rng rng(1);
  const double alpha = 0.6;
  std::map<std::int64_t, int> counts;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[SampleDiscreteLaplace(rng, alpha)];
  }
  for (std::int64_t z = -3; z <= 3; ++z) {
    const double expected = DiscreteLaplacePmf(z, alpha);
    const double observed =
        static_cast<double>(counts[z]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.005) << "z=" << z;
  }
}

TEST(DiscreteLaplaceTest, SampleIsZeroMean) {
  Rng rng(2);
  double total = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(SampleDiscreteLaplace(rng, 0.8));
  }
  EXPECT_NEAR(total / kSamples, 0.0, 0.1);
}

TEST(GeometricMechanismTest, PrivacyRatioIsBounded) {
  // For neighboring counts v and v+1, Pr[out = o | v] / Pr[out = o | v+1]
  // must be within e^ε.  Verify via the PMF identity: the ratio of
  // adjacent masses is exactly alpha^{±1} = e^{∓ε}.
  const double epsilon = 0.5;
  const double alpha = std::exp(-epsilon);
  for (std::int64_t z : {-5, -1, 0, 1, 5}) {
    const double ratio = DiscreteLaplacePmf(z, alpha) /
                         DiscreteLaplacePmf(z - 1, alpha);
    EXPECT_LE(ratio, std::exp(epsilon) + 1e-12);
    EXPECT_GE(ratio, std::exp(-epsilon) - 1e-12);
  }
}

TEST(GeometricMechanismTest, IsUnbiasedAroundValue) {
  Rng rng(3);
  double total = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    total += static_cast<double>(GeometricMechanism(42, 1.0, 1.0, rng));
  }
  EXPECT_NEAR(total / kSamples, 42.0, 0.1);
}

TEST(GeometricMechanismTest, NoiseScalesWithSensitivity) {
  Rng rng(4);
  double spread_small = 0.0, spread_big = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    spread_small += std::abs(
        static_cast<double>(GeometricMechanism(0, 1.0, 1.0, rng)));
    spread_big += std::abs(
        static_cast<double>(GeometricMechanism(0, 1.0, 10.0, rng)));
  }
  EXPECT_GT(spread_big, 5.0 * spread_small);
}

TEST(DiscreteLaplaceDeathTest, InvalidAlphaAborts) {
  Rng rng(5);
  EXPECT_DEATH(SampleDiscreteLaplace(rng, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(SampleDiscreteLaplace(rng, 1.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(DiscreteLaplacePmf(0, 1.5), "PRIVTREE_CHECK");
  EXPECT_DEATH(GeometricMechanism(0, 0.0, 1.0, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
