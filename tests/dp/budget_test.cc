#include "dp/budget.h"

#include <gtest/gtest.h>

namespace privtree {
namespace {

TEST(BudgetTest, TracksSpending) {
  PrivacyBudget budget(1.0);
  EXPECT_DOUBLE_EQ(budget.total(), 1.0);
  EXPECT_DOUBLE_EQ(budget.remaining(), 1.0);
  budget.Spend(0.3);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.3);
  EXPECT_NEAR(budget.remaining(), 0.7, 1e-12);
}

TEST(BudgetTest, SpendFractionReturnsAmount) {
  PrivacyBudget budget(2.0);
  EXPECT_DOUBLE_EQ(budget.SpendFraction(0.25), 0.5);
  EXPECT_NEAR(budget.remaining(), 1.5, 1e-12);
}

TEST(BudgetTest, SpendRemainingDrains) {
  PrivacyBudget budget(1.0);
  budget.Spend(0.4);
  const double rest = budget.SpendRemaining();
  EXPECT_NEAR(rest, 0.6, 1e-12);
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(BudgetTest, HalfPlusHalfIsExactlyFine) {
  // The paper's ε/2 + ε/2 split must not trip the over-spend check even
  // with floating-point round-off.
  PrivacyBudget budget(0.1);
  budget.SpendFraction(0.5);
  budget.SpendFraction(0.5);
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(BudgetTest, ManySmallFractionsSumToTotal) {
  PrivacyBudget budget(1.6);
  for (int i = 0; i < 10; ++i) budget.SpendFraction(0.1);
  EXPECT_NEAR(budget.spent(), 1.6, 1e-9);
}

TEST(BudgetTest, SpendRemainingAfterFractionalSplitsDrainsExactly) {
  // 1/3 is not representable in binary, so two SpendFraction(1/3) calls
  // leave a remainder with round-off; SpendRemaining must still drain the
  // budget to exactly zero without tripping the over-spend check.
  PrivacyBudget budget(0.7);
  budget.SpendFraction(1.0 / 3.0);
  budget.SpendFraction(1.0 / 3.0);
  const double rest = budget.SpendRemaining();
  EXPECT_GT(rest, 0.0);
  EXPECT_DOUBLE_EQ(budget.remaining(), 0.0);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.7);
}

TEST(BudgetTest, SpendFractionOfEverythingIsExact) {
  PrivacyBudget budget(0.3);  // 0.3 is not exactly representable.
  EXPECT_DOUBLE_EQ(budget.SpendFraction(1.0), 0.3);
  EXPECT_DOUBLE_EQ(budget.remaining(), 0.0);
}

TEST(BudgetTest, RoundOffWithinToleranceClampsToTotal) {
  // Spending the remainder plus a sub-tolerance round-off error must be
  // accepted and clamp `spent` to the total rather than exceeding it.
  PrivacyBudget budget(1.0);
  budget.Spend(0.4);
  budget.Spend(0.6 + 1e-12);
  EXPECT_DOUBLE_EQ(budget.spent(), 1.0);
  EXPECT_DOUBLE_EQ(budget.remaining(), 0.0);
}

TEST(BudgetTest, SevenWayEqualSplitDrains) {
  PrivacyBudget budget(1.6);
  for (int i = 0; i < 6; ++i) budget.SpendFraction(1.0 / 7.0);
  budget.SpendRemaining();
  EXPECT_DOUBLE_EQ(budget.remaining(), 0.0);
}

TEST(BudgetDeathTest, OverspendAborts) {
  PrivacyBudget budget(1.0);
  budget.Spend(0.9);
  EXPECT_DEATH(budget.Spend(0.2), "PRIVTREE_CHECK");
}

TEST(BudgetDeathTest, NonPositiveTotalAborts) {
  EXPECT_DEATH(PrivacyBudget(0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivacyBudget(-1.0), "PRIVTREE_CHECK");
}

TEST(BudgetDeathTest, NonPositiveSpendAborts) {
  PrivacyBudget budget(1.0);
  EXPECT_DEATH(budget.Spend(0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(budget.SpendFraction(1.5), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
