#include "dp/budget.h"

#include <gtest/gtest.h>

namespace privtree {
namespace {

TEST(BudgetTest, TracksSpending) {
  PrivacyBudget budget(1.0);
  EXPECT_DOUBLE_EQ(budget.total(), 1.0);
  EXPECT_DOUBLE_EQ(budget.remaining(), 1.0);
  budget.Spend(0.3);
  EXPECT_DOUBLE_EQ(budget.spent(), 0.3);
  EXPECT_NEAR(budget.remaining(), 0.7, 1e-12);
}

TEST(BudgetTest, SpendFractionReturnsAmount) {
  PrivacyBudget budget(2.0);
  EXPECT_DOUBLE_EQ(budget.SpendFraction(0.25), 0.5);
  EXPECT_NEAR(budget.remaining(), 1.5, 1e-12);
}

TEST(BudgetTest, SpendRemainingDrains) {
  PrivacyBudget budget(1.0);
  budget.Spend(0.4);
  const double rest = budget.SpendRemaining();
  EXPECT_NEAR(rest, 0.6, 1e-12);
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(BudgetTest, HalfPlusHalfIsExactlyFine) {
  // The paper's ε/2 + ε/2 split must not trip the over-spend check even
  // with floating-point round-off.
  PrivacyBudget budget(0.1);
  budget.SpendFraction(0.5);
  budget.SpendFraction(0.5);
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(BudgetTest, ManySmallFractionsSumToTotal) {
  PrivacyBudget budget(1.6);
  for (int i = 0; i < 10; ++i) budget.SpendFraction(0.1);
  EXPECT_NEAR(budget.spent(), 1.6, 1e-9);
}

TEST(BudgetDeathTest, OverspendAborts) {
  PrivacyBudget budget(1.0);
  budget.Spend(0.9);
  EXPECT_DEATH(budget.Spend(0.2), "PRIVTREE_CHECK");
}

TEST(BudgetDeathTest, NonPositiveTotalAborts) {
  EXPECT_DEATH(PrivacyBudget(0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivacyBudget(-1.0), "PRIVTREE_CHECK");
}

TEST(BudgetDeathTest, NonPositiveSpendAborts) {
  PrivacyBudget budget(1.0);
  EXPECT_DEATH(budget.Spend(0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(budget.SpendFraction(1.5), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
