// Goodness-of-fit tests of the samplers: binned chi-square statistics
// against the analytic distributions, with thresholds set at roughly the
// 99.9th percentile of the chi-square distribution so the tests are
// deterministic-in-practice under fixed seeds yet sensitive to real
// sampler defects.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/distributions.h"
#include "dp/rng.h"

namespace privtree {
namespace {

/// Chi-square statistic of observed counts vs expected probabilities.
double ChiSquare(const std::vector<double>& observed,
                 const std::vector<double>& expected_probability,
                 double total) {
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probability[i] * total;
    if (expected < 5.0) continue;  // Standard validity rule.
    const double diff = observed[i] - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(StatisticalTest, UniformDoubleChiSquare) {
  Rng rng(0x57a7);
  constexpr int kBins = 50;
  constexpr int kSamples = 500000;
  std::vector<double> observed(kBins, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    const int bin = static_cast<int>(rng.NextDouble() * kBins);
    observed[static_cast<std::size_t>(std::min(bin, kBins - 1))] += 1.0;
  }
  const std::vector<double> probabilities(kBins, 1.0 / kBins);
  // 49 dof: 99.9th percentile ≈ 85.4.
  EXPECT_LT(ChiSquare(observed, probabilities, kSamples), 95.0);
}

TEST(StatisticalTest, LaplaceChiSquare) {
  Rng rng(0x57a8);
  const double lambda = 1.3;
  constexpr int kBins = 60;
  constexpr double kLo = -8.0, kHi = 8.0;
  constexpr int kSamples = 500000;
  std::vector<double> observed(kBins + 2, 0.0);  // Two tail bins.
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleLaplace(rng, lambda);
    if (x < kLo) {
      observed[0] += 1.0;
    } else if (x >= kHi) {
      observed[kBins + 1] += 1.0;
    } else {
      const int bin =
          1 + static_cast<int>((x - kLo) / (kHi - kLo) * kBins);
      observed[static_cast<std::size_t>(std::min(bin, kBins))] += 1.0;
    }
  }
  std::vector<double> probabilities(kBins + 2, 0.0);
  probabilities[0] = LaplaceCdf(kLo, lambda);
  probabilities[kBins + 1] = LaplaceSf(kHi, lambda);
  for (int b = 0; b < kBins; ++b) {
    const double left = kLo + (kHi - kLo) * b / kBins;
    const double right = kLo + (kHi - kLo) * (b + 1) / kBins;
    probabilities[static_cast<std::size_t>(b + 1)] =
        LaplaceCdf(right, lambda) - LaplaceCdf(left, lambda);
  }
  // 61 dof: 99.9th percentile ≈ 99.6.
  EXPECT_LT(ChiSquare(observed, probabilities, kSamples), 110.0);
}

TEST(StatisticalTest, ExponentialChiSquare) {
  Rng rng(0x57a9);
  const double rate = 2.0;
  constexpr int kBins = 40;
  constexpr double kHi = 5.0;
  constexpr int kSamples = 400000;
  std::vector<double> observed(kBins + 1, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    const double x = SampleExponential(rng, rate);
    if (x >= kHi) {
      observed[kBins] += 1.0;
    } else {
      observed[static_cast<std::size_t>(x / kHi * kBins)] += 1.0;
    }
  }
  std::vector<double> probabilities(kBins + 1, 0.0);
  for (int b = 0; b < kBins; ++b) {
    const double left = kHi * b / kBins;
    const double right = kHi * (b + 1) / kBins;
    probabilities[static_cast<std::size_t>(b)] =
        std::exp(-rate * left) - std::exp(-rate * right);
  }
  probabilities[kBins] = std::exp(-rate * kHi);
  EXPECT_LT(ChiSquare(observed, probabilities, kSamples), 90.0);
}

TEST(StatisticalTest, GeometricChiSquare) {
  Rng rng(0x57aa);
  const double p = 0.35;
  constexpr int kMax = 25;
  constexpr int kSamples = 400000;
  std::vector<double> observed(kMax + 1, 0.0);
  for (int i = 0; i < kSamples; ++i) {
    const auto x = SampleGeometric(rng, p);
    observed[static_cast<std::size_t>(std::min<std::uint64_t>(x, kMax))] +=
        1.0;
  }
  std::vector<double> probabilities(kMax + 1, 0.0);
  double tail = 1.0;
  for (int k = 0; k < kMax; ++k) {
    probabilities[static_cast<std::size_t>(k)] =
        p * std::pow(1.0 - p, static_cast<double>(k));
    tail -= probabilities[static_cast<std::size_t>(k)];
  }
  probabilities[kMax] = tail;
  EXPECT_LT(ChiSquare(observed, probabilities, kSamples), 65.0);
}

TEST(StatisticalTest, LaplaceSamplesAreSerriallyUncorrelated) {
  Rng rng(0x57ab);
  constexpr int kSamples = 300000;
  double previous = SampleLaplace(rng, 1.0);
  double covariance = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double current = SampleLaplace(rng, 1.0);
    covariance += previous * current;
    previous = current;
  }
  // Var = 2λ² = 2; the lag-1 autocorrelation estimate should be ~0 with
  // sd ≈ 1/sqrt(n).
  EXPECT_NEAR(covariance / kSamples / 2.0, 0.0, 0.01);
}

TEST(StatisticalTest, NormalChiSquareCoarse) {
  Rng rng(0x57ac);
  constexpr int kSamples = 300000;
  // Check the 68-95-99.7 rule instead of a fine-binned fit.
  int within1 = 0, within2 = 0, within3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = std::abs(SampleNormal(rng));
    within1 += x < 1.0;
    within2 += x < 2.0;
    within3 += x < 3.0;
  }
  EXPECT_NEAR(static_cast<double>(within1) / kSamples, 0.6827, 0.004);
  EXPECT_NEAR(static_cast<double>(within2) / kSamples, 0.9545, 0.002);
  EXPECT_NEAR(static_cast<double>(within3) / kSamples, 0.9973, 0.001);
}

}  // namespace
}  // namespace privtree
