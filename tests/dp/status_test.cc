#include "dp/status.h"

#include <gtest/gtest.h>

namespace privtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad epsilon");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
