#include "dp/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

std::vector<double> Ramp(std::size_t n) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  return values;
}

TEST(PrivateQuantileTest, HighEpsilonIsAccurate) {
  Rng rng(1);
  const auto values = Ramp(1000);
  double total = 0.0;
  constexpr int kReps = 50;
  for (int i = 0; i < kReps; ++i) {
    total += PrivateQuantile(values, 0.5, 0.0, 1000.0, 50.0, rng);
  }
  EXPECT_NEAR(total / kReps, 500.0, 25.0);
}

TEST(PrivateQuantileTest, NinetyFifthPercentile) {
  // The paper's use case: choosing l⊤ as a private ~95% quantile of
  // sequence lengths.
  Rng rng(2);
  const auto values = Ramp(2000);
  double total = 0.0;
  constexpr int kReps = 50;
  for (int i = 0; i < kReps; ++i) {
    total += PrivateQuantile(values, 0.95, 0.0, 2000.0, 20.0, rng);
  }
  EXPECT_NEAR(total / kReps, 1900.0, 60.0);
}

TEST(PrivateQuantileTest, StaysWithinBounds) {
  Rng rng(3);
  const std::vector<double> values = {5.0, 6.0, 7.0};
  for (int i = 0; i < 200; ++i) {
    const double q = PrivateQuantile(values, 0.5, 0.0, 10.0, 0.1, rng);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 10.0);
  }
}

TEST(PrivateQuantileTest, ClampsOutOfRangeValues) {
  Rng rng(4);
  const std::vector<double> values = {-100.0, 0.5, 200.0};
  for (int i = 0; i < 100; ++i) {
    const double q = PrivateQuantile(values, 0.5, 0.0, 1.0, 1.0, rng);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(PrivateQuantileTest, TinyEpsilonIsNearUniform) {
  Rng rng(5);
  // With ε → 0 the mechanism samples ∝ interval length, i.e. uniformly
  // over [lo, hi] regardless of the data.
  const std::vector<double> values(100, 0.9);
  double total = 0.0;
  constexpr int kReps = 4000;
  for (int i = 0; i < kReps; ++i) {
    total += PrivateQuantile(values, 0.5, 0.0, 1.0, 1e-9, rng);
  }
  EXPECT_NEAR(total / kReps, 0.5, 0.03);
}

TEST(PrivateQuantileTest, EmptyDataFallsBackToUniform) {
  Rng rng(6);
  const std::vector<double> values;
  const double q = PrivateQuantile(values, 0.5, 2.0, 4.0, 1.0, rng);
  EXPECT_GE(q, 2.0);
  EXPECT_LE(q, 4.0);
}

TEST(PrivateQuantileDeathTest, InvalidArgumentsAbort) {
  Rng rng(7);
  const std::vector<double> values = {1.0};
  EXPECT_DEATH(PrivateQuantile(values, 0.0, 0.0, 1.0, 1.0, rng),
               "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivateQuantile(values, 1.0, 0.0, 1.0, 1.0, rng),
               "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivateQuantile(values, 0.5, 1.0, 1.0, 1.0, rng),
               "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivateQuantile(values, 0.5, 0.0, 1.0, 0.0, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
