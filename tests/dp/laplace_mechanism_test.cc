#include "dp/laplace_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  LaplaceMechanism mech(0.5, 3.0);
  EXPECT_DOUBLE_EQ(mech.scale(), 6.0);
  EXPECT_DOUBLE_EQ(mech.epsilon(), 0.5);
  EXPECT_DOUBLE_EQ(mech.sensitivity(), 3.0);
}

TEST(LaplaceMechanismTest, NoiseIsUnbiased) {
  LaplaceMechanism mech(1.0);
  Rng rng(7);
  double total = 0.0;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) total += mech.AddNoise(10.0, rng);
  EXPECT_NEAR(total / kSamples, 10.0, 0.02);
}

TEST(LaplaceMechanismTest, NoiseMagnitudeMatchesScale) {
  LaplaceMechanism mech(0.25);  // scale 4.
  Rng rng(8);
  double abs_total = 0.0;
  constexpr int kSamples = 300000;
  for (int i = 0; i < kSamples; ++i) {
    abs_total += std::abs(mech.AddNoise(0.0, rng));
  }
  EXPECT_NEAR(abs_total / kSamples, 4.0, 0.05);
}

TEST(LaplaceMechanismTest, VectorNoiseIsIndependentPerEntry) {
  LaplaceMechanism mech(1.0);
  Rng rng(9);
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> noisy = mech.AddNoise(values, rng);
  ASSERT_EQ(noisy.size(), 3u);
  // Entries keep their center but the added noise differs.
  EXPECT_NE(noisy[0] - values[0], noisy[1] - values[1]);
}

TEST(LaplaceMechanismTest, EmpiricalPrivacyLossIsBounded) {
  // For neighboring values v and v+1 (sensitivity 1) the density ratio of
  // the outputs must be within e^ε everywhere.  Estimate with histograms.
  const double epsilon = 1.0;
  LaplaceMechanism mech(epsilon);
  Rng rng(10);
  constexpr int kSamples = 500000;
  constexpr int kBins = 40;
  std::vector<double> histogram_a(kBins, 0.0), histogram_b(kBins, 0.0);
  const auto bin_of = [&](double x) {
    const int b = static_cast<int>(std::floor((x + 5.0) / 10.0 * kBins));
    return std::clamp(b, 0, kBins - 1);
  };
  for (int i = 0; i < kSamples; ++i) {
    histogram_a[bin_of(mech.AddNoise(0.0, rng))] += 1.0;
    histogram_b[bin_of(mech.AddNoise(1.0, rng))] += 1.0;
  }
  for (int b = 0; b < kBins; ++b) {
    if (histogram_a[b] < 500 || histogram_b[b] < 500) continue;  // Noise.
    const double ratio = histogram_a[b] / histogram_b[b];
    EXPECT_LT(ratio, std::exp(epsilon) * 1.15);
    EXPECT_GT(ratio, std::exp(-epsilon) / 1.15);
  }
}

TEST(LaplaceMechanismDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(LaplaceMechanism(0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(LaplaceMechanism(1.0, 0.0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
