#include "dp/exponential_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

TEST(ExponentialMechanismTest, PrefersHighQuality) {
  Rng rng(1);
  const std::vector<double> qualities = {0.0, 10.0, 0.0};
  int wins = 0;
  for (int i = 0; i < 2000; ++i) {
    if (ExponentialMechanismSelect(qualities, 2.0, 1.0, rng) == 1) ++wins;
  }
  EXPECT_GT(wins, 1950);
}

TEST(ExponentialMechanismTest, SelectionProbabilitiesMatchTheory) {
  Rng rng(2);
  const std::vector<double> qualities = {0.0, 1.0};
  const double epsilon = 2.0, sensitivity = 1.0;
  // P(1)/P(0) = exp(ε·Δu/(2S)) = e.
  int ones = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    ones += ExponentialMechanismSelect(qualities, epsilon, sensitivity, rng)
                == 1;
  }
  const double expected = std::exp(1.0) / (1.0 + std::exp(1.0));
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, expected, 0.005);
}

TEST(ExponentialMechanismTest, LowEpsilonIsNearUniform) {
  Rng rng(3);
  const std::vector<double> qualities = {0.0, 5.0};
  int ones = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ones += ExponentialMechanismSelect(qualities, 1e-6, 1.0, rng) == 1;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, 0.5, 0.01);
}

TEST(ExponentialMechanismTest, SensitivityScalesSelectivity) {
  Rng rng(4);
  const std::vector<double> qualities = {0.0, 10.0};
  // With S = 10, the gap collapses to exp(ε·10/(2·10)) = e^(ε/2).
  int ones = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    ones += ExponentialMechanismSelect(qualities, 1.0, 10.0, rng) == 1;
  }
  const double expected = std::exp(0.5) / (1.0 + std::exp(0.5));
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, expected, 0.005);
}

TEST(ExponentialMechanismTest, ExtremeQualitiesAreStable) {
  Rng rng(5);
  const std::vector<double> qualities = {1e6, 1e6 + 1.0};
  // Must not overflow; relative preference still e^(ε/2)·... finite.
  const std::size_t selected =
      ExponentialMechanismSelect(qualities, 1.0, 1.0, rng);
  EXPECT_LT(selected, 2u);
}

TEST(ExponentialMechanismDeathTest, InvalidInputsAbort) {
  Rng rng(6);
  EXPECT_DEATH(ExponentialMechanismSelect({}, 1.0, 1.0, rng),
               "PRIVTREE_CHECK");
  EXPECT_DEATH(ExponentialMechanismSelect({1.0}, 0.0, 1.0, rng),
               "PRIVTREE_CHECK");
  EXPECT_DEATH(ExponentialMechanismSelect({1.0}, 1.0, 0.0, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
