// Tests of the ρ(x) analysis (Section 3.2, Lemma 3.1): these validate the
// mathematical facts the PrivTree privacy proof rests on.
#include "dp/rho.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privtree {
namespace {

TEST(RhoTest, ConstantBelowThreshold) {
  // Equation (3): for x <= θ, ρ(x) = 1/λ exactly.
  const double lambda = 2.0, theta = 0.0;
  for (double x : {-10.0, -1.0, 0.0}) {
    EXPECT_NEAR(Rho(x, lambda, theta), 1.0 / lambda, 1e-12);
  }
}

TEST(RhoTest, DecaysExponentiallyAboveThresholdPlusOne) {
  // Figure 2: for x >= θ+1 the cost decays roughly by e^{-1/λ} per unit.
  const double lambda = 1.0, theta = 0.0;
  const double r2 = Rho(2.0, lambda, theta);
  const double r3 = Rho(3.0, lambda, theta);
  const double r6 = Rho(6.0, lambda, theta);
  EXPECT_LT(r3, r2);
  EXPECT_LT(r6, r3);
  // Deep in the tail the decay ratio approaches e^{-1/λ}.
  EXPECT_NEAR(Rho(11.0, lambda, theta) / Rho(10.0, lambda, theta),
              std::exp(-1.0), 0.02);
}

TEST(RhoTest, UpperBoundHolds) {
  // Lemma 3.1: ρ(x) <= ρ⊤(x) for all x.
  for (double lambda : {0.5, 1.0, 3.0}) {
    for (double theta : {0.0, 5.0}) {
      for (double x = theta - 10.0; x <= theta + 20.0; x += 0.1) {
        EXPECT_LE(Rho(x, lambda, theta),
                  RhoUpperBound(x, lambda, theta) + 1e-12)
            << "x=" << x << " lambda=" << lambda << " theta=" << theta;
      }
    }
  }
}

TEST(RhoTest, UpperBoundIsTightAtThresholdPlusOne) {
  // ρ⊤(θ+1) = 1/λ, and ρ(θ+1) is within a constant factor of it.
  const double lambda = 1.5, theta = 0.0;
  EXPECT_NEAR(RhoUpperBound(theta + 1.0, lambda, theta), 1.0 / lambda,
              1e-12);
  EXPECT_GT(Rho(theta + 1.0, lambda, theta),
            0.3 * RhoUpperBound(theta + 1.0, lambda, theta));
}

TEST(RhoTest, UpperBoundPiecewiseForm) {
  const double lambda = 2.0, theta = 1.0;
  EXPECT_DOUBLE_EQ(RhoUpperBound(theta + 0.99, lambda, theta), 1.0 / lambda);
  EXPECT_NEAR(RhoUpperBound(theta + 3.0, lambda, theta),
              std::exp(-2.0 / lambda) / lambda, 1e-12);
}

TEST(RhoTest, RhoIsNonNegative) {
  for (double x = -5.0; x <= 15.0; x += 0.25) {
    EXPECT_GE(Rho(x, 1.0, 0.0), 0.0);
  }
}

TEST(CostBoundTest, MatchesClosedForm) {
  // Section 3.3: Σ ρ ≤ (1/λ)(2e^γ − 1)/(e^γ − 1).
  const double lambda = 3.0, delta = lambda * std::log(4.0);  // γ = ln 4.
  const double gamma = delta / lambda;
  const double expected =
      (2.0 * std::exp(gamma) - 1.0) / (std::exp(gamma) - 1.0) / lambda;
  EXPECT_NEAR(PrivTreeCostBound(lambda, delta), expected, 1e-12);
}

TEST(CostBoundTest, GeometricSeriesDominatesTelescopedCosts) {
  // Simulate the worst-case path of the proof: b(v_i) decreasing by exactly
  // δ per level from a large value down to θ−δ.  The summed ρ⊤ must stay
  // below the closed-form bound.
  const double lambda = 1.0, theta = 0.0;
  const double delta = lambda * std::log(4.0);
  double total = 0.0;
  // b(v_m) >= θ−δ+1, b(v_{i-1}) = b(v_i) + δ.
  double b = theta - delta + 1.0;
  for (int i = 0; i < 200; ++i) {
    total += RhoUpperBound(b, lambda, theta);
    b += delta;
  }
  EXPECT_LE(total, PrivTreeCostBound(lambda, delta) + 1e-9);
}

TEST(CostBoundTest, CorollaryOneEpsilon) {
  // Corollary 1: with λ = (2β−1)/(β−1)/ε and δ = λ·ln β, the guaranteed
  // privacy cost equals ε.
  const double beta = 4.0, epsilon = 0.8;
  const double lambda = (2.0 * beta - 1.0) / (beta - 1.0) / epsilon;
  const double delta = lambda * std::log(beta);
  EXPECT_NEAR(PrivTreeCostBound(lambda, delta), epsilon, 1e-12);
}

TEST(RhoDeathTest, NonPositiveLambdaAborts) {
  EXPECT_DEATH(Rho(0.0, 0.0, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivTreeCostBound(1.0, 0.0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
