#include "seq/pst_privtree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "seq/pst.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

/// A strongly structured language: sequences of the form (012)^k.
SequenceDataset CyclicData(std::size_t n, Rng& rng) {
  SequenceDataset data(3);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t cycles = 1 + rng.NextBounded(4);
    for (std::size_t c = 0; c < cycles; ++c) {
      s.push_back(0);
      s.push_back(1);
      s.push_back(2);
    }
    data.Add(s);
  }
  return data;
}

TEST(PrivatePstTest, ProducesAValidModel) {
  Rng rng(1);
  const SequenceDataset data = CyclicData(20000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 1.0, options, rng);
  EXPECT_GE(result.model.size(), 1u);
  // Every internal node has β = 4 children.
  for (std::size_t id = 0; id < result.model.size(); ++id) {
    const auto& node = result.model.node(static_cast<NodeId>(id));
    if (!node.children.empty()) {
      EXPECT_EQ(node.children.size(), 4u);
    }
  }
}

TEST(PrivatePstTest, RootHistogramApproximatesSymbolCounts) {
  Rng rng(2);
  const SequenceDataset data = CyclicData(50000, rng).Truncate(15);
  // Exact symbol counts (0, 1 and 2 appear equally often).
  double exact0 = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (Symbol x : data.sequence(i)) exact0 += (x == 0) ? 1.0 : 0.0;
  }
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 1.6, options, rng);
  EXPECT_NEAR(result.model.InitialCount(0), exact0, 0.15 * exact0);
}

TEST(PrivatePstTest, HistsAreNonNegativeAndConsistent) {
  Rng rng(3);
  const SequenceDataset data = CyclicData(5000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 0.5, options, rng);
  for (std::size_t id = 0; id < result.model.size(); ++id) {
    const auto& node = result.model.node(static_cast<NodeId>(id));
    for (double h : node.hist) EXPECT_GE(h, 0.0);
  }
}

TEST(PrivatePstTest, DollarNodesNeverSplit) {
  Rng rng(4);
  const SequenceDataset data = CyclicData(50000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 1.6, options, rng);
  for (std::size_t id = 0; id < result.model.size(); ++id) {
    const auto& node = result.model.node(static_cast<NodeId>(id));
    if (!node.predictor.empty() &&
        node.predictor.front() == result.model.dollar()) {
      EXPECT_TRUE(node.children.empty());
    }
  }
}

TEST(PrivatePstTest, PredictorLengthRespectsLTop) {
  Rng rng(5);
  const SequenceDataset data = CyclicData(50000, rng).Truncate(6);
  PrivatePstOptions options;
  options.l_top = 6;
  const auto result = BuildPrivatePst(data, 1.6, options, rng);
  for (std::size_t id = 0; id < result.model.size(); ++id) {
    EXPECT_LE(
        result.model.node(static_cast<NodeId>(id)).predictor.size(), 7u);
  }
}

TEST(PrivatePstTest, HighEpsilonLearnsTheCycle) {
  Rng rng(6);
  const SequenceDataset data = CyclicData(100000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 1.6, options, rng);
  // Frequency of the legal trigram "012" must dwarf the illegal "021".
  const std::vector<Symbol> legal = {0, 1, 2};
  const std::vector<Symbol> illegal = {0, 2, 1};
  const double legal_freq = result.model.EstimateStringFrequency(legal);
  const double illegal_freq = result.model.EstimateStringFrequency(illegal);
  EXPECT_GT(legal_freq, 20.0 * std::max(illegal_freq, 1.0));
}

TEST(PrivatePstTest, SampledSequencesFollowTheGrammarAtHighEpsilon) {
  Rng rng(7);
  const SequenceDataset data = CyclicData(100000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  const auto result = BuildPrivatePst(data, 1.6, options, rng);
  int legal_transitions = 0, total_transitions = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = result.model.SampleSequence(rng, 15);
    for (std::size_t j = 1; j < s.size(); ++j) {
      ++total_transitions;
      if (s[j] == (s[j - 1] + 1) % 3) ++legal_transitions;
    }
  }
  ASSERT_GT(total_transitions, 100);
  EXPECT_GT(static_cast<double>(legal_transitions) / total_transitions,
            0.9);
}

TEST(PrivatePstTest, LowEpsilonProducesSmallerTrees) {
  Rng rng(8);
  const SequenceDataset data = CyclicData(30000, rng).Truncate(15);
  PrivatePstOptions options;
  options.l_top = 15;
  double low_total = 0.0, high_total = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    low_total += static_cast<double>(
        BuildPrivatePst(data, 0.05, options, rng).model.size());
    high_total += static_cast<double>(
        BuildPrivatePst(data, 1.6, options, rng).model.size());
  }
  EXPECT_LE(low_total, high_total);
}

TEST(PrivatePstDeathTest, InvalidOptionsAbort) {
  Rng rng(9);
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0, 1});
  PrivatePstOptions options;
  options.l_top = 0;
  EXPECT_DEATH(BuildPrivatePst(data, 1.0, options, rng), "PRIVTREE_CHECK");
  options.l_top = 10;
  EXPECT_DEATH(BuildPrivatePst(data, 0.0, options, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
