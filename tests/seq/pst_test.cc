// PST structure and query tests, anchored to the paper's worked example
// (Figure 3): D = {$B&, $AB&, $AAB&, $AAAB&} over I = {A, B}.
#include "seq/pst.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "seq/exact_pst.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

constexpr Symbol kA = 0;
constexpr Symbol kB = 1;

SequenceDataset Figure3Data() {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{kB});
  data.Add(std::vector<Symbol>{kA, kB});
  data.Add(std::vector<Symbol>{kA, kA, kB});
  data.Add(std::vector<Symbol>{kA, kA, kA, kB});
  return data;
}

/// The exact PST of Figure 3 (split the root and its A-child only),
/// reproduced through the manual building API.
PstModel Figure3Pst() {
  const SequenceDataset data = Figure3Data();
  ExactPstOptions options;
  // Conditions tuned to reproduce the figure: B and $ children have
  // near-deterministic histograms (entropy 0), A is diverse.
  options.min_magnitude = 2.0;
  options.min_entropy = 0.5;
  options.max_depth = 2;
  return BuildExactPst(data, options);
}

TEST(PstFigure3Test, RootHistogramMatchesPaper) {
  const PstModel pst = Figure3Pst();
  // hist(v1) = A: 6 | B: 4 | &: 4.
  const auto& root = pst.node(pst.root());
  EXPECT_DOUBLE_EQ(root.hist[kA], 6.0);
  EXPECT_DOUBLE_EQ(root.hist[kB], 4.0);
  EXPECT_DOUBLE_EQ(root.hist[pst.end_slot()], 4.0);
}

TEST(PstFigure3Test, NodeHistogramsMatchPaper) {
  const PstModel pst = Figure3Pst();
  const auto& root = pst.node(pst.root());
  ASSERT_FALSE(root.children.empty());
  // v3 = A-child: A: 3 | B: 3 | &: 0.
  const auto& v3 = pst.node(root.children[kA]);
  EXPECT_DOUBLE_EQ(v3.hist[kA], 3.0);
  EXPECT_DOUBLE_EQ(v3.hist[kB], 3.0);
  EXPECT_DOUBLE_EQ(v3.hist[pst.end_slot()], 0.0);
  // v4 = B-child: A: 0 | B: 0 | &: 4.
  const auto& v4 = pst.node(root.children[kB]);
  EXPECT_DOUBLE_EQ(v4.hist[pst.end_slot()], 4.0);
  // v2 = $-child: A: 3 | B: 1 | &: 0.
  const auto& v2 = pst.node(root.children[pst.dollar()]);
  EXPECT_DOUBLE_EQ(v2.hist[kA], 3.0);
  EXPECT_DOUBLE_EQ(v2.hist[kB], 1.0);
  // v6 = AA: A: 1 | B: 2 | &: 0.
  ASSERT_FALSE(v3.children.empty());
  const auto& v6 = pst.node(v3.children[kA]);
  EXPECT_DOUBLE_EQ(v6.hist[kA], 1.0);
  EXPECT_DOUBLE_EQ(v6.hist[kB], 2.0);
  // v5 = $A: A: 2 | B: 1 | &: 0.
  const auto& v5 = pst.node(v3.children[pst.dollar()]);
  EXPECT_DOUBLE_EQ(v5.hist[kA], 2.0);
  EXPECT_DOUBLE_EQ(v5.hist[kB], 1.0);
  // v7 = BA: all zero.
  const auto& v7 = pst.node(v3.children[kB]);
  EXPECT_DOUBLE_EQ(v7.hist[kA], 0.0);
  EXPECT_DOUBLE_EQ(v7.hist[kB], 0.0);
  EXPECT_DOUBLE_EQ(v7.hist[pst.end_slot()], 0.0);
}

TEST(PstFigure3Test, StringFrequencyExampleFromPaper) {
  // Section 4.1's worked query: sq = AB → ans = 6 · hist(v3)[B]/‖hist‖ = 3.
  const PstModel pst = Figure3Pst();
  const std::vector<Symbol> query = {kA, kB};
  EXPECT_DOUBLE_EQ(pst.EstimateStringFrequency(query), 3.0);
}

TEST(PstFigure3Test, SingleSymbolFrequencyIsRootCount) {
  const PstModel pst = Figure3Pst();
  EXPECT_DOUBLE_EQ(pst.EstimateStringFrequency(std::vector<Symbol>{kA}),
                   6.0);
  EXPECT_DOUBLE_EQ(pst.EstimateStringFrequency(std::vector<Symbol>{kB}),
                   4.0);
}

TEST(PstFigure3Test, LongestSuffixLookupWalksRightToLeft) {
  const PstModel pst = Figure3Pst();
  const auto& root = pst.node(pst.root());
  // Context "BA": deepest match is the BA node under the A child.
  const std::vector<Symbol> context = {kB, kA};
  const NodeId v = pst.LongestSuffixNode(context, false);
  EXPECT_EQ(v, pst.node(root.children[kA]).children[kB]);
}

TEST(PstFigure3Test, StartOfSequenceUsesDollarChild) {
  const PstModel pst = Figure3Pst();
  const auto& root = pst.node(pst.root());
  // Empty context at the start of a sequence → the $ node.
  const NodeId v = pst.LongestSuffixNode({}, true);
  EXPECT_EQ(v, root.children[pst.dollar()]);
  // Context "A" at the start → the $A node.
  const std::vector<Symbol> context = {kA};
  const NodeId deeper = pst.LongestSuffixNode(context, true);
  EXPECT_EQ(deeper,
            pst.node(root.children[kA]).children[pst.dollar()]);
}

TEST(PstModelTest, SplitNodeCreatesAllChildrenWithPrependedPredictors) {
  PstModel pst(2);
  pst.AddRoot();
  const NodeId first = pst.SplitNode(pst.root());
  ASSERT_EQ(pst.size(), 4u);
  EXPECT_EQ(pst.node(first).predictor, std::vector<Symbol>{kA});
  EXPECT_EQ(pst.node(first + 1).predictor, std::vector<Symbol>{kB});
  EXPECT_EQ(pst.node(first + 2).predictor,
            std::vector<Symbol>{pst.dollar()});
  // Split the A-child: predictors prepend, so its A-child is "AA" and its
  // $-child is "$A".
  const NodeId grand = pst.SplitNode(first);
  EXPECT_EQ(pst.node(grand).predictor, (std::vector<Symbol>{kA, kA}));
  EXPECT_EQ(pst.node(grand + 2).predictor,
            (std::vector<Symbol>{pst.dollar(), kA}));
}

TEST(PstModelTest, SamplingReproducesFigure3Distribution) {
  const PstModel pst = Figure3Pst();
  Rng rng(42);
  int b_first = 0, total = 4000;
  for (int i = 0; i < total; ++i) {
    const auto s = pst.SampleSequence(rng, 50);
    ASSERT_FALSE(s.empty());
    if (s[0] == kB) ++b_first;
    // Every sampled sequence ends in B (B is always followed by &).
    EXPECT_EQ(s.back(), kB);
  }
  // P(first = B) = hist($)[B]/4 = 1/4.
  EXPECT_NEAR(static_cast<double>(b_first) / total, 0.25, 0.03);
}

TEST(PstModelTest, AggregateAndClampRebuildsInternalHists) {
  PstModel pst(2);
  pst.AddRoot();
  const NodeId first = pst.SplitNode(pst.root());
  pst.mutable_node(first).hist = {1.0, -2.0, 3.0};
  pst.mutable_node(first + 1).hist = {4.0, 5.0, -1.0};
  pst.mutable_node(first + 2).hist = {0.0, 0.0, 0.0};
  pst.AggregateAndClampHists();
  // Root = sum of raw leaf hists, then clamp: (5, 3, 2) — the -2 and -1
  // entered the sums before clamping (Section 4.2 order).
  const auto& root_hist = pst.node(pst.root()).hist;
  EXPECT_DOUBLE_EQ(root_hist[0], 5.0);
  EXPECT_DOUBLE_EQ(root_hist[1], 3.0);
  EXPECT_DOUBLE_EQ(root_hist[2], 2.0);
  // Leaves are clamped.
  EXPECT_DOUBLE_EQ(pst.node(first).hist[1], 0.0);
}

TEST(PstScoreTest, MatchesEquation13) {
  EXPECT_DOUBLE_EQ(PstScore({3.0, 3.0, 0.0}), 3.0);   // v3 of Figure 3.
  EXPECT_DOUBLE_EQ(PstScore({0.0, 0.0, 4.0}), 0.0);   // v4: deterministic.
  EXPECT_DOUBLE_EQ(PstScore({6.0, 4.0, 4.0}), 8.0);   // Root.
  EXPECT_DOUBLE_EQ(PstScore({0.0, 0.0, 0.0}), 0.0);
}

TEST(PstScoreTest, IsMonotonicUnderHistDomination) {
  // Lemma 4.1 on the Figure 3 tree: every child's score <= parent's.
  const PstModel pst = Figure3Pst();
  for (std::size_t id = 0; id < pst.size(); ++id) {
    const auto& node = pst.node(static_cast<NodeId>(id));
    for (NodeId child : node.children) {
      EXPECT_LE(PstScore(pst.node(child).hist), PstScore(node.hist))
          << "child " << child;
    }
  }
}

TEST(HistEntropyTest, UniformIsMaximal) {
  const double uniform = HistEntropy({1.0, 1.0, 1.0, 1.0});
  const double skewed = HistEntropy({10.0, 1.0, 1.0, 1.0});
  const double deterministic = HistEntropy({5.0, 0.0, 0.0, 0.0});
  EXPECT_GT(uniform, skewed);
  EXPECT_GT(skewed, deterministic);
  EXPECT_DOUBLE_EQ(deterministic, 0.0);
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
}

TEST(HistEntropyTest, EmptyHistIsZero) {
  EXPECT_DOUBLE_EQ(HistEntropy({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(HistEntropy({}), 0.0);
}

}  // namespace
}  // namespace privtree
