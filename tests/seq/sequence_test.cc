#include "seq/sequence.h"

#include <gtest/gtest.h>

#include <vector>

namespace privtree {
namespace {

TEST(SequenceDatasetTest, AddAndAccess) {
  SequenceDataset data(3);
  const std::vector<Symbol> s1 = {0, 1, 2};
  const std::vector<Symbol> s2 = {2, 2};
  data.Add(s1);
  data.Add(s2, /*has_end=*/false);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.alphabet_size(), 3u);
  EXPECT_EQ(data.length(0), 3u);
  EXPECT_EQ(data.length(1), 2u);
  EXPECT_TRUE(data.has_end(0));
  EXPECT_FALSE(data.has_end(1));
  EXPECT_EQ(data.sequence(0)[2], 2);
  EXPECT_EQ(data.TotalSymbols(), 5u);
}

TEST(SequenceDatasetTest, LengthWithEndCountsTheMarker) {
  SequenceDataset data(2);
  const std::vector<Symbol> s = {0, 1};
  data.Add(s, true);
  data.Add(s, false);
  EXPECT_EQ(data.LengthWithEnd(0), 3u);
  EXPECT_EQ(data.LengthWithEnd(1), 2u);
}

TEST(SequenceDatasetTest, AverageLength) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  data.Add(std::vector<Symbol>{0, 1, 1});
  EXPECT_DOUBLE_EQ(data.AverageLength(), 2.0);
}

TEST(SequenceDatasetTest, LengthHistogram) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  data.Add(std::vector<Symbol>{1});
  data.Add(std::vector<Symbol>{0, 1, 0});
  const auto hist = data.LengthHistogram();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(SequenceDatasetTest, TruncateMatchesPaperSemantics) {
  // "length with & but not $" must not exceed l⊤: a sequence of l symbols
  // with an end marker has length l+1.
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0, 1, 0, 1});  // Length-with-end 5.
  data.Add(std::vector<Symbol>{0, 1});        // Length-with-end 3.
  const SequenceDataset truncated = data.Truncate(4);
  // First sequence: 5 > 4 ⇒ keep 4 symbols, drop &.
  EXPECT_EQ(truncated.length(0), 4u);
  EXPECT_FALSE(truncated.has_end(0));
  // Second sequence: untouched.
  EXPECT_EQ(truncated.length(1), 2u);
  EXPECT_TRUE(truncated.has_end(1));
}

TEST(SequenceDatasetTest, TruncateBoundaryCase) {
  // Exactly l⊤ symbols + & (= l⊤+1) is over the cap: the paper's example
  // $x1..x_{l⊤}& → $x1..x_{l⊤}.
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0, 0, 0});
  const SequenceDataset truncated = data.Truncate(3);
  EXPECT_EQ(truncated.length(0), 3u);
  EXPECT_FALSE(truncated.has_end(0));
}

TEST(SequenceDatasetTest, TruncateCutsLongOpenEndedSequences) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>(10, 1), /*has_end=*/false);
  const SequenceDataset truncated = data.Truncate(4);
  EXPECT_EQ(truncated.length(0), 4u);
  EXPECT_FALSE(truncated.has_end(0));
}

TEST(SequenceDatasetTest, TruncateIsIdempotent) {
  SequenceDataset data(3);
  data.Add(std::vector<Symbol>{0, 1, 2, 0, 1, 2});
  const auto once = data.Truncate(4);
  const auto twice = once.Truncate(4);
  EXPECT_EQ(once.length(0), twice.length(0));
  EXPECT_EQ(once.has_end(0), twice.has_end(0));
}

TEST(SequenceDatasetDeathTest, OutOfAlphabetSymbolAborts) {
  SequenceDataset data(2);
  const std::vector<Symbol> bad = {0, 2};
  EXPECT_DEATH(data.Add(bad), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
