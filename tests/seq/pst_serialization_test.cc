#include "seq/pst_serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/seq_gen.h"
#include "dp/rng.h"
#include "seq/pst_privtree.h"

namespace privtree {
namespace {

class PstSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/privtree_pst_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static PstModel MakeModel(Rng& rng) {
    const SequenceDataset data =
        GenerateMoocLike(5000, rng).Truncate(kMoocLTop);
    PrivatePstOptions options;
    options.l_top = kMoocLTop;
    return BuildPrivatePst(data, 1.0, options, rng).model;
  }

  std::string path_;
};

TEST_F(PstSerializationTest, RoundTripPreservesStructureAndHists) {
  Rng rng(1);
  const PstModel original = MakeModel(rng);
  ASSERT_TRUE(SavePstModel(path_, original).ok());
  auto loaded = LoadPstModel(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.node(static_cast<NodeId>(i));
    const auto& b = loaded.value().node(static_cast<NodeId>(i));
    ASSERT_EQ(a.children, b.children) << i;
    ASSERT_EQ(a.predictor, b.predictor) << i;
    ASSERT_EQ(a.hist, b.hist) << i;
  }
}

TEST_F(PstSerializationTest, RoundTripPreservesQueryAnswers) {
  Rng rng(2);
  const PstModel original = MakeModel(rng);
  ASSERT_TRUE(SavePstModel(path_, original).ok());
  auto loaded = LoadPstModel(path_);
  ASSERT_TRUE(loaded.ok());
  Rng probe(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Symbol> s;
    const std::size_t len = 1 + probe.NextBounded(4);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(probe.NextBounded(7)));
    }
    ASSERT_DOUBLE_EQ(loaded.value().EstimateStringFrequency(s),
                     original.EstimateStringFrequency(s));
  }
}

TEST_F(PstSerializationTest, MissingFileIsIOError) {
  const auto loaded = LoadPstModel("/nonexistent/m.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(PstSerializationTest, BadHeadersAreInvalidArgument) {
  std::ofstream(path_) << "privtree-pst v1\nalphabet 0\nnodes 1\n";
  EXPECT_EQ(LoadPstModel(path_).status().code(),
            StatusCode::kInvalidArgument);
  std::ofstream(path_) << "wrong\n";
  EXPECT_EQ(LoadPstModel(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PstSerializationTest, InconsistentFanoutIsRejected) {
  // 2 symbols ⇒ β = 3; nodes = 3 would mean (3−1) % 3 ≠ 0.
  std::ofstream(path_) << "privtree-pst v1\nalphabet 2\nnodes 3\n"
                       << "-1 1 1 1\n0 1 0 0\n0 0 1 0\n";
  EXPECT_EQ(LoadPstModel(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PstSerializationTest, FracturedSiblingGroupIsRejected) {
  // β = 2 (alphabet 1): nodes 0 (root), then a group claiming two
  // different parents.
  std::ofstream(path_) << "privtree-pst v1\nalphabet 1\nnodes 5\n"
                       << "-1 1 1\n0 1 0\n0 0 1\n1 1 0\n2 0 1\n";
  EXPECT_EQ(LoadPstModel(path_).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace privtree
