// The posting-list machinery against a naive reference implementation:
// for random datasets and random predictor strings, HistOf(RefineAll(...))
// must equal a direct scan counting "occurrences of the predictor followed
// by each symbol".
#include "seq/pst_occurrences.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

/// Naive reference: histogram of symbols following predictor `w` in the
/// padded sequences ($ x1..xl [&]), where w may contain the $ marker
/// (encoded as alphabet_size) as its first symbol.
std::vector<double> NaiveHist(const SequenceDataset& data,
                              const std::vector<Symbol>& w) {
  const Symbol dollar = static_cast<Symbol>(data.alphabet_size());
  std::vector<double> hist(data.alphabet_size() + 1, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    const std::size_t last = s.size() + (data.has_end(i) ? 1 : 0);
    // Padded symbol at position pos (0 = $, 1..l = s, l+1 = &).
    const auto at = [&](std::int64_t pos) -> std::int32_t {
      if (pos < 0) return -1;
      if (pos == 0) return dollar;
      if (pos <= static_cast<std::int64_t>(s.size())) {
        return s[static_cast<std::size_t>(pos - 1)];
      }
      if (pos == static_cast<std::int64_t>(s.size()) + 1 &&
          data.has_end(i)) {
        return static_cast<std::int32_t>(data.alphabet_size());
      }
      return -1;
    };
    for (std::size_t p = 1; p <= last; ++p) {
      bool match = true;
      for (std::size_t j = 0; j < w.size() && match; ++j) {
        const std::int64_t pos =
            static_cast<std::int64_t>(p) - static_cast<std::int64_t>(j) - 1;
        match = at(pos) == static_cast<std::int32_t>(
                               w[w.size() - 1 - j]);
      }
      if (!match) continue;
      const std::int32_t predicted = at(static_cast<std::int64_t>(p));
      if (predicted >= 0) hist[static_cast<std::size_t>(predicted)] += 1.0;
    }
  }
  return hist;
}

SequenceDataset RandomData(std::size_t n, std::size_t alphabet,
                           Rng& rng) {
  SequenceDataset data(alphabet);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t len = 1 + rng.NextBounded(12);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(rng.NextBounded(alphabet)));
    }
    data.Add(s, /*has_end=*/rng.NextDouble() < 0.8);
  }
  return data;
}

class PstOccurrencesFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PstOccurrencesFuzzTest, RefinementMatchesNaiveCounting) {
  Rng rng(GetParam());
  const std::size_t alphabet = 2 + rng.NextBounded(4);
  const SequenceDataset data = RandomData(300, alphabet, rng);
  const PstOccurrences occurrences(data);

  // Walk a random refinement chain up to depth 4, checking every node.
  std::vector<PstPosting> postings = occurrences.RootPostings();
  std::vector<Symbol> predictor;
  EXPECT_EQ(occurrences.HistOf(postings), NaiveHist(data, predictor));
  for (int depth = 0; depth < 4; ++depth) {
    auto children = occurrences.RefineAll(postings, predictor.size());
    ASSERT_EQ(children.size(), alphabet + 1);
    // Check each child against the naive count.
    std::vector<std::vector<PstPosting>> kept;
    for (std::size_t c = 0; c <= alphabet; ++c) {
      std::vector<Symbol> child_predictor;
      child_predictor.push_back(static_cast<Symbol>(c));
      child_predictor.insert(child_predictor.end(), predictor.begin(),
                             predictor.end());
      EXPECT_EQ(occurrences.HistOf(children[c]),
                NaiveHist(data, child_predictor))
          << "depth " << depth << " child " << c;
    }
    // Descend into the most populated non-$ child.
    std::size_t best = 0;
    for (std::size_t c = 1; c < alphabet; ++c) {
      if (children[c].size() > children[best].size()) best = c;
    }
    if (children[best].empty()) break;
    predictor.insert(predictor.begin(), static_cast<Symbol>(best));
    postings = std::move(children[best]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstOccurrencesFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(PstOccurrencesTest, RootPostingsCountAllPredictedPositions) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0, 1});            // 3 positions (incl &).
  data.Add(std::vector<Symbol>{1}, false);        // 1 position (open).
  const PstOccurrences occurrences(data);
  EXPECT_EQ(occurrences.RootPostings().size(), 4u);
}

TEST(PstOccurrencesTest, EmptySequenceContributesOnlyEndMarker) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{});  // Padded: $&.
  const PstOccurrences occurrences(data);
  const auto postings = occurrences.RootPostings();
  ASSERT_EQ(postings.size(), 1u);
  const auto hist = occurrences.HistOf(postings);
  EXPECT_DOUBLE_EQ(hist[occurrences.end_slot()], 1.0);
}

}  // namespace
}  // namespace privtree
