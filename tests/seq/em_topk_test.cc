#include "seq/em_topk.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "seq/sequence.h"
#include "seq/topk.h"

namespace privtree {
namespace {

SequenceDataset SkewedData(std::size_t n) {
  // Symbol 0 dominates massively.
  SequenceDataset data(4);
  for (std::size_t i = 0; i < n; ++i) {
    data.Add(std::vector<Symbol>{0, 0, 0, 0});
  }
  data.Add(std::vector<Symbol>{1});
  data.Add(std::vector<Symbol>{2});
  return data;
}

TEST(EmTopKTest, ReturnsKStrings) {
  Rng rng(1);
  const SequenceDataset data = SkewedData(1000);
  EmTopKOptions options;
  options.l_top = 5;
  const auto result = EmTopKStrings(data, 1.0, 10, options, rng);
  EXPECT_EQ(result.strings.size(), 10u);
}

TEST(EmTopKTest, HighEpsilonFindsTheDominantStrings) {
  Rng rng(2);
  const SequenceDataset data = SkewedData(5000);
  EmTopKOptions options;
  options.l_top = 5;
  const auto result = EmTopKStrings(data, 50.0, 4, options, rng);
  // With a huge budget the mechanism behaves like exact argmax: "0",
  // "00", "000", "0000" are the four most frequent strings.
  const auto exact = ExactTopKStrings(data, 4, 5);
  EXPECT_GE(TopKPrecision(exact, result), 0.75);
}

TEST(EmTopKTest, SelectionsAreDistinct) {
  Rng rng(3);
  const SequenceDataset data = SkewedData(100);
  EmTopKOptions options;
  options.l_top = 5;
  const auto result = EmTopKStrings(data, 2.0, 8, options, rng);
  for (std::size_t i = 0; i < result.strings.size(); ++i) {
    for (std::size_t j = i + 1; j < result.strings.size(); ++j) {
      EXPECT_NE(result.strings[i], result.strings[j]);
    }
  }
}

TEST(EmTopKTest, LowEpsilonDegradesPrecision) {
  // The paper's observation: EM precision collapses as k grows / ε shrinks.
  Rng low_rng(4), high_rng(5);
  const SequenceDataset data = SkewedData(2000);
  const auto exact = ExactTopKStrings(data, 10, 5);
  EmTopKOptions options;
  options.l_top = 5;
  double low_precision = 0.0, high_precision = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    low_precision += TopKPrecision(
        exact, EmTopKStrings(data, 0.05, 10, options, low_rng));
    high_precision += TopKPrecision(
        exact, EmTopKStrings(data, 100.0, 10, options, high_rng));
  }
  EXPECT_LT(low_precision, high_precision);
}

TEST(EmTopKDeathTest, InvalidArgumentsAbort) {
  Rng rng(6);
  const SequenceDataset data = SkewedData(10);
  EmTopKOptions options;
  EXPECT_DEATH(EmTopKStrings(data, 0.0, 5, options, rng), "PRIVTREE_CHECK");
  EXPECT_DEATH(EmTopKStrings(data, 1.0, 0, options, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
