#include "seq/ngram.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

SequenceDataset PatternData(std::size_t n, Rng& rng) {
  // "01" bigrams dominate; occasional "22".
  SequenceDataset data(3);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t pairs = 1 + rng.NextBounded(3);
    for (std::size_t c = 0; c < pairs; ++c) {
      if (rng.NextDouble() < 0.85) {
        s.push_back(0);
        s.push_back(1);
      } else {
        s.push_back(2);
        s.push_back(2);
      }
    }
    data.Add(s);
  }
  return data;
}

TEST(NgramTest, BuildsAndCountsUnigrams) {
  Rng rng(1);
  const SequenceDataset data = PatternData(50000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  const NgramModel model(data, 1.6, options, rng);
  // Symbols 0 and 1 appear equally (one per "01" pair).
  const double c0 = model.InitialCount(0);
  const double c1 = model.InitialCount(1);
  EXPECT_NEAR(c0, c1, 0.2 * c0);
  EXPECT_GT(c0, model.InitialCount(2));
}

TEST(NgramTest, ReleasedGramCountGrowsWithEpsilon) {
  Rng rng(2);
  const SequenceDataset data = PatternData(20000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  double low = 0.0, high = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    low += static_cast<double>(
        NgramModel(data, 0.05, options, rng).ReleasedGramCount());
    high += static_cast<double>(
        NgramModel(data, 1.6, options, rng).ReleasedGramCount());
  }
  EXPECT_LE(low, high);
}

TEST(NgramTest, HeightCapsGramLength) {
  Rng rng(3);
  const SequenceDataset data = PatternData(50000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  options.n_max = 2;
  const NgramModel shallow(data, 1.6, options, rng);
  options.n_max = 5;
  const NgramModel deep(data, 1.6, options, rng);
  // A 5-level tree can release strictly more grams than a 2-level one.
  EXPECT_GE(deep.ReleasedGramCount(), shallow.ReleasedGramCount());
}

TEST(NgramTest, NextDistributionLearnsTheBigram) {
  Rng rng(4);
  const SequenceDataset data = PatternData(100000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  const NgramModel model(data, 1.6, options, rng);
  std::vector<double> dist;
  const std::vector<Symbol> context = {0};
  model.NextDistribution(context, false, &dist);
  ASSERT_EQ(dist.size(), 4u);
  // After a 0, the next symbol is essentially always 1.
  double total = 0.0;
  for (double w : dist) total += w;
  ASSERT_GT(total, 0.0);
  EXPECT_GT(dist[1] / total, 0.9);
}

TEST(NgramTest, StringFrequencyRanksLegalOverIllegal) {
  Rng rng(5);
  const SequenceDataset data = PatternData(100000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  const NgramModel model(data, 1.6, options, rng);
  const std::vector<Symbol> legal = {0, 1};
  const std::vector<Symbol> illegal = {1, 2};
  EXPECT_GT(model.EstimateStringFrequency(legal),
            10.0 * std::max(model.EstimateStringFrequency(illegal), 1.0));
}

TEST(NgramTest, SamplingTerminates) {
  Rng rng(6);
  const SequenceDataset data = PatternData(20000, rng).Truncate(10);
  NgramOptions options;
  options.l_top = 10;
  const NgramModel model(data, 0.8, options, rng);
  for (int i = 0; i < 100; ++i) {
    const auto s = model.SampleSequence(rng, 10);
    EXPECT_LE(s.size(), 10u);
  }
}

TEST(NgramDeathTest, InvalidOptionsAbort) {
  Rng rng(7);
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  NgramOptions options;
  options.n_max = 0;
  EXPECT_DEATH(NgramModel(data, 1.0, options, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
