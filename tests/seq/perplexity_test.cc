#include "seq/perplexity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/seq_gen.h"
#include "dp/rng.h"
#include "seq/exact_pst.h"
#include "seq/pst_privtree.h"

namespace privtree {
namespace {

SequenceDataset Alternating(std::size_t n) {
  SequenceDataset data(2);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    for (int j = 0; j < 6; ++j) s.push_back(static_cast<Symbol>(j % 2));
    data.Add(s);
  }
  return data;
}

TEST(PerplexityTest, PerfectModelApproachesDataEntropy) {
  // Alternating data is near-deterministic given context; an exact PST's
  // per-symbol log-loss should be far below the uniform log(3).
  const SequenceDataset data = Alternating(200);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 4;
  const PstModel pst = BuildExactPst(data, options);
  const double loss = AverageLogLoss(pst, data, 0.01);
  EXPECT_LT(loss, 0.4);
  EXPECT_GT(loss, 0.0);
}

TEST(PerplexityTest, RootOnlyModelIsWorseThanDeepModel) {
  const SequenceDataset data = Alternating(200);
  ExactPstOptions deep_options;
  deep_options.min_magnitude = 1.0;
  deep_options.min_entropy = 0.0;
  deep_options.max_depth = 4;
  const PstModel deep = BuildExactPst(data, deep_options);
  ExactPstOptions shallow_options;
  shallow_options.min_magnitude = 1e12;  // Root only.
  const PstModel shallow = BuildExactPst(data, shallow_options);
  EXPECT_LT(AverageLogLoss(deep, data, 0.01),
            AverageLogLoss(shallow, data, 0.01));
}

TEST(PerplexityTest, PerplexityIsExpOfLoss) {
  const SequenceDataset data = Alternating(50);
  ExactPstOptions options;
  const PstModel pst = BuildExactPst(data, options);
  EXPECT_NEAR(Perplexity(pst, data),
              std::exp(AverageLogLoss(pst, data)), 1e-9);
}

TEST(PerplexityTest, PrivateModelImprovesWithEpsilon) {
  Rng rng(1);
  const SequenceDataset train =
      GenerateMoocLike(20000, rng).Truncate(kMoocLTop);
  const SequenceDataset held_out =
      GenerateMoocLike(3000, rng).Truncate(kMoocLTop);
  PrivatePstOptions options;
  options.l_top = kMoocLTop;
  double low_total = 0.0, high_total = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    low_total += AverageLogLoss(
        BuildPrivatePst(train, 0.05, options, rng).model, held_out);
    high_total += AverageLogLoss(
        BuildPrivatePst(train, 1.6, options, rng).model, held_out);
  }
  EXPECT_LT(high_total, low_total);
}

TEST(PerplexityTest, EmptyDataIsZeroLoss) {
  const SequenceDataset empty(3);
  ExactPstOptions options;
  SequenceDataset tiny(3);
  tiny.Add(std::vector<Symbol>{0});
  const PstModel pst = BuildExactPst(tiny, options);
  EXPECT_DOUBLE_EQ(AverageLogLoss(pst, empty), 0.0);
}

TEST(PerplexityDeathTest, InvalidArgumentsAbort) {
  SequenceDataset data(3);
  data.Add(std::vector<Symbol>{0});
  ExactPstOptions options;
  const PstModel pst = BuildExactPst(data, options);
  EXPECT_DEATH(AverageLogLoss(pst, data, 0.0), "PRIVTREE_CHECK");
  const SequenceDataset other(5);
  EXPECT_DEATH(AverageLogLoss(pst, other), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
