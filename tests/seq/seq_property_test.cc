// Parameterized property tests of the private sequence models across
// datasets and budgets.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "data/seq_gen.h"
#include "dp/rng.h"
#include "seq/ngram.h"
#include "seq/pst_privtree.h"
#include "seq/topk.h"

namespace privtree {
namespace {

struct SeqCase {
  const char* dataset;
  double epsilon;
};

std::string CaseName(const ::testing::TestParamInfo<SeqCase>& info) {
  return std::string(info.param.dataset) + "_eps" +
         std::to_string(static_cast<int>(info.param.epsilon * 100));
}

struct Prepared {
  SequenceDataset truncated;
  std::size_t l_top;
};

Prepared Prepare(const std::string& name) {
  Rng rng(404);
  if (name == "mooc") {
    return {GenerateMoocLike(8000, rng).Truncate(kMoocLTop), kMoocLTop};
  }
  return {GenerateMsnbcLike(15000, rng).Truncate(kMsnbcLTop), kMsnbcLTop};
}

class SequenceModelPropertyTest : public ::testing::TestWithParam<SeqCase> {
};

TEST_P(SequenceModelPropertyTest, PstTreeIsStructurallyValid) {
  const Prepared data = Prepare(GetParam().dataset);
  Rng rng(1);
  PrivatePstOptions options;
  options.l_top = data.l_top;
  const auto result =
      BuildPrivatePst(data.truncated, GetParam().epsilon, options, rng);
  const std::size_t beta = data.truncated.alphabet_size() + 1;
  // Node count ≡ 1 (mod β), every internal node has β children, every
  // histogram entry is non-negative, and $-nodes are leaves.
  EXPECT_EQ((result.model.size() - 1) % beta, 0u);
  for (std::size_t i = 0; i < result.model.size(); ++i) {
    const auto& node = result.model.node(static_cast<NodeId>(i));
    if (!node.children.empty()) {
      EXPECT_EQ(node.children.size(), beta);
    }
    for (double h : node.hist) EXPECT_GE(h, 0.0);
    if (!node.predictor.empty() &&
        node.predictor.front() == result.model.dollar()) {
      EXPECT_TRUE(node.children.empty());
    }
  }
}

TEST_P(SequenceModelPropertyTest, InternalHistsEqualChildSums) {
  const Prepared data = Prepare(GetParam().dataset);
  Rng rng(2);
  PrivatePstOptions options;
  options.l_top = data.l_top;
  const auto result =
      BuildPrivatePst(data.truncated, GetParam().epsilon, options, rng);
  // After clamping, internal hists may deviate from raw child sums only
  // where clamping bit — but since clamping runs after aggregation and
  // sets negatives to 0, the invariant hist[x] <= Σ child hist[x] + slack
  // holds, with equality when no child entry was negative.  We check the
  // weaker monotonic containment.
  for (std::size_t i = 0; i < result.model.size(); ++i) {
    const auto& node = result.model.node(static_cast<NodeId>(i));
    if (node.children.empty()) continue;
    for (std::size_t x = 0; x < node.hist.size(); ++x) {
      double child_sum = 0.0;
      for (NodeId child : node.children) {
        child_sum += result.model.node(child).hist[x];
      }
      EXPECT_LE(node.hist[x], child_sum + 1e-9);
    }
  }
}

TEST_P(SequenceModelPropertyTest, FrequencyEstimatesAreMonotone) {
  // Extending a string never increases its estimated frequency (the basis
  // of the top-k pruning).
  const Prepared data = Prepare(GetParam().dataset);
  Rng rng(3);
  PrivatePstOptions options;
  options.l_top = data.l_top;
  const auto result =
      BuildPrivatePst(data.truncated, GetParam().epsilon, options, rng);
  Rng probe(4);
  const std::size_t alphabet = data.truncated.alphabet_size();
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Symbol> s = {
        static_cast<Symbol>(probe.NextBounded(alphabet))};
    double previous = result.model.EstimateStringFrequency(s);
    for (int extend = 0; extend < 4; ++extend) {
      s.push_back(static_cast<Symbol>(probe.NextBounded(alphabet)));
      const double current = result.model.EstimateStringFrequency(s);
      ASSERT_LE(current, previous + 1e-9);
      previous = current;
    }
  }
}

TEST_P(SequenceModelPropertyTest, SampledSequencesRespectLTop) {
  const Prepared data = Prepare(GetParam().dataset);
  Rng rng(5);
  PrivatePstOptions options;
  options.l_top = data.l_top;
  const auto result =
      BuildPrivatePst(data.truncated, GetParam().epsilon, options, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(result.model.SampleSequence(rng, data.l_top).size(),
              data.l_top);
  }
}

TEST_P(SequenceModelPropertyTest, NgramEstimatesAreMonotoneToo) {
  const Prepared data = Prepare(GetParam().dataset);
  Rng rng(6);
  NgramOptions options;
  options.l_top = data.l_top;
  const NgramModel model(data.truncated, GetParam().epsilon, options, rng);
  Rng probe(7);
  const std::size_t alphabet = data.truncated.alphabet_size();
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Symbol> s = {
        static_cast<Symbol>(probe.NextBounded(alphabet))};
    double previous = model.EstimateStringFrequency(s);
    for (int extend = 0; extend < 3; ++extend) {
      s.push_back(static_cast<Symbol>(probe.NextBounded(alphabet)));
      const double current = model.EstimateStringFrequency(s);
      ASSERT_LE(current, previous + 1e-9);
      previous = current;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndBudgets, SequenceModelPropertyTest,
    ::testing::Values(SeqCase{"mooc", 0.1}, SeqCase{"mooc", 1.6},
                      SeqCase{"msnbc", 0.1}, SeqCase{"msnbc", 1.6}),
    CaseName);

}  // namespace
}  // namespace privtree
