#include "seq/topk.h"

#include <gtest/gtest.h>

#include <vector>

#include "seq/exact_pst.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

TEST(PackStringTest, RoundTrips) {
  const std::vector<Symbol> s = {3, 0, 7, 250};
  EXPECT_EQ(UnpackString(PackString(s)), s);
  const std::vector<Symbol> single = {0};
  EXPECT_EQ(UnpackString(PackString(single)), single);
}

TEST(PackStringTest, DistinguishesLengthFromContent) {
  // "0" vs "00": same bytes, different length tag.
  const std::vector<Symbol> one = {0};
  const std::vector<Symbol> two = {0, 0};
  EXPECT_NE(PackString(one), PackString(two));
}

TEST(CountAllSubstringsTest, CountsOverlappingOccurrences) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0, 0, 0});  // "00" occurs twice (overlap).
  const auto counts = CountAllSubstrings(data, 3);
  const std::vector<Symbol> s0 = {0};
  const std::vector<Symbol> s00 = {0, 0};
  const std::vector<Symbol> s000 = {0, 0, 0};
  EXPECT_DOUBLE_EQ(counts.at(PackString(s0)), 3.0);
  EXPECT_DOUBLE_EQ(counts.at(PackString(s00)), 2.0);
  EXPECT_DOUBLE_EQ(counts.at(PackString(s000)), 1.0);
}

TEST(CountAllSubstringsTest, AggregatesAcrossSequences) {
  SequenceDataset data(3);
  data.Add(std::vector<Symbol>{0, 1});
  data.Add(std::vector<Symbol>{1, 0, 1});
  const auto counts = CountAllSubstrings(data, 2);
  const std::vector<Symbol> s01 = {0, 1};
  EXPECT_DOUBLE_EQ(counts.at(PackString(s01)), 2.0);
}

TEST(ExactTopKTest, RanksByFrequency) {
  SequenceDataset data(3);
  for (int i = 0; i < 10; ++i) data.Add(std::vector<Symbol>{0});
  for (int i = 0; i < 5; ++i) data.Add(std::vector<Symbol>{1});
  data.Add(std::vector<Symbol>{2});
  const auto topk = ExactTopKStrings(data, 2, 3);
  ASSERT_EQ(topk.strings.size(), 2u);
  EXPECT_EQ(topk.strings[0], std::vector<Symbol>{0});
  EXPECT_EQ(topk.strings[1], std::vector<Symbol>{1});
  EXPECT_DOUBLE_EQ(topk.counts[0], 10.0);
}

TEST(ExactTopKTest, KLargerThanCandidates) {
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  const auto topk = ExactTopKStrings(data, 50, 3);
  EXPECT_EQ(topk.strings.size(), 1u);
}

TEST(TopKFromModelTest, MatchesExactOnNoiselessModel) {
  // With an exact PST, the model estimates should rank strings close to
  // the exact counts, giving high precision.
  SequenceDataset data(3);
  // Language: "012" repeated, some "00" runs.
  for (int i = 0; i < 200; ++i) {
    data.Add(std::vector<Symbol>{0, 1, 2, 0, 1, 2});
  }
  for (int i = 0; i < 50; ++i) {
    data.Add(std::vector<Symbol>{0, 0, 0});
  }
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 5;
  const PstModel pst = BuildExactPst(data, options);
  const auto exact = ExactTopKStrings(data, 10, 5);
  const auto model = TopKFromModel(pst, 10, 5);
  // The Markov estimate misorders some near-tied tail strings; the bulk of
  // the true top-10 must still surface.
  EXPECT_GE(TopKPrecision(exact, model), 0.6);
}

TEST(TopKFromModelTest, ReturnsDescendingCounts) {
  SequenceDataset data(2);
  for (int i = 0; i < 30; ++i) data.Add(std::vector<Symbol>{0, 1, 0});
  ExactPstOptions options;
  const PstModel pst = BuildExactPst(data, options);
  const auto topk = TopKFromModel(pst, 5, 3);
  for (std::size_t i = 1; i < topk.counts.size(); ++i) {
    EXPECT_GE(topk.counts[i - 1], topk.counts[i]);
  }
}

TEST(TopKPrecisionTest, ComputesOverlapFraction) {
  TopKStrings exact;
  exact.strings = {{0}, {1}, {2}, {3}};
  TopKStrings found;
  found.strings = {{0}, {2}, {7}, {9}};
  EXPECT_DOUBLE_EQ(TopKPrecision(exact, found), 0.5);
}

TEST(TopKPrecisionTest, EmptyExactIsZero) {
  EXPECT_DOUBLE_EQ(TopKPrecision({}, {}), 0.0);
}

TEST(TopKDeathTest, OverlongStringsAbort) {
  const std::vector<Symbol> too_long(8, 0);
  EXPECT_DEATH(PackString(too_long), "PRIVTREE_CHECK");
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  EXPECT_DEATH(CountAllSubstrings(data, 9), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
