#include "seq/exact_pst.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "seq/pst.h"
#include "seq/sequence.h"

namespace privtree {
namespace {

SequenceDataset RepetitiveData(std::size_t n) {
  // Alternating 0101...; perfectly predictable given one symbol of context.
  SequenceDataset data(2);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    for (int j = 0; j < 8; ++j) s.push_back(static_cast<Symbol>(j % 2));
    data.Add(s);
  }
  return data;
}

TEST(ExactPstTest, ConditionC1StopsDollarNodes) {
  const SequenceDataset data = RepetitiveData(100);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 6;
  const PstModel pst = BuildExactPst(data, options);
  for (std::size_t id = 0; id < pst.size(); ++id) {
    const auto& node = pst.node(static_cast<NodeId>(id));
    if (!node.predictor.empty() && node.predictor.front() == pst.dollar()) {
      EXPECT_TRUE(node.children.empty()) << "split a $-node";
    }
  }
}

TEST(ExactPstTest, ConditionC2StopsLowMagnitudeNodes) {
  const SequenceDataset data = RepetitiveData(10);
  ExactPstOptions options;
  options.min_magnitude = 1000.0;  // Nothing qualifies.
  const PstModel pst = BuildExactPst(data, options);
  EXPECT_EQ(pst.size(), 1u);  // Root only.
}

TEST(ExactPstTest, ConditionC3StopsDeterministicNodes) {
  const SequenceDataset data = RepetitiveData(200);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  // The depth-1 histograms are 0→1 (entropy 0) and 1→{0 ×3, & ×1}
  // (entropy ≈ 0.562): a threshold of 0.6 stops both, so only the root
  // splits.
  options.min_entropy = 0.6;
  options.max_depth = 8;
  const PstModel pst = BuildExactPst(data, options);
  std::int32_t max_predictor = 0;
  for (std::size_t id = 0; id < pst.size(); ++id) {
    max_predictor = std::max(
        max_predictor,
        static_cast<std::int32_t>(pst.node(static_cast<NodeId>(id))
                                      .predictor.size()));
  }
  EXPECT_LE(max_predictor, 1);
}

TEST(ExactPstTest, MaxDepthIsRespected) {
  const SequenceDataset data = RepetitiveData(500);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 3;
  const PstModel pst = BuildExactPst(data, options);
  for (std::size_t id = 0; id < pst.size(); ++id) {
    EXPECT_LE(pst.node(static_cast<NodeId>(id)).predictor.size(), 4u);
  }
}

TEST(ExactPstTest, HistogramsSumToOccurrenceCounts) {
  const SequenceDataset data = RepetitiveData(50);
  ExactPstOptions options;
  options.min_entropy = 0.0;
  const PstModel pst = BuildExactPst(data, options);
  // Root histogram magnitude = total predicted positions = Σ (len + 1).
  const auto& root_hist = pst.node(pst.root()).hist;
  double magnitude = 0.0;
  for (double h : root_hist) magnitude += h;
  EXPECT_DOUBLE_EQ(magnitude, 50.0 * 9.0);
}

TEST(ExactPstTest, ModelPredictsAlternationPerfectly) {
  const SequenceDataset data = RepetitiveData(100);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 4;
  const PstModel pst = BuildExactPst(data, options);
  // "01" occurs 4 times per sequence (positions 0-1, 2-3, 4-5, 6-7 and the
  // overlapping 1-2? no: 01 at even starts only... also "10" at odd
  // starts 3 times).  Estimate should be close to the exact 400.
  const std::vector<Symbol> s01 = {0, 1};
  EXPECT_NEAR(pst.EstimateStringFrequency(s01), 400.0, 40.0);
  // "00" never occurs.
  const std::vector<Symbol> s00 = {0, 0};
  EXPECT_NEAR(pst.EstimateStringFrequency(s00), 0.0, 1e-9);
}

TEST(ExactPstTest, SampledSequencesMatchTrainingStatistics) {
  const SequenceDataset data = RepetitiveData(100);
  ExactPstOptions options;
  options.min_magnitude = 1.0;
  options.min_entropy = 0.0;
  options.max_depth = 4;
  const PstModel pst = BuildExactPst(data, options);
  Rng rng(1);
  double total_len = 0.0;
  constexpr int kSamples = 500;
  for (int i = 0; i < kSamples; ++i) {
    const auto s = pst.SampleSequence(rng, 64);
    total_len += static_cast<double>(s.size());
    // Sampled sequences must alternate.
    for (std::size_t j = 1; j < s.size(); ++j) {
      EXPECT_NE(s[j], s[j - 1]);
    }
  }
  EXPECT_NEAR(total_len / kSamples, 8.0, 1.0);
}

}  // namespace
}  // namespace privtree
