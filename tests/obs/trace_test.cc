// Request tracing: unique id generation, span recording, the finished-
// trace ring, FormatTrace's span breakdown, and FinishTrace feeding the
// "server.request_us" registry histogram.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace privtree::obs {
namespace {

TEST(TraceIdTest, IdsAreUniqueAndNeverZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(TraceContextTest, SpansStartAbsentAndRecordIndependently) {
  TraceContext trace;
  for (std::size_t i = 0; i < kSpanCount; ++i) {
    EXPECT_EQ(trace.span(static_cast<Span>(i)), -1);
  }
  trace.Record(Span::kQueueWait, 120);
  trace.Record(Span::kKernel, 45);
  EXPECT_EQ(trace.span(Span::kQueueWait), 120);
  EXPECT_EQ(trace.span(Span::kKernel), 45);
  EXPECT_EQ(trace.span(Span::kFit), -1);  // Untouched spans stay absent.
}

TEST(TraceContextTest, StartTraceGeneratesOrAdoptsTheId) {
  const TracePtr generated = StartTrace();
  EXPECT_NE(generated->trace_id, 0u);
  const TracePtr adopted = StartTrace(0xABCD);
  EXPECT_EQ(adopted->trace_id, 0xABCDu);
}

TEST(TraceFormatTest, BreakdownNamesEveryRecordedSpan) {
  TraceContext trace;
  trace.trace_id = 0x1234;
  trace.total_us = 1500;
  trace.cache_hit = true;
  trace.Record(Span::kSocketRead, 100);
  trace.Record(Span::kKernel, 1400);
  const std::string line = FormatTrace(trace);
  EXPECT_NE(line.find("trace=0x"), std::string::npos) << line;
  EXPECT_NE(line.find("cache_hit"), std::string::npos) << line;
  EXPECT_NE(line.find("socket_read="), std::string::npos) << line;
  EXPECT_NE(line.find("kernel="), std::string::npos) << line;
  // Unrecorded spans stay out of the line entirely.
  EXPECT_EQ(line.find("queue_wait="), std::string::npos) << line;
}

TEST(TraceRingTest, KeepsTheMostRecentCapacityTraces) {
  TraceRing& ring = TraceRing::Global();
  ring.Reset();
  ring.SetCapacity(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    TraceContext trace;
    trace.trace_id = i;
    ring.Push(trace);
  }
  EXPECT_EQ(ring.finished(), 10u);
  const std::vector<TraceContext> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 4u);
  std::set<std::uint64_t> ids;
  for (const TraceContext& t : recent) ids.insert(t.trace_id);
  EXPECT_EQ(ids, (std::set<std::uint64_t>{7, 8, 9, 10}));
  ring.Reset();
  EXPECT_EQ(ring.finished(), 0u);
  EXPECT_TRUE(ring.Recent().empty());
}

TEST(TraceRingTest, FinishTraceFeedsTheRingAndTheLatencyHistogram) {
  TraceRing& ring = TraceRing::Global();
  ring.Reset();
  Histogram& latency =
      Registry::Global().GetHistogram("server.request_us");
  latency.Reset();

  TracePtr trace = StartTrace();
  trace->Record(Span::kDispatch, 5);
  FinishTrace(*trace);

  EXPECT_GE(trace->total_us, 0);  // Stamped from the start timestamp.
  EXPECT_EQ(ring.finished(), 1u);
  EXPECT_EQ(latency.Count(), 1u);
  ring.Reset();
  latency.Reset();
}

}  // namespace
}  // namespace privtree::obs
