// The metrics registry: sharded counters summing exactly under
// contention, gauge semantics, the log-bucket histogram's nearest-rank
// quantiles against a sorted-vector oracle (bit-exact on bucket
// boundaries), and the registry's JSON export / Reset contract.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace privtree::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket layout
// ---------------------------------------------------------------------------

TEST(HistogramBucketsTest, FirstSixteenBucketsAreExact) {
  for (std::uint64_t us = 0; us < 16; ++us) {
    EXPECT_EQ(HistogramBucketIndex(us), us);
    EXPECT_EQ(HistogramBucketLowerBound(us), us);
  }
}

TEST(HistogramBucketsTest, LowerBoundsAreStrictlyIncreasingAndConsistent) {
  // Every bucket's lower bound must (a) exceed the previous bucket's and
  // (b) map back into its own bucket — together these make the layout a
  // partition of [0, 2^63) with no gaps or overlaps.
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    const std::uint64_t lower = HistogramBucketLowerBound(i);
    EXPECT_GT(lower, HistogramBucketLowerBound(i - 1)) << "bucket " << i;
    EXPECT_EQ(HistogramBucketIndex(lower), i) << "bucket " << i;
    // The value just below this bucket's lower bound belongs to i-1.
    EXPECT_EQ(HistogramBucketIndex(lower - 1), i - 1) << "bucket " << i;
  }
}

TEST(HistogramBucketsTest, RelativeErrorIsBoundedByQuarter) {
  // Log-spaced buckets with 4 sub-buckets per octave: a value reported as
  // its bucket lower bound is never more than 25% below the true value.
  for (std::uint64_t us : {17ull, 100ull, 999ull, 12345ull, 1ull << 20,
                           (1ull << 40) + 12345}) {
    const std::uint64_t reported =
        HistogramBucketLowerBound(HistogramBucketIndex(us));
    EXPECT_LE(reported, us);
    EXPECT_GE(static_cast<double>(reported), 0.75 * static_cast<double>(us))
        << "us=" << us;
  }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

TEST(CounterTest, EightThreadsOfIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, BulkIncrementsAdd) {
  Counter counter;
  counter.Inc(41);
  counter.Inc();
  EXPECT_EQ(counter.Value(), 42u);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

TEST(GaugeTest, SetAddSubSetMax) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0u);
  gauge.Set(10);
  gauge.Add(5);
  gauge.Sub(3);
  EXPECT_EQ(gauge.Value(), 12u);
  gauge.SetMax(7);  // Below the current value: no effect.
  EXPECT_EQ(gauge.Value(), 12u);
  gauge.SetMax(99);
  EXPECT_EQ(gauge.Value(), 99u);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram quantiles vs the sorted-vector oracle
// ---------------------------------------------------------------------------

/// Nearest-rank quantile over an explicit sample vector: the rank-⌈q·n⌉
/// smallest sample (1-indexed).
std::uint64_t OracleQuantile(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

TEST(HistogramTest, EmptyHistogramAnswersZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(0.999), 0u);
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.Observe(7);  // An exact bucket: reported verbatim.
  for (const double q : {0.001, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 7u) << "q=" << q;
  }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.SumMicros(), 7u);
}

TEST(HistogramTest, BoundarySamplesMatchSortedVectorOracleExactly) {
  // Samples drawn exactly on bucket lower bounds survive bucketing
  // unchanged, so the histogram's nearest-rank must equal the oracle's
  // bit for bit at every probed quantile — including ones that land
  // exactly on rank boundaries.
  std::vector<std::uint64_t> samples;
  for (std::size_t bucket = 0; bucket < 64; ++bucket) {
    // Skew the distribution: low buckets carry more samples.
    for (std::size_t copies = 0; copies < 64 - bucket; ++copies) {
      samples.push_back(HistogramBucketLowerBound(bucket));
    }
  }
  Histogram h;
  for (const std::uint64_t s : samples) h.Observe(s);
  ASSERT_EQ(h.Count(), samples.size());
  for (const double q :
       {0.001, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.Quantile(q), OracleQuantile(samples, q)) << "q=" << q;
  }
  // Quantiles that are exact rank boundaries for this sample count.
  const double n = static_cast<double>(samples.size());
  for (const std::size_t rank : {std::size_t{1}, samples.size() / 2,
                                 samples.size() - 1, samples.size()}) {
    const double q = static_cast<double>(rank) / n;
    EXPECT_EQ(h.Quantile(q), OracleQuantile(samples, q)) << "rank=" << rank;
  }
}

TEST(HistogramTest, ConcurrentObservesKeepCountAndSumConsistent) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<std::uint64_t>(t));  // Exact buckets 0..7.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  // Sum of t over threads, kPerThread each: 0+1+...+7 = 28.
  EXPECT_EQ(h.SumMicros(), 28 * kPerThread);
  const auto buckets = h.Buckets();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(buckets[static_cast<std::size_t>(t)], kPerThread);
  }
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndNamesSorted) {
  Registry& registry = Registry::Global();
  Counter& a = registry.GetCounter("test.registry.alpha");
  Counter& b = registry.GetCounter("test.registry.beta");
  EXPECT_NE(&a, &b);
  // The same name resolves to the same object, and Reset keeps it valid.
  EXPECT_EQ(&registry.GetCounter("test.registry.alpha"), &a);
  a.Inc(3);
  registry.Reset();
  EXPECT_EQ(a.Value(), 0u);
  EXPECT_EQ(&registry.GetCounter("test.registry.alpha"), &a);

  const std::vector<std::string> names = registry.CounterNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, ToJsonCarriesEveryRegisteredMetric) {
  Registry& registry = Registry::Global();
  registry.GetCounter("test.json.requests").Inc(5);
  registry.GetGauge("test.json.depth").Set(3);
  Histogram& h = registry.GetHistogram("test.json.latency_us");
  h.Observe(10);
  h.Observe(10);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"test.json.requests\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.depth\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum_us\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50_us\":10"), std::string::npos) << json;
  // Top-level shape: the three sections in order.
  EXPECT_EQ(json.find("{\"counters\":{"), 0u) << json;
  EXPECT_NE(json.find(",\"gauges\":{"), std::string::npos) << json;
  EXPECT_NE(json.find(",\"histograms\":{"), std::string::npos) << json;
  registry.Reset();
}

}  // namespace
}  // namespace privtree::obs
