#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/privtree_csv_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, PointsRoundTrip) {
  PointSet points(2);
  Rng rng(1);
  double p[2];
  for (int i = 0; i < 100; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  ASSERT_TRUE(SavePointsCsv(path_, points).ok());
  auto loaded = LoadPointsCsv(path_, 2);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(loaded.value().point(i)[0], points.point(i)[0]);
    EXPECT_DOUBLE_EQ(loaded.value().point(i)[1], points.point(i)[1]);
  }
}

TEST_F(CsvTest, PointsSkipCommentsAndBlankLines) {
  WriteFile("# header\n0.1,0.2\n\n0.3,0.4\n");
  auto loaded = LoadPointsCsv(path_, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

TEST_F(CsvTest, PointsWrongFieldCountIsInvalidArgument) {
  WriteFile("0.1,0.2,0.3\n");
  const auto loaded = LoadPointsCsv(path_, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, PointsBadNumberIsInvalidArgument) {
  WriteFile("0.1,zebra\n");
  const auto loaded = LoadPointsCsv(path_, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, MissingFileIsIOError) {
  const auto loaded = LoadPointsCsv("/nonexistent/nope.csv", 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, SequencesRoundTrip) {
  SequenceDataset data(5);
  data.Add(std::vector<Symbol>{0, 1, 2});
  data.Add(std::vector<Symbol>{4});
  ASSERT_TRUE(SaveSequencesCsv(path_, data).ok());
  auto loaded = LoadSequencesCsv(path_, 5);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().sequence(0)[2], 2);
  EXPECT_EQ(loaded.value().sequence(1)[0], 4);
}

TEST_F(CsvTest, SequencesOutOfAlphabetIsInvalidArgument) {
  WriteFile("0 1 9\n");
  const auto loaded = LoadSequencesCsv(path_, 5);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SequencesNegativeSymbolIsInvalidArgument) {
  WriteFile("0 -3\n");
  const auto loaded = LoadSequencesCsv(path_, 5);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SequencesBadTokenIsInvalidArgument) {
  WriteFile("0 banana 1\n");
  const auto loaded = LoadSequencesCsv(path_, 5);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ZeroDimIsInvalidArgument) {
  const auto loaded = LoadPointsCsv(path_, 0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace privtree
