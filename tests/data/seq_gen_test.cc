#include "data/seq_gen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rng.h"

namespace privtree {
namespace {

class SeqGenTest : public ::testing::Test {
 protected:
  Rng rng_{2026};
};

TEST_F(SeqGenTest, AlphabetSizesMatchTable3) {
  EXPECT_EQ(GenerateMoocLike(10, rng_).alphabet_size(), 7u);
  EXPECT_EQ(GenerateMsnbcLike(10, rng_).alphabet_size(), 17u);
}

TEST_F(SeqGenTest, CardinalityIsExact) {
  EXPECT_EQ(GenerateMoocLike(5000, rng_).size(), 5000u);
  EXPECT_EQ(GenerateMsnbcLike(5000, rng_).size(), 5000u);
}

TEST_F(SeqGenTest, MoocAverageLengthNearPaper) {
  // Table 3: 13.46.
  const SequenceDataset data = GenerateMoocLike(30000, rng_);
  EXPECT_NEAR(data.AverageLength(), 13.46, 2.5);
}

TEST_F(SeqGenTest, MsnbcAverageLengthNearPaper) {
  // Table 3: 4.75.
  const SequenceDataset data = GenerateMsnbcLike(30000, rng_);
  EXPECT_NEAR(data.AverageLength(), 4.75, 0.8);
}

TEST_F(SeqGenTest, MoocHasHigherOrderStructure) {
  // The second-order generator makes P(next | prev2, prev1) much sharper
  // than P(next | prev1): measure via empirical conditional entropy.
  const SequenceDataset data = GenerateMoocLike(30000, rng_);
  constexpr std::size_t kA = 7;
  std::vector<double> first(kA * kA, 0.0);
  std::vector<double> second(kA * kA * kA, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sequence(i);
    for (std::size_t j = 2; j < s.size(); ++j) {
      first[s[j - 1] * kA + s[j]] += 1.0;
      second[(s[j - 2] * kA + s[j - 1]) * kA + s[j]] += 1.0;
    }
  }
  const auto conditional_entropy = [&](const std::vector<double>& table,
                                       std::size_t contexts) {
    double total_mass = 0.0, entropy = 0.0;
    for (std::size_t c = 0; c < contexts; ++c) {
      double mass = 0.0;
      for (std::size_t x = 0; x < kA; ++x) mass += table[c * kA + x];
      if (mass <= 0.0) continue;
      total_mass += mass;
      for (std::size_t x = 0; x < kA; ++x) {
        const double p = table[c * kA + x] / mass;
        if (p > 0.0) entropy -= mass * p * std::log(p);
      }
    }
    return entropy / total_mass;
  };
  const double h1 = conditional_entropy(first, kA);
  const double h2 = conditional_entropy(second, kA * kA);
  EXPECT_LT(h2, h1 - 0.05);
}

TEST_F(SeqGenTest, MsnbcPopularityIsSkewed) {
  const SequenceDataset data = GenerateMsnbcLike(30000, rng_);
  std::vector<double> counts(17, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (Symbol x : data.sequence(i)) {
      counts[x] += 1.0;
      total += 1.0;
    }
  }
  // Category 0 must dominate category 16 heavily (Zipf).
  EXPECT_GT(counts[0], 5.0 * counts[16]);
  // And no category is empty.
  for (double c : counts) EXPECT_GT(c, 0.0);
}

TEST_F(SeqGenTest, TruncationAtPaperLTopTouchesFewSequences) {
  // Table 3: l⊤ chosen near the 95% quantile — only ~5% truncated.
  const SequenceDataset mooc = GenerateMoocLike(20000, rng_);
  std::size_t over = 0;
  for (std::size_t i = 0; i < mooc.size(); ++i) {
    if (mooc.LengthWithEnd(i) > kMoocLTop) ++over;
  }
  EXPECT_LT(static_cast<double>(over) / 20000.0, 0.10);
}

TEST_F(SeqGenTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const SequenceDataset x = GenerateMsnbcLike(500, a);
  const SequenceDataset y = GenerateMsnbcLike(500, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(x.length(i), y.length(i));
    for (std::size_t j = 0; j < x.length(i); ++j) {
      EXPECT_EQ(x.sequence(i)[j], y.sequence(i)[j]);
    }
  }
}

}  // namespace
}  // namespace privtree
