#include "data/spatial_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "spatial/box.h"

namespace privtree {
namespace {

/// A crude skewness proxy: the fraction of points inside the densest cell
/// of a 16^d grid.  Uniform data gives ≈ 16^-d; skewed data much more.
double PeakMassFraction(const PointSet& points, int cells_per_dim) {
  std::vector<std::size_t> counts;
  const std::size_t d = points.dim();
  std::size_t total_cells = 1;
  for (std::size_t j = 0; j < d; ++j) {
    total_cells *= static_cast<std::size_t>(cells_per_dim);
  }
  counts.assign(total_cells, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto p = points.point(i);
    std::size_t flat = 0;
    for (std::size_t j = 0; j < d; ++j) {
      auto cell = static_cast<std::size_t>(p[j] * cells_per_dim);
      cell = std::min<std::size_t>(cell, cells_per_dim - 1);
      flat = flat * static_cast<std::size_t>(cells_per_dim) + cell;
    }
    ++counts[flat];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  return static_cast<double>(peak) / static_cast<double>(points.size());
}

class SpatialGenTest : public ::testing::Test {
 protected:
  Rng rng_{2026};
};

TEST_F(SpatialGenTest, AllGeneratorsStayInUnitCube) {
  const PointSet road = GenerateRoadLike(5000, rng_);
  const PointSet gowalla = GenerateGowallaLike(5000, rng_);
  const PointSet nyc = GenerateNycLike(5000, rng_);
  const PointSet beijing = GenerateBeijingLike(5000, rng_);
  for (const PointSet* points : {&road, &gowalla, &nyc, &beijing}) {
    const Box cube = Box::UnitCube(points->dim());
    for (std::size_t i = 0; i < points->size(); ++i) {
      ASSERT_TRUE(cube.Contains(points->point(i)));
    }
  }
}

TEST_F(SpatialGenTest, DimensionsMatchTable2) {
  EXPECT_EQ(GenerateRoadLike(10, rng_).dim(), 2u);
  EXPECT_EQ(GenerateGowallaLike(10, rng_).dim(), 2u);
  EXPECT_EQ(GenerateNycLike(10, rng_).dim(), 4u);
  EXPECT_EQ(GenerateBeijingLike(10, rng_).dim(), 4u);
}

TEST_F(SpatialGenTest, RequestedCardinalityIsExact) {
  EXPECT_EQ(GenerateRoadLike(12345, rng_).size(), 12345u);
  EXPECT_EQ(GenerateNycLike(777, rng_).size(), 777u);
}

TEST_F(SpatialGenTest, RoadIsMoreSkewedThanGowalla) {
  // The core requirement of the substitution (DESIGN.md §4): road ≫
  // Gowalla in skewness, mirroring Figure 4.
  const PointSet road = GenerateRoadLike(60000, rng_);
  const PointSet gowalla = GenerateGowallaLike(60000, rng_);
  EXPECT_GT(PeakMassFraction(road, 16), 1.5 * PeakMassFraction(gowalla, 16));
}

TEST_F(SpatialGenTest, NycIsMoreSkewedThanBeijing) {
  const PointSet nyc = GenerateNycLike(60000, rng_);
  const PointSet beijing = GenerateBeijingLike(60000, rng_);
  EXPECT_GT(PeakMassFraction(nyc, 8), 2.0 * PeakMassFraction(beijing, 8));
}

TEST_F(SpatialGenTest, AllDatasetsAreFarFromUniform) {
  const double uniform_peak_2d = 1.0 / (16.0 * 16.0);
  const PointSet road = GenerateRoadLike(60000, rng_);
  EXPECT_GT(PeakMassFraction(road, 16), 10.0 * uniform_peak_2d);
  const PointSet gowalla = GenerateGowallaLike(60000, rng_);
  EXPECT_GT(PeakMassFraction(gowalla, 16), 5.0 * uniform_peak_2d);
}

TEST_F(SpatialGenTest, NycDropoffCorrelatesWithPickup) {
  const PointSet nyc = GenerateNycLike(20000, rng_);
  double total_displacement = 0.0;
  for (std::size_t i = 0; i < nyc.size(); ++i) {
    const auto p = nyc.point(i);
    total_displacement += std::abs(p[2] - p[0]) + std::abs(p[3] - p[1]);
  }
  // Independent uniform coordinates would give E|Δ| = 2/3 total; taxi
  // trips are short.
  EXPECT_LT(total_displacement / static_cast<double>(nyc.size()), 0.2);
}

TEST_F(SpatialGenTest, GenerationIsDeterministicGivenSeed) {
  Rng a(42), b(42);
  const PointSet x = GenerateRoadLike(1000, a);
  const PointSet y = GenerateRoadLike(1000, b);
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x.point(i)[0], y.point(i)[0]);
    EXPECT_DOUBLE_EQ(x.point(i)[1], y.point(i)[1]);
  }
}

}  // namespace
}  // namespace privtree
