// QueryBatch must agree with repeated Query for every backend.  The
// tree-backed methods already had a batch sweep; this pins down the new
// grid-family paths: the flat grids' allocation-free one-pass batch (exact
// equality — same arithmetic), AG's summed-area-table interior + boundary
// evaluation and Hierarchy's consistent leaf view (equal up to
// floating-point summation order, checked at 1e-9).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "hist/grid.h"
#include "release/options.h"
#include "release/registry.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet TestPoints(std::size_t n = 1500) {
  Rng rng(0x6A7C4);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    // Two clusters plus a uniform background, so adaptive methods refine.
    const double u = rng.NextDouble();
    if (u < 0.4) {
      p[0] = 0.2 + 0.05 * rng.NextDouble();
      p[1] = 0.3 + 0.05 * rng.NextDouble();
    } else if (u < 0.8) {
      p[0] = 0.7 + 0.1 * rng.NextDouble();
      p[1] = 0.6 + 0.1 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

/// A workload that exercises every classification path: tiny boxes inside
/// one cell, wide boxes spanning many cells, slivers, the full domain, and
/// boxes reaching past the domain boundary.
std::vector<Box> TestQueries() {
  std::vector<Box> queries;
  Rng rng(0x0B0E5);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.NextDouble();
    const double y = rng.NextDouble();
    const double w = std::pow(10.0, -3.0 * rng.NextDouble());  // 1e-3 .. 1.
    const double h = std::pow(10.0, -3.0 * rng.NextDouble());
    queries.emplace_back(std::vector<double>{x, y},
                         std::vector<double>{std::min(x + w, 1.0),
                                             std::min(y + h, 1.0)});
  }
  // Degenerate and boundary-crossing cases.
  queries.emplace_back(std::vector<double>{0.0, 0.0},
                       std::vector<double>{1.0, 1.0});  // Whole domain.
  queries.emplace_back(std::vector<double>{0.5, 0.5},
                       std::vector<double>{0.5, 0.5});  // Zero volume.
  queries.emplace_back(std::vector<double>{-0.5, -0.5},
                       std::vector<double>{0.25, 1.5});  // Past the edges.
  queries.emplace_back(std::vector<double>{1.0, 1.0},
                       std::vector<double>{2.0, 2.0});  // Fully outside.
  queries.emplace_back(std::vector<double>{0.1, -1.0},
                       std::vector<double>{0.11, 2.0});  // Thin full column.
  return queries;
}

void ExpectBatchMatchesLoop(const std::string& name,
                            const release::MethodOptions& options) {
  auto method = release::GlobalMethodRegistry().Create(name, options);
  PrivacyBudget budget(1.0);
  Rng rng(0xFEED);
  method->Fit(TestPoints(), Box::UnitCube(2), budget, rng);
  const std::vector<Box> queries = TestQueries();
  const std::vector<double> batch = method->QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double single = method->Query(queries[q]);
    EXPECT_NEAR(batch[q], single, 1e-9 * std::max(1.0, std::fabs(single)))
        << name << " query " << q;
  }
}

TEST(QueryBatchParityTest, EveryRegisteredMethod) {
  // Box-batch parity is a spatial-kind property; the sequence methods'
  // batch path is covered by sequence_methods_test.cc.
  for (const std::string& name : release::GlobalMethodRegistry().Names(
           release::DatasetKind::kSpatial)) {
    ExpectBatchMatchesLoop(name, {});
  }
}

TEST(QueryBatchParityTest, HierarchyWithoutConstrainedInference) {
  // No consistent leaf view exists; the batch path must fall back to the
  // greedy descent and still agree.
  ExpectBatchMatchesLoop("hierarchy", {{"constrained_inference", "false"}});
}

TEST(QueryBatchParityTest, HierarchyTallTree) {
  ExpectBatchMatchesLoop("hierarchy", {{"height", "5"}});
}

TEST(QueryBatchParityTest, AdaptiveGridCoarseAndFine) {
  ExpectBatchMatchesLoop("ag", {{"cell_scale", "0.2"}});
  ExpectBatchMatchesLoop("ag", {{"cell_scale", "4"}});
}

TEST(QueryBatchParityTest, FlatGridBatchIsBitIdentical) {
  // ug/dawa/wavelet share GridHistogram::QueryBatch, which runs the exact
  // same arithmetic as Query — no tolerance needed.
  Rng rng(0x9B1D);
  GridHistogram grid = GridHistogram::FromPoints(TestPoints(),
                                                 Box::UnitCube(2), {37, 23});
  grid.AddLaplaceNoise(0.7, rng);
  grid.BuildPrefixSums();
  const std::vector<Box> queries = TestQueries();
  const std::vector<double> batch = grid.QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch[q], grid.Query(queries[q])) << "query " << q;
  }
}

}  // namespace
}  // namespace privtree
