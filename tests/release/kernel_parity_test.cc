// The bit-for-bit contract of the batch-query kernels.  Every specialized
// path — the flat 2-d grid kernels (scalar and SIMD), the SoA tree sweep
// (TreeBatchIndex), AG's kernel-view boundary path — must answer exactly
// like its reference implementation on every input, including degenerate
// and adversarial boxes, and must stay deterministic under concurrent
// callers.  Parity is EXPECT_EQ on doubles throughout: "close" is a bug
// here, because the serving layer promises compressed/vectorized answers
// indistinguishable from the originals.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dp/rng.h"
#include "eval/workload.h"
#include "hist/ag.h"
#include "hist/grid.h"
#include "hist/grid_kernels.h"
#include "hist/kdtree.h"
#include "release/tree_batch.h"
#include "serve/thread_pool.h"
#include "spatial/box.h"
#include "spatial/point_set.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

PointSet TestPoints(std::size_t n, std::uint64_t seed, std::size_t dim = 2) {
  Rng rng(seed);
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = j == 0 ? rng.NextDouble() * rng.NextDouble() : rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

/// Random boxes plus the degenerate shapes the kernels must not special-case
/// differently from the reference: empty intersections, zero-width slabs,
/// exact domain covers, boxes straddling or outside the domain.
std::vector<Box> AdversarialQueries(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> queries =
      GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
  queries.push_back(Box::UnitCube(2));                    // Full cover.
  queries.push_back(Box({0.0, 0.0}, {0.0, 0.0}));         // A point.
  queries.push_back(Box({0.3, 0.3}, {0.3, 0.9}));         // Zero width.
  queries.push_back(Box({0.25, 0.9}, {0.75, 0.9}));       // Zero height.
  queries.push_back(Box({-2.0, -2.0}, {-1.0, -1.0}));     // Disjoint.
  queries.push_back(Box({-1.0, -1.0}, {2.0, 2.0}));       // Superset.
  queries.push_back(Box({0.5, -1.0}, {2.0, 0.5}));        // Corner overlap.
  queries.push_back(Box({0.0, 0.4}, {1.0, 0.6}));         // Full-width band.
  queries.push_back(Box({1.0, 0.0}, {1.0, 1.0}));         // Upper boundary.
  return queries;
}

GridHistogram NoisyGrid(std::int64_t m0, std::int64_t m1, std::uint64_t seed) {
  GridHistogram grid = GridHistogram::FromPoints(
      TestPoints(3000, seed), Box::UnitCube(2), {m0, m1});
  Rng rng(seed ^ 0xF00D);
  grid.AddLaplaceNoise(2.0, rng);
  grid.BuildPrefixSums();
  return grid;
}

TEST(GridKernelParityTest, ScalarAndSimdMatchQueryAndReferenceBitwise) {
  const std::vector<Box> queries = AdversarialQueries(300, 0xA11CE);
  // Granularities around SIMD lane widths (1..5) and a large grid.
  const std::vector<std::pair<std::int64_t, std::int64_t>> shapes = {
      {1, 1}, {2, 3}, {4, 4}, {5, 7}, {16, 16}, {64, 64}, {128, 32}};
  std::uint64_t seed = 1;
  for (const auto& [m0, m1] : shapes) {
    SCOPED_TRACE(testing::Message() << "grid " << m0 << "x" << m1);
    const GridHistogram grid = NoisyGrid(m0, m1, seed++);
    const Grid2DView view = grid.KernelView2D();

    const std::vector<double> reference = grid.QueryBatchReference(queries);
    const std::vector<double> batch = grid.QueryBatch(queries);
    std::vector<double> scalar(queries.size()), simd(queries.size());
    GridQueryBatch2DScalar(view, queries, scalar.data());
    GridQueryBatch2DSimd(view, queries, simd.data());

    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const double want = grid.Query(queries[i]);
      EXPECT_EQ(reference[i], want) << "query " << i;
      EXPECT_EQ(batch[i], want) << "query " << i;
      EXPECT_EQ(scalar[i], want) << "query " << i;
      EXPECT_EQ(simd[i], want) << "query " << i;
      EXPECT_EQ(GridQueryOne2D(view, queries[i]), want) << "query " << i;
    }
  }
}

TEST(GridKernelParityTest, IndexedBatchMatchesOneShotOnScatteredIndices) {
  // The AG boundary path feeds the kernel scattered, duplicated query
  // indices; every answer must equal the one-shot kernel on that query.
  const GridHistogram grid = NoisyGrid(16, 48, 0x1DB0);
  const Grid2DView view = grid.KernelView2D();
  const std::vector<Box> queries = AdversarialQueries(100, 0x1D0);
  Rng rng(0x1D1);
  std::vector<std::uint32_t> idx;
  for (std::size_t j = 0; j < 777; ++j) {
    idx.push_back(static_cast<std::uint32_t>(rng.NextBounded(
        static_cast<std::uint64_t>(queries.size()))));
  }
  std::vector<double> got(idx.size());
  GridQueryBatch2DSimdIdx(view, queries.data(), idx.data(), idx.size(),
                          got.data());
  for (std::size_t j = 0; j < idx.size(); ++j) {
    EXPECT_EQ(got[j], GridQueryOne2D(view, queries[idx[j]])) << "slot " << j;
  }
}

TEST(GridKernelParityTest, NonTwoDimensionalGridsKeepTheGenericPath) {
  // 3-d grids take the generic QueryImpl everywhere; QueryBatch must still
  // equal Query and the reference bitwise.
  GridHistogram grid = GridHistogram::FromPoints(
      TestPoints(2000, 0x3D, 3), Box::UnitCube(3), {8, 4, 6});
  Rng noise(0x3D1);
  grid.AddLaplaceNoise(1.5, noise);
  grid.BuildPrefixSums();
  Rng rng(0x3D2);
  const std::vector<Box> queries =
      GenerateRangeQueries(Box::UnitCube(3), 120, kMediumQueries, rng);
  const std::vector<double> batch = grid.QueryBatch(queries);
  const std::vector<double> reference = grid.QueryBatchReference(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], grid.Query(queries[i])) << "query " << i;
    EXPECT_EQ(reference[i], batch[i]) << "query " << i;
  }
}

TEST(TreeBatchIndexParityTest, MatchesTheTemplateSweepOnSpatialTrees) {
  const PointSet points = TestPoints(4000, 0x7EE);
  const std::vector<Box> queries = AdversarialQueries(250, 0x7EE1);
  const auto box_of = [](const SpatialCell& c) -> const Box& { return c.box; };

  Rng privtree_rng(5);
  const SpatialHistogram privtree = BuildPrivTreeHistogram(
      points, Box::UnitCube(2), 1.0, {}, privtree_rng);
  Rng simple_rng(6);
  SimpleTreeHistogramOptions simple_options;
  simple_options.height = 6;
  const SpatialHistogram simple = BuildSimpleTreeHistogram(
      points, Box::UnitCube(2), 1.0, simple_options, simple_rng);

  for (const SpatialHistogram* hist : {&privtree, &simple}) {
    const std::vector<double> want = release::BatchQueryTree(
        hist->tree, hist->count, std::span<const Box>(queries), box_of);
    const release::TreeBatchIndex index(hist->tree, hist->count, box_of);
    EXPECT_EQ(index.size(), hist->tree.size());
    const std::vector<double> got = index.Query(queries);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "query " << i;
    }
  }
}

TEST(TreeBatchIndexParityTest, MatchesTheTemplateSweepOnKdTrees) {
  const PointSet points = TestPoints(3000, 0x1D);
  Rng rng(0x1D1);
  KdTreeOptions options;
  options.height = 6;
  const KdTreeHistogram kd(points, Box::UnitCube(2), 1.0, options, rng);
  const auto box_of = [](const Box& b) -> const Box& { return b; };
  const std::vector<Box> queries = AdversarialQueries(250, 0x1D2);
  const std::vector<double> want = release::BatchQueryTree(
      kd.tree(), kd.counts(), std::span<const Box>(queries), box_of);
  const release::TreeBatchIndex index(kd.tree(), kd.counts(), box_of);
  const std::vector<double> got = index.Query(queries);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "query " << i;
  }
}

TEST(TreeBatchIndexParityTest, EmptyIndexAnswersZero) {
  const release::TreeBatchIndex index;
  const std::vector<Box> queries = {Box::UnitCube(2)};
  const std::vector<double> got = index.Query(queries);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0.0);
}

TEST(AdaptiveGridParityTest, QueryBatchMatchesReferenceBitwise) {
  const PointSet points = TestPoints(5000, 0xA6);
  Rng fit_rng(0xA61);
  const AdaptiveGrid grid(points, Box::UnitCube(2), 1.0, {}, fit_rng);
  const std::vector<Box> queries = AdversarialQueries(300, 0xA62);
  const std::vector<double> got = grid.QueryBatch(queries);
  const std::vector<double> want = grid.QueryBatchReference(queries);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "query " << i;
  }
}

TEST(KernelConcurrencyTest, EightThreadsReproduceSerialAnswersBitwise) {
  // The kernels hold no mutable state, so concurrent batches over one
  // synopsis must equal the serial run exactly — at every thread count.
  const GridHistogram grid = NoisyGrid(32, 32, 0xC0);
  const PointSet points = TestPoints(3000, 0xC1);
  Rng tree_rng(0xC2);
  const SpatialHistogram tree = BuildPrivTreeHistogram(
      points, Box::UnitCube(2), 1.0, {}, tree_rng);
  const release::TreeBatchIndex index(
      tree.tree, tree.count,
      [](const SpatialCell& c) -> const Box& { return c.box; });

  const std::vector<Box> queries = AdversarialQueries(400, 0xC3);
  const std::vector<double> grid_serial = grid.QueryBatch(queries);
  const std::vector<double> tree_serial = index.Query(queries);

  serve::ThreadPool pool(8);
  std::vector<std::vector<double>> grid_runs(16), tree_runs(16);
  pool.ParallelFor(grid_runs.size(), [&](std::size_t i) {
    grid_runs[i] = grid.QueryBatch(queries);
    tree_runs[i] = index.Query(queries);
  });
  for (std::size_t r = 0; r < grid_runs.size(); ++r) {
    ASSERT_EQ(grid_runs[r].size(), grid_serial.size());
    ASSERT_EQ(tree_runs[r].size(), tree_serial.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(grid_runs[r][i], grid_serial[i]) << "run " << r;
      EXPECT_EQ(tree_runs[r][i], tree_serial[i]) << "run " << r;
    }
  }
}

}  // namespace
}  // namespace privtree
