// The universal synopsis envelope: save → LoadMethod → QueryBatch must be
// bit-for-bit identical to the fitted in-memory synopsis for every registry
// method, loaded metadata must reproduce the fit's accounting exactly, the
// legacy v1 text format must keep loading through the shim, and every
// corrupted input — truncation, bit flips, wrong magic, crafted headers —
// must fail with a clean Status, never a crash or a partial synopsis.
#include "release/serialization.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "eval/workload.h"
#include "release/builtin_methods.h"
#include "release/options.h"
#include "release/registry.h"
#include "spatial/box.h"
#include "spatial/point_set.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

namespace privtree::release {
namespace {

PointSet TestPoints(std::size_t n = 4000, std::uint64_t seed = 0x5EED) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble() * rng.NextDouble();  // Skewed, so trees split.
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

struct MethodCase {
  std::string name;
  MethodOptions options;
};

/// Every registry method, with small grids so the suite stays fast, plus
/// non-default-option variants that exercise the options round-trip.
std::vector<MethodCase> AllCases() {
  return {
      {"privtree", {}},
      {"privtree", {{"dims_per_split", "1"}}},
      {"simpletree", {{"height", "5"}}},
      {"ug", {{"cell_scale", "2"}}},
      {"ag", {}},
      {"kdtree", {{"height", "6"}}},
      {"dawa", {{"target_total_cells", "4096"}}},
      {"hierarchy", {}},
      {"hierarchy", {{"constrained_inference", "false"}}},
      {"wavelet", {{"target_total_cells", "4096"}}},
  };
}

std::unique_ptr<Method> FitCase(const MethodCase& c, const PointSet& points,
                                std::uint64_t seed) {
  auto method = GlobalMethodRegistry().Create(c.name, c.options);
  PrivacyBudget budget(1.0);
  Rng rng(seed);
  method->Fit(points, Box::UnitCube(2), budget, rng);
  return method;
}

std::string SaveToString(const Method& method) {
  std::ostringstream out;
  EXPECT_TRUE(method.Save(out).ok());
  return std::move(out).str();
}

Result<std::unique_ptr<Method>> LoadFromString(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadMethod(in);
}

TEST(SynopsisSerializationTest, EveryMethodRoundTripsBitForBit) {
  const PointSet points = TestPoints();
  Rng query_rng(0xBEEF);
  const std::vector<Box> queries = GenerateRangeQueries(
      Box::UnitCube(2), 60, kMediumQueries, query_rng);

  std::uint64_t seed = 17;
  for (const MethodCase& c : AllCases()) {
    SCOPED_TRACE(c.name + " [" + c.options.ToString() + "]");
    const auto fitted = FitCase(c, points, seed++);
    const std::string bytes = SaveToString(*fitted);

    auto loaded = LoadFromString(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // Accounting must be restored identically to the fresh fit.
    const MethodMetadata want = fitted->Metadata();
    const MethodMetadata got = loaded.value()->Metadata();
    EXPECT_EQ(got.method, want.method);
    EXPECT_EQ(got.dim, want.dim);
    EXPECT_EQ(got.epsilon_spent, want.epsilon_spent);
    EXPECT_EQ(got.synopsis_size, want.synopsis_size);
    EXPECT_EQ(got.height, want.height);

    // And every served answer must match bit for bit — both the batch path
    // and the scalar path.
    const std::vector<double> want_batch = fitted->QueryBatch(queries);
    const std::vector<double> got_batch = loaded.value()->QueryBatch(queries);
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got_batch[i], want_batch[i]) << "query " << i;
    }
    EXPECT_EQ(loaded.value()->Query(queries.front()),
              fitted->Query(queries.front()));
  }
}

TEST(SynopsisSerializationTest, SaveBeforeFitIsRejected) {
  for (const std::string& name : GlobalMethodRegistry().Names()) {
    const auto method = GlobalMethodRegistry().Create(name);
    std::ostringstream out;
    EXPECT_FALSE(method->Save(out).ok()) << name;
  }
}

TEST(SynopsisSerializationTest, V1TextFilesLoadThroughTheShim) {
  const PointSet points = TestPoints(2000);
  Rng rng(3);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  const std::string path =
      ::testing::TempDir() + "/privtree_v1_compat.txt";
  ASSERT_TRUE(SaveSpatialHistogram(path, hist).ok());

  auto loaded = LoadMethodFromFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // v1 files record neither method name nor ε: they come back as a
  // "privtree" release with unknown (zero) spent budget...
  const MethodMetadata metadata = loaded.value()->Metadata();
  EXPECT_EQ(metadata.method, "privtree");
  EXPECT_EQ(metadata.dim, 2u);
  EXPECT_EQ(metadata.epsilon_spent, 0.0);
  EXPECT_EQ(metadata.synopsis_size, hist.tree.size());

  // ...but answer queries exactly like the histogram they persisted.
  Rng query_rng(0xBEEF);
  for (const Box& q : GenerateRangeQueries(Box::UnitCube(2), 40,
                                           kMediumQueries, query_rng)) {
    EXPECT_NEAR(loaded.value()->Query(q), hist.Query(q),
                1e-9 * (1.0 + std::abs(hist.Query(q))));
  }
}

TEST(SynopsisSerializationTest, LoadedSynopsisRoundTripsAgain) {
  // Save → load → save must reproduce the original bytes: nothing about
  // the release is lost in a load.
  const PointSet points = TestPoints(2000);
  const auto fitted = FitCase({"ag", {}}, points, 29);
  const std::string bytes = SaveToString(*fitted);
  auto loaded = LoadFromString(bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SaveToString(*loaded.value()), bytes);
}

class SynopsisCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const PointSet points = TestPoints(1500);
    tree_bytes_ = SaveToString(*FitCase({"privtree", {}}, points, 7));
    grid_bytes_ = SaveToString(
        *FitCase({"dawa", {{"target_total_cells", "256"}}}, points, 7));
  }

  std::string tree_bytes_;
  std::string grid_bytes_;
};

TEST_F(SynopsisCorruptionTest, EveryTruncationFailsCleanly) {
  for (const std::string* bytes : {&tree_bytes_, &grid_bytes_}) {
    const std::size_t step = std::max<std::size_t>(1, bytes->size() / 211);
    for (std::size_t len = 0; len < bytes->size(); len += step) {
      auto loaded = LoadFromString(bytes->substr(0, len));
      EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    }
  }
}

TEST_F(SynopsisCorruptionTest, EveryBitFlipFailsCleanly) {
  // The body checksum (and the header field checks) must catch any single
  // bit flip; a flipped released count silently served would be a wrong
  // answer with no diagnostic.
  for (const std::string* original : {&tree_bytes_, &grid_bytes_}) {
    const std::size_t step = std::max<std::size_t>(1, original->size() / 149);
    for (std::size_t pos = 0; pos < original->size(); pos += step) {
      std::string flipped = *original;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << (pos % 8)));
      auto loaded = LoadFromString(flipped);
      EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
    }
  }
}

TEST_F(SynopsisCorruptionTest, WrongMagicAndGarbageAreRejected) {
  for (const std::string& bytes :
       {std::string(), std::string("PRIVTSYM"), std::string("garbage"),
        std::string(200, '\0'), std::string(200, '\xff')}) {
    auto loaded = LoadFromString(bytes);
    EXPECT_FALSE(loaded.ok());
  }
}

TEST_F(SynopsisCorruptionTest, TrailingBytesAreRejected) {
  auto loaded = LoadFromString(tree_bytes_ + "x");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SynopsisCorruptionTest, UnknownMethodIsRejected) {
  std::ostringstream out;
  MethodMetadata metadata;
  metadata.method = "nope";
  metadata.dim = 2;
  ASSERT_TRUE(WriteSynopsis(out, metadata, "", "").ok());
  auto loaded = LoadFromString(std::move(out).str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SynopsisCorruptionTest, UnknownOptionKeyIsRejected) {
  std::ostringstream out;
  MethodMetadata metadata;
  metadata.method = "ug";
  metadata.dim = 2;
  ASSERT_TRUE(WriteSynopsis(out, metadata, "no_such_key=1", "").ok());
  auto loaded = LoadFromString(std::move(out).str());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace privtree::release
