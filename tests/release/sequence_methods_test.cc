// The sequence-kind registry backends (pst_privtree, ngram): registration
// metadata, bit-for-bit fit parity with the direct builders, SequenceQuery
// batch semantics, envelope round-trips with a corruption sweep, and the
// legacy `privtree-pst v1` text-format compat regression.
#include "release/sequence_methods.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/serialization.h"
#include "release/session.h"
#include "seq/ngram.h"
#include "seq/pst_privtree.h"
#include "seq/pst_serialization.h"
#include "seq/sequence.h"
#include "seq/topk.h"

namespace privtree::release {
namespace {

constexpr std::size_t kAlphabet = 4;
constexpr std::size_t kLTop = 12;

SequenceDataset TestSequences(std::size_t n = 400) {
  Rng rng(0x5EC7E57);
  SequenceDataset data(kAlphabet);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.clear();
    const std::size_t len = 1 + rng.NextBounded(14);
    Symbol last = static_cast<Symbol>(rng.NextBounded(kAlphabet));
    for (std::size_t j = 0; j < len; ++j) {
      // Mildly Markovian so the PST actually splits.
      last = static_cast<Symbol>(
          rng.NextDouble() < 0.6 ? last : rng.NextBounded(kAlphabet));
      s.push_back(last);
    }
    data.Add(s);
  }
  return data.Truncate(kLTop);
}

MethodOptions SeqOptions() {
  MethodOptions options;
  options.Set("l_top", std::to_string(kLTop));
  return options;
}

std::vector<SequenceQuery> MixedQueries() {
  std::vector<SequenceQuery> queries;
  queries.push_back(SequenceQuery::Frequency({0}));
  queries.push_back(SequenceQuery::Frequency({1, 2}));
  queries.push_back(SequenceQuery::Frequency({3, 3, 0}));
  queries.push_back(SequenceQuery::PrefixCount({2}));
  queries.push_back(SequenceQuery::PrefixCount({0, 1}));
  queries.push_back(SequenceQuery::TopK(5, 3));
  queries.push_back(SequenceQuery::TopK(1, 2));
  return queries;
}

TEST(SequenceMethodsTest, RegistrationMetadata) {
  auto& registry = GlobalMethodRegistry();
  for (const char* name : {"pst_privtree", "ngram"}) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(registry.Contains(name));
    const auto& entry = registry.Get(name);
    EXPECT_EQ(entry.kind, DatasetKind::kSequence);
    EXPECT_EQ(entry.required_dim, 0u);
    EXPECT_FALSE(entry.description.empty());
    EXPECT_FALSE(entry.allowed_keys.empty());
    EXPECT_TRUE(entry.loader != nullptr);
  }
}

// The OptionKey ranges must reject the hostile values a socket client
// could send *before* any fitter contract check runs: l⊤ >= 1, n_max >= 1,
// threshold_factor >= 0, tree fraction in (0, 1).
TEST(SequenceMethodsTest, OptionRangesScreenHostileValues) {
  auto& registry = GlobalMethodRegistry();
  const auto check = [&](const char* method, const char* key,
                         const char* value) -> Status {
    const auto& allowed = registry.AllowedKeys(method);
    const auto it =
        std::find_if(allowed.begin(), allowed.end(),
                     [&](const OptionKey& k) { return k.name == key; });
    if (it == allowed.end()) {
      ADD_FAILURE() << method << " does not advertise option " << key;
      return Status::InvalidArgument("no such key");
    }
    return CheckOptionValue(*it, value);
  };
  EXPECT_FALSE(check("pst_privtree", "l_top", "0").ok());
  EXPECT_FALSE(check("pst_privtree", "l_top", "-3").ok());
  EXPECT_TRUE(check("pst_privtree", "l_top", "50").ok());
  EXPECT_FALSE(check("pst_privtree", "tree_budget_fraction", "0").ok());
  EXPECT_FALSE(check("pst_privtree", "tree_budget_fraction", "1").ok());
  EXPECT_TRUE(check("pst_privtree", "tree_budget_fraction", "0.25").ok());
  EXPECT_FALSE(check("pst_privtree", "max_depth", "0").ok());
  EXPECT_FALSE(check("ngram", "n_max", "0").ok());
  EXPECT_FALSE(check("ngram", "n_max", "99").ok());
  EXPECT_TRUE(check("ngram", "n_max", "5").ok());
  EXPECT_FALSE(check("ngram", "l_top", "0").ok());
  EXPECT_FALSE(check("ngram", "threshold_factor", "-1").ok());
  EXPECT_TRUE(check("ngram", "threshold_factor", "3").ok());
}

TEST(SequenceQueryTest, ValidationScreensHostileSpecs) {
  EXPECT_TRUE(
      ValidateSequenceQuery(SequenceQuery::Frequency({0, 1}), 4).ok());
  EXPECT_FALSE(ValidateSequenceQuery(SequenceQuery::Frequency({}), 4).ok());
  EXPECT_FALSE(
      ValidateSequenceQuery(SequenceQuery::Frequency({4}), 4).ok());
  EXPECT_FALSE(
      ValidateSequenceQuery(SequenceQuery::PrefixCount({9}), 4).ok());
  EXPECT_TRUE(ValidateSequenceQuery(SequenceQuery::TopK(3, 2), 4).ok());
  EXPECT_FALSE(ValidateSequenceQuery(SequenceQuery::TopK(0, 2), 4).ok());
  EXPECT_FALSE(ValidateSequenceQuery(SequenceQuery::TopK(3, 0), 4).ok());
  EXPECT_FALSE(ValidateSequenceQuery(SequenceQuery::TopK(3, 8), 4).ok());
  // Top-k enumeration packs candidates into 8-bit symbols.
  EXPECT_FALSE(ValidateSequenceQuery(SequenceQuery::TopK(3, 2), 300).ok());
}

// The registry adapter must release the very synopsis the direct builder
// releases: same dataset, same ε, same Rng stream => identical estimates.
TEST(SequenceMethodsTest, PstFitMatchesDirectBuilderBitForBit) {
  const SequenceDataset data = TestSequences();
  const std::uint64_t seed = 0xC0FFEE;

  ReleaseSession session(data, /*total_epsilon=*/1.0, seed);
  const auto method = session.ReleaseRemaining("pst_privtree", SeqOptions());

  Rng direct_rng(seed);
  Rng release_rng = direct_rng.Fork();  // The session derivation.
  PrivatePstOptions options;
  options.l_top = kLTop;
  const auto direct = BuildPrivatePst(data, 1.0, options, release_rng);

  const auto metadata = method->Metadata();
  EXPECT_EQ(metadata.method, "pst_privtree");
  EXPECT_EQ(metadata.dim, kAlphabet);
  EXPECT_EQ(metadata.synopsis_size, direct.model.size());
  EXPECT_DOUBLE_EQ(metadata.epsilon_spent, 1.0);

  for (const SequenceQuery& q : MixedQueries()) {
    if (q.kind != SequenceQueryKind::kFrequency) continue;
    const std::vector<double> got =
        method->QueryBatch(std::span<const SequenceQuery>(&q, 1));
    EXPECT_EQ(got[0], direct.model.EstimateStringFrequency(q.symbols));
  }
}

TEST(SequenceMethodsTest, NgramFitMatchesDirectBuilderBitForBit) {
  const SequenceDataset data = TestSequences();
  const std::uint64_t seed = 0xBEEF;

  ReleaseSession session(data, 1.0, seed);
  const auto method = session.ReleaseRemaining("ngram", SeqOptions());

  Rng direct_rng(seed);
  Rng release_rng = direct_rng.Fork();
  NgramOptions options;
  options.l_top = kLTop;
  const NgramModel direct(data, 1.0, options, release_rng);

  EXPECT_EQ(method->Metadata().synopsis_size, direct.ReleasedGramCount());
  const SequenceQuery q = SequenceQuery::Frequency({1, 2, 3});
  EXPECT_EQ(method->QueryBatch(std::span<const SequenceQuery>(&q, 1))[0],
            direct.EstimateStringFrequency(q.symbols));
}

// Every query kind must agree with the model-level definition.
TEST(SequenceMethodsTest, QueryBatchAnswersAllKinds) {
  const SequenceDataset data = TestSequences();
  ReleaseSession session(data, 1.0, 0xAB);
  const auto method = session.ReleaseRemaining("pst_privtree", SeqOptions());

  Rng direct_rng(0xAB);
  Rng release_rng = direct_rng.Fork();
  PrivatePstOptions options;
  options.l_top = kLTop;
  const auto direct = BuildPrivatePst(data, 1.0, options, release_rng);

  const std::vector<SequenceQuery> queries = MixedQueries();
  const std::vector<double> answers =
      method->QueryBatch(std::span(queries));
  ASSERT_EQ(answers.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const SequenceQuery& q = queries[i];
    switch (q.kind) {
      case SequenceQueryKind::kFrequency:
        EXPECT_EQ(answers[i],
                  direct.model.EstimateStringFrequency(q.symbols));
        break;
      case SequenceQueryKind::kPrefixCount:
        EXPECT_EQ(answers[i], direct.model.EstimatePrefixCount(q.symbols));
        break;
      case SequenceQueryKind::kTopK: {
        const TopKStrings top = TopKFromModel(direct.model, q.k, q.max_len);
        EXPECT_EQ(answers[i],
                  q.k <= top.counts.size() ? top.counts[q.k - 1] : 0.0);
        break;
      }
    }
  }
}

TEST(SequenceMethodsDeathTest, WrongKindIsAProgrammingError) {
  const SequenceDataset data = TestSequences(50);
  ReleaseSession session(data, 1.0, 1);
  EXPECT_DEATH(session.Release("privtree", 0.5), "Kind");

  // And a sequence method never answers boxes.
  ReleaseSession seq_session(data, 1.0, 2);
  const auto method = seq_session.ReleaseRemaining("pst_privtree",
                                                   SeqOptions());
  EXPECT_DEATH(method->Query(Box::UnitCube(1)), "PRIVTREE_CHECK");
}

std::string SaveToString(const Method& method) {
  std::ostringstream out;
  EXPECT_TRUE(method.Save(out).ok());
  return std::move(out).str();
}

Result<std::unique_ptr<Method>> LoadFromString(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadMethod(in);
}

// Envelope round-trip: accounting restored identically, every SequenceQuery
// kind answered bit-for-bit.
TEST(SequenceMethodsTest, EnvelopeRoundTripsBitForBit) {
  const SequenceDataset data = TestSequences();
  const std::vector<SequenceQuery> queries = MixedQueries();
  std::uint64_t seed = 31;
  for (const char* name : {"pst_privtree", "ngram"}) {
    SCOPED_TRACE(name);
    ReleaseSession session(data, 1.0, seed++);
    const auto fitted = session.ReleaseRemaining(name, SeqOptions());
    const std::string bytes = SaveToString(*fitted);

    auto loaded = LoadFromString(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    const MethodMetadata want = fitted->Metadata();
    const MethodMetadata got = loaded.value()->Metadata();
    EXPECT_EQ(got.method, want.method);
    EXPECT_EQ(got.dim, want.dim);
    EXPECT_EQ(got.epsilon_spent, want.epsilon_spent);
    EXPECT_EQ(got.synopsis_size, want.synopsis_size);
    EXPECT_EQ(got.height, want.height);

    const std::vector<double> want_answers =
        fitted->QueryBatch(std::span(queries));
    const std::vector<double> got_answers =
        loaded.value()->QueryBatch(std::span(queries));
    ASSERT_EQ(got_answers.size(), want_answers.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got_answers[i], want_answers[i]) << "query " << i;
    }
  }
}

// Corruption never crashes and never yields a loadable synopsis: every
// truncation prefix and every flipped bit fails with a clean Status (or,
// for a flipped payload bit that survives the checksum, never — the
// checksum covers the whole body).
TEST(SequenceMethodsTest, CorruptionSweepYieldsCleanErrors) {
  const SequenceDataset data = TestSequences(120);
  ReleaseSession session(data, 1.0, 99);
  const auto fitted = session.ReleaseRemaining("pst_privtree", SeqOptions());
  const std::string bytes = SaveToString(*fitted);

  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 97)) {
    const auto loaded = LoadFromString(bytes.substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut;
  }
  for (std::size_t bit = 0; bit < bytes.size() * 8;
       bit += std::max<std::size_t>(1, bytes.size() / 13)) {
    std::string corrupt = bytes;
    corrupt[bit / 8] = static_cast<char>(corrupt[bit / 8] ^ (1 << (bit % 8)));
    const auto loaded = LoadFromString(corrupt);
    EXPECT_FALSE(loaded.ok()) << "bit flip at " << bit;
  }
}

// A structurally inconsistent payload under a valid checksum must still be
// rejected: re-encode a crafted body (fractured sibling group).
TEST(SequenceMethodsTest, CraftedPayloadStructureIsRejected) {
  // ngram restore: parents [-1, 0 x (alphabet+1)] is consistent; breaking
  // the group parent mid-way is not.
  const std::size_t alphabet = 2;
  const std::vector<NodeId> fractured = {-1, 0, 0, 1};
  const std::vector<double> counts(fractured.size(), 1.0);
  EXPECT_FALSE(NgramModel::Restore(alphabet, fractured, counts).ok());
  const std::vector<NodeId> consistent = {-1, 0, 0, 0};
  EXPECT_TRUE(NgramModel::Restore(alphabet, consistent, counts).ok());
}

// Legacy `privtree-pst v1` text files load through release::LoadMethod as
// a pst_privtree synopsis with unknown (zero) ε — the regression that pins
// the compat shim.
TEST(SequenceMethodsTest, LegacyPstV1FilesLoadThroughTheShim) {
  const SequenceDataset data = TestSequences(150);
  Rng rng(0x1D);
  PrivatePstOptions options;
  options.l_top = kLTop;
  const auto direct = BuildPrivatePst(data, 1.0, options, rng);

  const std::string path =
      (std::filesystem::temp_directory_path() / "legacy_pst_v1.txt")
          .string();
  ASSERT_TRUE(SavePstModel(path, direct.model).ok());

  auto loaded = LoadMethodFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const MethodMetadata metadata = loaded.value()->Metadata();
  EXPECT_EQ(metadata.method, "pst_privtree");
  EXPECT_EQ(metadata.dim, kAlphabet);
  EXPECT_EQ(metadata.epsilon_spent, 0.0);  // Unknown budget.
  EXPECT_EQ(metadata.synopsis_size, direct.model.size());

  // The text format rounds through decimal, but 17 significant digits
  // round-trip IEEE doubles exactly, so answers still match bit for bit.
  for (const SequenceQuery& q : MixedQueries()) {
    const std::vector<double> got =
        loaded.value()->QueryBatch(std::span<const SequenceQuery>(&q, 1));
    double want = 0.0;
    switch (q.kind) {
      case SequenceQueryKind::kFrequency:
        want = direct.model.EstimateStringFrequency(q.symbols);
        break;
      case SequenceQueryKind::kPrefixCount:
        want = direct.model.EstimatePrefixCount(q.symbols);
        break;
      case SequenceQueryKind::kTopK: {
        const TopKStrings top = TopKFromModel(direct.model, q.k, q.max_len);
        want = q.k <= top.counts.size() ? top.counts[q.k - 1] : 0.0;
        break;
      }
    }
    EXPECT_EQ(got[0], want);
  }
  std::remove(path.c_str());
}

// Crafted v1 text files must fail with a clean Status through the shim —
// never an abort (duplicate group-start parent) or a huge allocation
// (lying node count).
TEST(SequenceMethodsTest, CraftedLegacyV1FilesAreRejectedCleanly) {
  const auto load_text = [](const std::string& text) {
    std::istringstream in(text);
    return LoadMethod(in);
  };
  // Node 0 named as group-start parent twice (alphabet 1 => beta 2).
  EXPECT_FALSE(load_text("privtree-pst v1\n"
                         "alphabet 1\n"
                         "nodes 5\n"
                         "-1 0 0\n0 0 0\n0 0 0\n0 0 0\n0 0 0\n")
                   .ok());
  // Implausible node count in a tiny file.
  EXPECT_FALSE(load_text("privtree-pst v1\n"
                         "alphabet 1\n"
                         "nodes 2000000001\n-1 0 0\n")
                   .ok());
}

}  // namespace
}  // namespace privtree::release
