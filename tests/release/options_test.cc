#include "release/options.h"

#include <gtest/gtest.h>

namespace privtree {
namespace {

using release::MethodOptions;
using release::RequireKnownKeys;

TEST(MethodOptionsTest, ParseRoundTrips) {
  const MethodOptions options =
      MethodOptions::Parse("height=4,theta=0.5,name=ug");
  EXPECT_EQ(options.GetInt("height", 0), 4);
  EXPECT_DOUBLE_EQ(options.GetDouble("theta", 0.0), 0.5);
  EXPECT_EQ(options.GetString("name", ""), "ug");
  EXPECT_EQ(options.ToString(), "height=4,name=ug,theta=0.5");
}

TEST(MethodOptionsTest, TryParseReportsMalformedEntries) {
  MethodOptions out;
  std::string error;
  EXPECT_TRUE(MethodOptions::TryParse("a=1,b=2", &out, &error));
  EXPECT_EQ(out.GetInt("b", 0), 2);

  EXPECT_FALSE(MethodOptions::TryParse("novalue", &out, &error));
  EXPECT_NE(error.find("novalue"), std::string::npos);
  EXPECT_FALSE(MethodOptions::TryParse("=5", &out, &error));
}

TEST(MethodOptionsTest, EmptyTextGivesEmptyOptions) {
  EXPECT_TRUE(MethodOptions::Parse("").empty());
  EXPECT_TRUE(MethodOptions::Parse(",,").empty());
}

TEST(MethodOptionsTest, FallbacksApplyWhenAbsent) {
  const MethodOptions options;
  EXPECT_EQ(options.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(options.GetDouble("missing", 2.5), 2.5);
  EXPECT_TRUE(options.GetBool("missing", true));
  EXPECT_FALSE(options.Has("missing"));
}

TEST(MethodOptionsTest, BoolAcceptsBothSpellings) {
  const MethodOptions options =
      MethodOptions::Parse("a=1,b=true,c=0,d=false");
  EXPECT_TRUE(options.GetBool("a", false));
  EXPECT_TRUE(options.GetBool("b", false));
  EXPECT_FALSE(options.GetBool("c", true));
  EXPECT_FALSE(options.GetBool("d", true));
}

TEST(MethodOptionsTest, LastSetWins) {
  MethodOptions options;
  options.Set("k", "1");
  options.Set("k", "2");
  EXPECT_EQ(options.GetInt("k", 0), 2);
  EXPECT_EQ(options.Keys().size(), 1u);
}

TEST(MethodOptionsTest, ValueParsesAsChecksPerType) {
  using release::OptionType;
  using release::ValueParsesAs;
  EXPECT_TRUE(ValueParsesAs(OptionType::kDouble, "2.5"));
  EXPECT_TRUE(ValueParsesAs(OptionType::kDouble, "1"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kDouble, "abc"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kDouble, "2.5x"));

  EXPECT_TRUE(ValueParsesAs(OptionType::kInt, "20"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kInt, "2.5"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kInt, "abc"));

  EXPECT_TRUE(ValueParsesAs(OptionType::kBool, "true"));
  EXPECT_TRUE(ValueParsesAs(OptionType::kBool, "0"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kBool, "2"));
  EXPECT_FALSE(ValueParsesAs(OptionType::kBool, "yes"));

  EXPECT_FALSE(ValueParsesAs(OptionType::kDouble, ""));
}

TEST(MethodOptionsTest, CheckOptionValueEnforcesDeclaredRanges) {
  using release::CheckOptionValue;
  using release::OptionKey;
  using release::OptionType;

  const OptionKey height{"height", OptionType::kInt, 2, 64};
  EXPECT_TRUE(CheckOptionValue(height, "2").ok());
  EXPECT_TRUE(CheckOptionValue(height, "64").ok());
  EXPECT_FALSE(CheckOptionValue(height, "1").ok());   // Below min.
  EXPECT_FALSE(CheckOptionValue(height, "-3").ok());  // The fitter CHECKs.
  EXPECT_FALSE(CheckOptionValue(height, "65").ok());  // Above max.
  EXPECT_FALSE(CheckOptionValue(height, "2.5").ok());  // Not an integer.

  // Open bounds: the (0, 1) budget-fraction case.
  const OptionKey fraction{"fraction", OptionType::kDouble, 0, 1, true};
  EXPECT_TRUE(CheckOptionValue(fraction, "0.5").ok());
  EXPECT_FALSE(CheckOptionValue(fraction, "0").ok());
  EXPECT_FALSE(CheckOptionValue(fraction, "1").ok());
  EXPECT_FALSE(CheckOptionValue(fraction, "nan").ok());

  // An unbounded key still screens the type, and rejects NaN.
  const OptionKey theta{"theta", OptionType::kDouble};
  EXPECT_TRUE(CheckOptionValue(theta, "-12.25").ok());
  EXPECT_FALSE(CheckOptionValue(theta, "nan").ok());
  EXPECT_FALSE(CheckOptionValue(theta, "oops").ok());

  // Booleans have no range.
  const OptionKey flag{"flag", OptionType::kBool};
  EXPECT_TRUE(CheckOptionValue(flag, "true").ok());
  EXPECT_FALSE(CheckOptionValue(flag, "2").ok());
}

TEST(MethodOptionsTest, KnownKeysPass) {
  const MethodOptions options = MethodOptions::Parse("cell_scale=2");
  RequireKnownKeys(options, {"cell_scale", "c0"});  // Must not abort.
}

TEST(MethodOptionsDeathTest, MalformedEntryAborts) {
  EXPECT_DEATH(MethodOptions::Parse("novalue"), "malformed");
  EXPECT_DEATH(MethodOptions::Parse("=5"), "malformed");
}

TEST(MethodOptionsDeathTest, NonNumericValueAborts) {
  const MethodOptions options = MethodOptions::Parse("k=abc");
  EXPECT_DEATH(options.GetDouble("k", 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(options.GetInt("k", 0), "PRIVTREE_CHECK");
  EXPECT_DEATH(options.GetBool("k", false), "non-boolean");
}

TEST(MethodOptionsDeathTest, UnknownKeyAborts) {
  const MethodOptions options = MethodOptions::Parse("cel_scale=2");
  EXPECT_DEATH(RequireKnownKeys(options, {"cell_scale", "c0"}),
               "unknown method option");
}

}  // namespace
}  // namespace privtree
