// Cross-version envelope compatibility.  v3 compressed the per-backend
// payloads; spill directories written by the previous release are v2, and
// the contract is that they load forever, bit for bit.  These tests craft
// genuine v2 envelopes — same header layout, same raw payloads the old
// writers produced — by transcoding a fresh v3 save through the public
// codecs, then pin:
//
//  * v2 loads answer queries bitwise-identically to the v3 round-trip;
//  * re-saving a v2-loaded synopsis upgrades it to byte-identical v3
//    (so a warm restart transparently migrates old spill files);
//  * the compressed tree-family envelopes are at least 2× smaller than
//    their v2 form (the perf_opt acceptance bar);
//  * the opt-in `count_quantum` knob round-trips bitwise and shrinks the
//    envelope further;
//  * a *valid-checksum* envelope wrapping a corrupted compressed payload —
//    the adversarial case the body checksum cannot catch — fails cleanly
//    or loads something re-saveable, never crashes (swept under ASan in
//    CI's hardening job).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/byteio.h"
#include "core/codec.h"
#include "core/tree.h"
#include "dp/budget.h"
#include "dp/rng.h"
#include "eval/workload.h"
#include "hist/ag.h"
#include "hist/grid_codec.h"
#include "release/registry.h"
#include "release/sequence_query.h"
#include "release/serialization.h"
#include "release/session.h"
#include "spatial/box.h"
#include "spatial/point_set.h"
#include "spatial/serialization.h"
#include "spatial/spatial_histogram.h"

namespace privtree::release {
namespace {

PointSet TestPoints(std::size_t n = 4000, std::uint64_t seed = 0x5EED) {
  Rng rng(seed);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble() * rng.NextDouble();  // Skewed, so trees split.
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::unique_ptr<Method> FitSpatial(const std::string& name,
                                   const MethodOptions& options,
                                   const PointSet& points,
                                   std::uint64_t seed) {
  auto method = GlobalMethodRegistry().Create(name, options);
  PrivacyBudget budget(1.0);
  Rng rng(seed);
  method->Fit(points, Box::UnitCube(2), budget, rng);
  return method;
}

std::string SaveToString(const Method& method) {
  std::ostringstream out;
  EXPECT_TRUE(method.Save(out).ok());
  return std::move(out).str();
}

Result<std::unique_ptr<Method>> LoadFromString(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadMethod(in);
}

/// The envelope pulled apart: header fields checked, body fields parsed,
/// per-backend payload left as raw bytes.
struct ParsedEnvelope {
  MethodMetadata metadata;
  std::string options_text;
  std::string payload;
};

constexpr std::size_t kV3HeaderSize = 36;  // See release/serialization.h.

ParsedEnvelope ParseV3(const std::string& bytes) {
  ParsedEnvelope parsed;
  EXPECT_GE(bytes.size(), kV3HeaderSize);
  EXPECT_EQ(bytes.substr(0, 8), kSynopsisMagic);
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, kSynopsisFormatVersion);

  ByteReader body(std::string_view(bytes).substr(kV3HeaderSize));
  std::uint64_t dim = 0, synopsis_size = 0;
  std::int32_t height = 0;
  EXPECT_TRUE(body.Str(&parsed.metadata.method));
  EXPECT_TRUE(body.Str(&parsed.options_text));
  EXPECT_TRUE(body.U64(&dim));
  EXPECT_TRUE(body.F64(&parsed.metadata.epsilon_spent));
  EXPECT_TRUE(body.U64(&synopsis_size));
  EXPECT_TRUE(body.I32(&height));
  parsed.metadata.dim = static_cast<std::size_t>(dim);
  parsed.metadata.synopsis_size = static_cast<std::size_t>(synopsis_size);
  parsed.metadata.height = height;
  parsed.payload = bytes.substr(bytes.size() - body.remaining());
  return parsed;
}

/// Re-encodes a v3 compressed payload into the raw v2 payload the previous
/// release wrote, through the public codecs (so the bytes are exactly what
/// an old spill file holds).
std::string TranscodePayloadToV2(const ParsedEnvelope& env) {
  const std::string& name = env.metadata.method;
  ByteReader in(env.payload);
  std::string v2;
  ByteWriter out(&v2);
  if (name == "privtree" || name == "simpletree") {
    DecompTree<SpatialCell> tree;
    std::vector<double> counts;
    EXPECT_TRUE(ReadSpatialTreeBodyCompressed(in, env.metadata.dim, &tree,
                                              &counts)
                    .ok());
    WriteSpatialTreeBody(out, tree, counts);
  } else if (name == "kdtree") {
    DecompTree<Box> tree;
    std::vector<double> counts;
    EXPECT_TRUE(
        ReadBoxTreeBodyCompressed(in, env.metadata.dim, &tree, &counts).ok());
    WriteBoxTreeBody(out, tree, counts);
  } else if (name == "ag") {
    auto grid = ReadAdaptiveGridBodyCompressed(in);
    EXPECT_TRUE(grid.ok()) << grid.status().ToString();
    const std::int64_t m1 = grid.value().level1_granularity();
    out.I64(m1);
    WriteBox(out, grid.value().domain());
    out.F64Span(grid.value().level1_counts());
    for (const GridHistogram& sub : grid.value().level2()) {
      WriteGridHistogram(out, sub);
    }
  } else if (name == "pst_privtree" || name == "ngram") {
    std::uint64_t n = 0;
    std::string packed;
    std::vector<NodeId> parents;
    EXPECT_TRUE(in.U64(&n));
    EXPECT_TRUE(in.Str(&packed));
    EXPECT_TRUE(UnpackDeltaI32(packed, n, &parents));
    out.U64(n);
    if (name == "pst_privtree") {
      const std::size_t beta = env.metadata.dim + 1;  // dim = alphabet size.
      for (std::uint64_t i = 0; i < n; ++i) {
        std::vector<double> hist;
        EXPECT_TRUE(in.F64Vec(beta, &hist));
        out.I32(parents[i]);
        out.F64Span(hist);
      }
    } else {
      std::vector<double> counts;
      EXPECT_TRUE(in.F64Vec(n, &counts));
      for (std::uint64_t i = 0; i < n; ++i) {
        out.I32(parents[i]);
        out.F64(counts[i]);
      }
    }
  } else {
    ADD_FAILURE() << "no v2 transcoder for " << name;
  }
  EXPECT_TRUE(in.AtEnd()) << name << " payload not fully consumed";
  return v2;
}

std::string CraftV2Envelope(const ParsedEnvelope& env,
                            const std::string& v2_payload) {
  std::ostringstream out;
  EXPECT_TRUE(WriteSynopsis(out, env.metadata, env.options_text, v2_payload,
                            kSynopsisFormatVersionV2)
                  .ok());
  return std::move(out).str();
}

TEST(EnvelopeCompatTest, V2SpatialEnvelopesLoadBitForBitAndUpgradeOnSave) {
  const PointSet points = TestPoints();
  Rng query_rng(0xBEEF);
  const std::vector<Box> queries = GenerateRangeQueries(
      Box::UnitCube(2), 60, kMediumQueries, query_rng);

  struct Case {
    std::string name;
    MethodOptions options;
  };
  const std::vector<Case> cases = {
      {"privtree", {}},
      {"simpletree", {{"height", "5"}}},
      {"kdtree", {{"height", "6"}}},
      {"ag", {}},
  };
  std::uint64_t seed = 31;
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const auto fitted = FitSpatial(c.name, c.options, points, seed++);
    const std::string v3_bytes = SaveToString(*fitted);
    const ParsedEnvelope env = ParseV3(v3_bytes);
    const std::string v2_bytes = CraftV2Envelope(env, TranscodePayloadToV2(env));

    auto loaded = LoadFromString(v2_bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    const MethodMetadata want = fitted->Metadata();
    const MethodMetadata got = loaded.value()->Metadata();
    EXPECT_EQ(got.method, want.method);
    EXPECT_EQ(got.epsilon_spent, want.epsilon_spent);
    EXPECT_EQ(got.synopsis_size, want.synopsis_size);
    EXPECT_EQ(got.height, want.height);

    const std::vector<double> want_batch = fitted->QueryBatch(queries);
    const std::vector<double> got_batch = loaded.value()->QueryBatch(queries);
    ASSERT_EQ(got_batch.size(), want_batch.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got_batch[i], want_batch[i]) << "query " << i;
    }
    EXPECT_EQ(loaded.value()->Query(queries.front()),
              fitted->Query(queries.front()));

    // Re-saving the v2 load writes the v3 envelope byte-for-byte: an old
    // spill file migrates to the compressed format with nothing lost.
    EXPECT_EQ(SaveToString(*loaded.value()), v3_bytes);
  }
}

TEST(EnvelopeCompatTest, V2SequenceEnvelopesLoadBitForBitAndUpgradeOnSave) {
  Rng rng(0x5EC7E57);
  SequenceDataset data(4);
  std::vector<Symbol> s;
  for (std::size_t i = 0; i < 400; ++i) {
    s.clear();
    const std::size_t len = 1 + rng.NextBounded(14);
    Symbol last = static_cast<Symbol>(rng.NextBounded(4));
    for (std::size_t j = 0; j < len; ++j) {
      last = static_cast<Symbol>(rng.NextDouble() < 0.6 ? last
                                                        : rng.NextBounded(4));
      s.push_back(last);
    }
    data.Add(s);
  }
  const SequenceDataset sequences = data.Truncate(12);
  MethodOptions options;
  options.Set("l_top", "12");

  std::vector<SequenceQuery> queries;
  queries.push_back(SequenceQuery::Frequency({0}));
  queries.push_back(SequenceQuery::Frequency({1, 2}));
  queries.push_back(SequenceQuery::PrefixCount({0, 1}));
  queries.push_back(SequenceQuery::TopK(5, 3));

  for (const char* name : {"pst_privtree", "ngram"}) {
    SCOPED_TRACE(name);
    ReleaseSession session(sequences, 1.0, 0xC0FFEE);
    const auto fitted = session.ReleaseRemaining(name, options);
    const std::string v3_bytes = SaveToString(*fitted);
    const ParsedEnvelope env = ParseV3(v3_bytes);
    const std::string v2_bytes = CraftV2Envelope(env, TranscodePayloadToV2(env));

    auto loaded = LoadFromString(v2_bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::vector<double> want = fitted->QueryBatch(std::span(queries));
    const std::vector<double> got =
        loaded.value()->QueryBatch(std::span(queries));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "query " << i;
    }
    EXPECT_EQ(SaveToString(*loaded.value()), v3_bytes);
  }
}

TEST(EnvelopeCompatTest, CompressedTreeEnvelopesAreAtLeastHalfTheSize) {
  // The perf_opt acceptance bar: v3 tree-family envelopes at ≤ half their
  // v2 size (BENCH_kernels.json records the measured ratios).
  const PointSet points = TestPoints();
  std::uint64_t seed = 47;
  for (const char* name : {"privtree", "simpletree", "kdtree"}) {
    SCOPED_TRACE(name);
    MethodOptions options;
    if (std::string(name) != "privtree") options.Set("height", "6");
    const auto fitted = FitSpatial(name, options, points, seed++);
    const std::string v3_bytes = SaveToString(*fitted);
    const ParsedEnvelope env = ParseV3(v3_bytes);
    const std::string v2_bytes = CraftV2Envelope(env, TranscodePayloadToV2(env));
    EXPECT_LE(v3_bytes.size() * 2, v2_bytes.size())
        << "v3=" << v3_bytes.size() << " v2=" << v2_bytes.size();
  }
  // AG's payload is dominated by incompressible noisy doubles; the codec
  // still strictly shrinks it (dropped boxes, packed granularities).
  const auto ag = FitSpatial("ag", {}, points, seed);
  const std::string ag_v3 = SaveToString(*ag);
  const ParsedEnvelope ag_env = ParseV3(ag_v3);
  EXPECT_LT(ag_v3.size(),
            CraftV2Envelope(ag_env, TranscodePayloadToV2(ag_env)).size());
}

TEST(EnvelopeCompatTest, QuantizedCountsRoundTripBitwiseAndShrinkFurther) {
  const PointSet points = TestPoints();
  Rng query_rng(0xBEEF);
  const std::vector<Box> queries = GenerateRangeQueries(
      Box::UnitCube(2), 40, kMediumQueries, query_rng);

  const auto raw = FitSpatial("privtree", {}, points, 61);
  const auto quantized = FitSpatial(
      "privtree", {{"count_quantum", "0.5"}}, points, 61);

  // The quantized synopsis round-trips bit for bit like any other...
  const std::string bytes = SaveToString(*quantized);
  auto loaded = LoadFromString(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const std::vector<double> want = quantized->QueryBatch(queries);
  const std::vector<double> got = loaded.value()->QueryBatch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "query " << i;
  }
  EXPECT_EQ(SaveToString(*loaded.value()), bytes);

  // ...and the integer count section beats the raw-doubles envelope.
  EXPECT_LT(bytes.size(), SaveToString(*raw).size());
}

class CompressedPayloadCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const PointSet points = TestPoints(1500);
    envelopes_.push_back(SaveToString(*FitSpatial("privtree", {}, points, 7)));
    envelopes_.push_back(SaveToString(*FitSpatial("ag", {}, points, 7)));

    Rng rng(0x5EC);
    SequenceDataset data(4);
    std::vector<Symbol> s;
    for (std::size_t i = 0; i < 150; ++i) {
      s.clear();
      for (std::size_t j = 0; j <= rng.NextBounded(10); ++j) {
        s.push_back(static_cast<Symbol>(rng.NextBounded(4)));
      }
      data.Add(s);
    }
    MethodOptions options;
    options.Set("l_top", "10");
    const SequenceDataset truncated = data.Truncate(10);
    ReleaseSession session(truncated, 1.0, 0x11);
    envelopes_.push_back(
        SaveToString(*session.ReleaseRemaining("pst_privtree", options)));
  }

  std::vector<std::string> envelopes_;
};

TEST_F(CompressedPayloadCorruptionTest, EveryTruncationFailsCleanly) {
  for (const std::string& bytes : envelopes_) {
    const std::size_t step = std::max<std::size_t>(1, bytes.size() / 211);
    for (std::size_t len = 0; len < bytes.size(); len += step) {
      auto loaded = LoadFromString(bytes.substr(0, len));
      EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    }
  }
}

TEST_F(CompressedPayloadCorruptionTest, EveryBitFlipFailsCleanly) {
  for (const std::string& original : envelopes_) {
    const std::size_t step = std::max<std::size_t>(1, original.size() / 149);
    for (std::size_t pos = 0; pos < original.size(); pos += step) {
      std::string flipped = original;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << (pos % 8)));
      auto loaded = LoadFromString(flipped);
      EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
    }
  }
}

TEST_F(CompressedPayloadCorruptionTest,
       ValidChecksumOverCorruptPayloadNeverCrashes) {
  // The body checksum catches a flipped *file*; here the adversary writes
  // a whole new envelope (valid header, valid checksum) around a damaged
  // compressed payload, so the decoders themselves must reject or survive
  // every byte: lying element counts, impossible bit widths, truncated
  // code streams, hostile granularities.  ASan in CI turns any overread
  // into a hard failure.
  for (const std::string& bytes : envelopes_) {
    const ParsedEnvelope env = ParseV3(bytes);
    const std::size_t step = std::max<std::size_t>(1, env.payload.size() / 97);
    for (std::size_t pos = 0; pos < env.payload.size(); pos += step) {
      for (const unsigned char mask : {0x01, 0x80, 0xff}) {
        ParsedEnvelope hostile = env;
        hostile.payload[pos] =
            static_cast<char>(hostile.payload[pos] ^ mask);
        std::ostringstream out;
        ASSERT_TRUE(WriteSynopsis(out, hostile.metadata, hostile.options_text,
                                  hostile.payload)
                        .ok());
        auto loaded = LoadFromString(std::move(out).str());
        // Most flips must fail; a benign flip (e.g. inside a stored double)
        // may load — then the synopsis must still be fully functional.
        if (loaded.ok()) {
          std::ostringstream resaved;
          EXPECT_TRUE(loaded.value()->Save(resaved).ok());
        }
      }
    }
    // Truncating the payload inside a valid envelope must always fail: the
    // decoders demand full consumption.
    for (std::size_t len = 0; len < env.payload.size();
         len += std::max<std::size_t>(1, env.payload.size() / 53)) {
      ParsedEnvelope hostile = env;
      hostile.payload.resize(len);
      std::ostringstream out;
      ASSERT_TRUE(WriteSynopsis(out, hostile.metadata, hostile.options_text,
                                hostile.payload)
                      .ok());
      EXPECT_FALSE(LoadFromString(std::move(out).str()).ok())
          << env.metadata.method << " payload truncated to " << len;
    }
  }
}

}  // namespace
}  // namespace privtree::release
