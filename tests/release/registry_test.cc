#include "release/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dp/budget.h"
#include "dp/rng.h"
#include "release/builtin_methods.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet MakePoints(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  PointSet points(dim);
  std::vector<double> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    // Mildly skewed so tree methods actually split.
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = rng.NextDouble() * rng.NextDouble();
    }
    points.Add(p);
  }
  return points;
}

TEST(RegistryTest, AllBuiltinsAreRegistered) {
  const auto names = release::GlobalMethodRegistry().Names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want = {
      "privtree",  "simpletree", "ug",    "ag",           "kdtree",
      "dawa",      "hierarchy",  "wavelet",
      // The sequence pipeline (Sections 4–5) registers alongside.
      "pst_privtree", "ngram"};
  EXPECT_EQ(got, want);
}

TEST(RegistryTest, NamesFilterByKind) {
  auto& registry = release::GlobalMethodRegistry();
  const auto sequence = registry.Names(release::DatasetKind::kSequence);
  EXPECT_EQ(sequence,
            (std::vector<std::string>{"ngram", "pst_privtree"}));
  EXPECT_EQ(registry.Names(release::DatasetKind::kSpatial).size(), 8u);
  EXPECT_EQ(registry.Kind("privtree"), release::DatasetKind::kSpatial);
  EXPECT_EQ(registry.Kind("pst_privtree"),
            release::DatasetKind::kSequence);
  EXPECT_EQ(registry.Kind("ngram"), release::DatasetKind::kSequence);
}

TEST(RegistryTest, DescriptionsAreNonEmpty) {
  auto& registry = release::GlobalMethodRegistry();
  for (const std::string& name : registry.Names()) {
    EXPECT_FALSE(registry.Description(name).empty()) << name;
  }
}

// The advertised option keys must be exactly what each factory accepts:
// constructing with all allowed keys set must succeed (a factory rejecting
// an advertised key, or advertising a key it rejects, breaks user-facing
// validation).
TEST(RegistryTest, AllowedKeysAreAccepted) {
  auto& registry = release::GlobalMethodRegistry();
  for (const std::string& name : registry.Names()) {
    SCOPED_TRACE(name);
    EXPECT_FALSE(registry.AllowedKeys(name).empty());
    release::MethodOptions options;
    for (const release::OptionKey& key : registry.AllowedKeys(name)) {
      options.Set(key.name, "1");  // Valid for int, double, and bool keys.
    }
    EXPECT_NE(registry.Create(name, options), nullptr);
  }
}

// Every registered name constructs, fits on a small 2-d dataset, and
// answers a smoke query; the whole round-trip is deterministic under a
// fixed seed.
TEST(RegistryTest, EveryMethodRoundTripsDeterministically) {
  const PointSet points = MakePoints(500, 2, 0x5EED);
  const Box domain = Box::UnitCube(2);
  const Box query({0.1, 0.2}, {0.4, 0.6});
  auto& registry = release::GlobalMethodRegistry();

  for (const std::string& name :
       registry.Names(release::DatasetKind::kSpatial)) {
    SCOPED_TRACE(name);
    release::MethodOptions options;
    if (name == "dawa" || name == "wavelet") {
      options.Set("target_total_cells", "4096");  // Keep the test fast.
    }

    double first = 0.0;
    for (int trial = 0; trial < 2; ++trial) {
      auto method = registry.Create(name, options);
      PrivacyBudget budget(1.0);
      Rng rng(0xF17);
      method->Fit(points, domain, budget, rng);

      // The Fit contract: the entire slice is consumed.
      EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
      const auto metadata = method->Metadata();
      EXPECT_EQ(metadata.method, name);
      EXPECT_EQ(metadata.dim, 2u);
      EXPECT_NEAR(metadata.epsilon_spent, 1.0, 1e-12);
      EXPECT_GT(metadata.synopsis_size, 0u);

      const double answer = method->Query(query);
      EXPECT_TRUE(std::isfinite(answer));
      if (trial == 0) {
        first = answer;
      } else {
        EXPECT_EQ(answer, first) << "non-deterministic under fixed seed";
      }
    }
  }
}

// QueryBatch must agree with per-query Query for every method, including
// the batched tree-sweep overrides.
TEST(RegistryTest, QueryBatchMatchesQuery) {
  const PointSet points = MakePoints(800, 2, 0xBA7C4);
  const Box domain = Box::UnitCube(2);
  std::vector<Box> queries;
  Rng qrng(0x9E37);
  for (int i = 0; i < 50; ++i) {
    const double x = qrng.NextDouble() * 0.8;
    const double y = qrng.NextDouble() * 0.8;
    queries.emplace_back(std::vector<double>{x, y},
                         std::vector<double>{x + 0.2 * qrng.NextDouble(),
                                             y + 0.2 * qrng.NextDouble()});
  }

  auto& registry = release::GlobalMethodRegistry();
  for (const std::string& name :
       registry.Names(release::DatasetKind::kSpatial)) {
    SCOPED_TRACE(name);
    release::MethodOptions options;
    if (name == "dawa" || name == "wavelet") {
      options.Set("target_total_cells", "4096");
    }
    auto method = registry.Create(name, options);
    PrivacyBudget budget(1.0);
    Rng rng(0xABCD);
    method->Fit(points, domain, budget, rng);

    const std::vector<double> batch = method->QueryBatch(queries);
    ASSERT_EQ(batch.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const double single = method->Query(queries[q]);
      // Identical classification; only summation order may differ.
      EXPECT_NEAR(batch[q], single,
                  1e-9 * (1.0 + std::abs(single)))
          << "query " << q;
    }
  }
}

TEST(RegistryTest, RequiredDimMarksAgAsTwoDimensional) {
  auto& registry = release::GlobalMethodRegistry();
  EXPECT_EQ(registry.RequiredDim("ag"), 2u);
  EXPECT_EQ(registry.RequiredDim("privtree"), 0u);
  EXPECT_EQ(registry.RequiredDim("ug"), 0u);
}

TEST(RegistryTest, EntriesCarryDisplayAndDimMetadata) {
  auto& registry = release::GlobalMethodRegistry();
  EXPECT_EQ(registry.Get("privtree").display, "PrivTree");
  EXPECT_EQ(registry.Get("wavelet").display, "Privelet*");
  EXPECT_EQ(registry.Get("hierarchy").max_practical_dim, 2u);
  EXPECT_EQ(registry.Get("privtree").max_practical_dim, 0u);
}

TEST(RegistryTest, PrivateRegistryIsIndependent) {
  release::MethodRegistry registry;
  EXPECT_FALSE(registry.Contains("privtree"));
  release::RegisterBuiltinMethods(registry);
  EXPECT_TRUE(registry.Contains("privtree"));
  EXPECT_TRUE(registry.Contains("pst_privtree"));
  EXPECT_EQ(registry.Names().size(), 10u);
}

TEST(RegistryDeathTest, UnknownMethodAborts) {
  EXPECT_DEATH(release::GlobalMethodRegistry().Create("no-such-method"),
               "unknown method");
}

TEST(RegistryDeathTest, UnknownOptionKeyAborts) {
  release::MethodOptions options;
  options.Set("not_an_option", "1");
  EXPECT_DEATH(release::GlobalMethodRegistry().Create("ug", options),
               "unknown method option");
}

TEST(RegistryDeathTest, DuplicateRegistrationAborts) {
  release::MethodRegistry registry;
  release::RegisterBuiltinMethods(registry);
  EXPECT_DEATH(release::RegisterBuiltinMethods(registry), "duplicate");
}

}  // namespace
}  // namespace privtree
