#include "release/session.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "release/options.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree {
namespace {

PointSet MakePoints(std::size_t n) {
  Rng rng(0x10AD);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

TEST(ReleaseSessionTest, TracksBudgetAcrossReleases) {
  const PointSet points = MakePoints(400);
  release::ReleaseSession session(points, Box::UnitCube(2), 1.0, 7);
  EXPECT_DOUBLE_EQ(session.budget().remaining(), 1.0);

  const auto ug = session.Release("ug", 0.4);
  EXPECT_NEAR(session.budget().remaining(), 0.6, 1e-12);
  EXPECT_NEAR(ug->Metadata().epsilon_spent, 0.4, 1e-12);

  const auto privtree = session.ReleaseRemaining("privtree");
  EXPECT_NEAR(session.budget().remaining(), 0.0, 1e-12);
  EXPECT_NEAR(privtree->Metadata().epsilon_spent, 0.6, 1e-12);
}

TEST(ReleaseSessionTest, DeterministicUnderFixedSeed) {
  const PointSet points = MakePoints(400);
  const Box query({0.1, 0.1}, {0.5, 0.5});
  double answers[2];
  for (int trial = 0; trial < 2; ++trial) {
    release::ReleaseSession session(points, Box::UnitCube(2), 1.0, 0xABC);
    answers[trial] = session.ReleaseRemaining("privtree")->Query(query);
  }
  EXPECT_EQ(answers[0], answers[1]);
}

// Each release gets an independently forked stream: adding a second
// release must not change the randomness (and hence the answers) of the
// first.
TEST(ReleaseSessionTest, EarlierReleasesUnperturbedByLaterOnes) {
  const PointSet points = MakePoints(400);
  const Box query({0.2, 0.2}, {0.7, 0.7});

  release::ReleaseSession one(points, Box::UnitCube(2), 1.0, 99);
  const double solo = one.Release("ug", 0.5)->Query(query);

  release::ReleaseSession two(points, Box::UnitCube(2), 1.0, 99);
  const double first = two.Release("ug", 0.5)->Query(query);
  two.Release("simpletree", 0.5);
  EXPECT_EQ(solo, first);
}

TEST(ReleaseSessionTest, PassesOptionsThrough) {
  const PointSet points = MakePoints(400);
  release::ReleaseSession session(points, Box::UnitCube(2), 1.0, 3);
  const auto method = session.ReleaseRemaining(
      "simpletree", release::MethodOptions{{"height", "4"}});
  EXPECT_LE(method->Metadata().height, 4);
}

TEST(ReleaseSessionDeathTest, OverspendAborts) {
  const PointSet points = MakePoints(100);
  release::ReleaseSession session(points, Box::UnitCube(2), 1.0, 7);
  session.Release("ug", 0.8);
  EXPECT_DEATH(session.Release("ug", 0.5), "PRIVTREE_CHECK");
}

TEST(ReleaseSessionDeathTest, DimensionMismatchAborts) {
  const PointSet points = MakePoints(100);  // 2-d.
  EXPECT_DEATH(
      release::ReleaseSession(points, Box::UnitCube(3), 1.0, 7),
      "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
