// release::Dataset: the tagged view both pipelines fit through, and the
// kind-separated fingerprints that key the serving cache.  The headline
// test engineers a spatial dataset and a sequence dataset whose raw
// content words are *identical* — the collision a kind-blind fingerprint
// would admit — and verifies the tagged fingerprints keep them apart all
// the way into SynopsisCache.
#include "release/dataset.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "release/method.h"
#include "seq/sequence.h"
#include "serve/synopsis_cache.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::release {
namespace {

SequenceDataset SmallSequences() {
  SequenceDataset data(3);
  const std::vector<Symbol> a = {0, 1, 2};
  const std::vector<Symbol> b = {2, 2};
  data.Add(a);
  data.Add(b, /*has_end=*/false);
  return data;
}

TEST(DatasetTest, KindAccessors) {
  PointSet points(2);
  points.Add(std::vector<double>{0.25, 0.5});
  const Box domain = Box::UnitCube(2);
  const Dataset spatial(points, domain);
  EXPECT_TRUE(spatial.is_spatial());
  EXPECT_FALSE(spatial.is_sequence());
  EXPECT_EQ(spatial.kind(), DatasetKind::kSpatial);
  EXPECT_EQ(spatial.dim(), 2u);
  EXPECT_EQ(spatial.size(), 1u);
  EXPECT_EQ(&spatial.points(), &points);

  const SequenceDataset sequences = SmallSequences();
  const Dataset seq(sequences);
  EXPECT_TRUE(seq.is_sequence());
  EXPECT_EQ(seq.kind(), DatasetKind::kSequence);
  EXPECT_EQ(seq.dim(), 3u);  // Alphabet size.
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_EQ(&seq.sequences(), &sequences);
}

TEST(DatasetDeathTest, WrongKindAccessorsAbort) {
  const SequenceDataset sequences = SmallSequences();
  const Dataset seq(sequences);
  EXPECT_DEATH(seq.points(), "is_spatial");
  EXPECT_DEATH(seq.domain(), "is_spatial");

  PointSet points(1);
  points.Add(std::vector<double>{0.5});
  const Dataset spatial(points, Box::UnitCube(1));
  EXPECT_DEATH(spatial.sequences(), "is_sequence");
}

TEST(DatasetTest, FingerprintIsDeterministicAndContentSensitive) {
  const SequenceDataset a = SmallSequences();
  const SequenceDataset b = SmallSequences();
  EXPECT_EQ(Dataset(a).Fingerprint(), Dataset(b).Fingerprint());

  // Any content difference — a symbol, a length, a lost end marker —
  // perturbs the digest.
  SequenceDataset symbol_changed(3);
  symbol_changed.Add(std::vector<Symbol>{0, 1, 1});
  symbol_changed.Add(std::vector<Symbol>{2, 2}, false);
  EXPECT_NE(Dataset(a).Fingerprint(),
            Dataset(symbol_changed).Fingerprint());

  SequenceDataset end_changed(3);
  end_changed.Add(std::vector<Symbol>{0, 1, 2});
  end_changed.Add(std::vector<Symbol>{2, 2}, true);
  EXPECT_NE(Dataset(a).Fingerprint(), Dataset(end_changed).Fingerprint());
}

/// The collision a kind-blind fingerprint admits *today*: both digests mix
/// plain 64-bit words, so a sequence dataset whose
/// (alphabet, size, encoded length, symbols) words equal a spatial
/// dataset's (dim, size, coordinate bits, bound bits) words hashes
/// identically without the kind tag.  Doubles whose bit patterns are tiny
/// integers (0.0 and denormals) make the construction concrete.
TEST(DatasetTest, CrossKindContentCollisionIsSeparatedByKindTag) {
  // Sequence words: [alphabet=2, size=1, (len=5)<<1|end=1 -> 11,
  //                  symbols 1,0,1,0,1].
  SequenceDataset sequences(2);
  sequences.Add(std::vector<Symbol>{1, 0, 1, 0, 1}, /*has_end=*/true);

  // Spatial words: [dim=2, size=1, bits(x)=11, bits(y)=1,
  //                 bits(lo0)=0, bits(hi0)=1, bits(lo1)=0, bits(hi1)=1].
  PointSet points(2);
  points.Add(std::vector<double>{std::bit_cast<double>(std::uint64_t{11}),
                                 std::bit_cast<double>(std::uint64_t{1})});
  const double tiny = std::bit_cast<double>(std::uint64_t{1});
  const Box domain({0.0, 0.0}, {tiny, tiny});

  const Dataset seq(sequences);
  const Dataset spatial(points, domain);
  // The raw content words collide...
  ASSERT_EQ(seq.UntaggedContentDigest(), spatial.UntaggedContentDigest());
  // ...and the kind tag is what keeps the cache keys apart.
  EXPECT_NE(seq.Fingerprint(), spatial.Fingerprint());
  EXPECT_EQ(serve::DatasetFingerprint(sequences), seq.Fingerprint());
  EXPECT_EQ(serve::DatasetFingerprint(points, domain),
            spatial.Fingerprint());
}

/// The same pair must occupy two distinct SynopsisCache slots: with
/// kind-blind fingerprints the second GetOrFit would serve the first
/// kind's synopsis.
TEST(DatasetTest, CollidingContentGetsDistinctCacheEntries) {
  SequenceDataset sequences(2);
  sequences.Add(std::vector<Symbol>{1, 0, 1, 0, 1}, true);
  PointSet points(2);
  points.Add(std::vector<double>{std::bit_cast<double>(std::uint64_t{11}),
                                 std::bit_cast<double>(std::uint64_t{1})});
  const double tiny = std::bit_cast<double>(std::uint64_t{1});
  const Box domain({0.0, 0.0}, {tiny, tiny});
  ASSERT_EQ(Dataset(sequences).UntaggedContentDigest(),
            Dataset(points, domain).UntaggedContentDigest());

  serve::SynopsisCache cache(8);
  // Identical method/options/ε/rng — only the dataset fingerprint keeps
  // the keys apart.
  serve::SynopsisKey seq_key{Dataset(sequences).Fingerprint(), "privtree",
                             "", 1.0, 7};
  serve::SynopsisKey spatial_key{Dataset(points, domain).Fingerprint(),
                                 "privtree", "", 1.0, 7};
  EXPECT_NE(seq_key, spatial_key);

  int fits = 0;
  const auto fit_counting = [&]() -> std::shared_ptr<const Method> {
    ++fits;
    // The cache never inspects the synopsis; a null-free stub suffices.
    struct Stub final : Method {
      MethodMetadata Metadata() const override { return {}; }
    };
    return std::make_shared<const Stub>();
  };
  const auto first = cache.GetOrFit(seq_key, fit_counting);
  const auto second = cache.GetOrFit(spatial_key, fit_counting);
  EXPECT_EQ(fits, 2) << "colliding content must not share a cache slot";
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace privtree::release
