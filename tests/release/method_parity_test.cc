// The adapters in release/builtin_methods.cc must be *wrappers*, not
// re-implementations: fitting a registry method under a fixed seed must
// produce bit-for-bit the same released synopsis — and therefore the same
// query answers — as calling the legacy free function / class directly with
// the same Rng seed and ε.  A divergence means the adapter consumed
// randomness or budget differently, which would silently change every
// published number.
#include <gtest/gtest.h>

#include <vector>

#include "dp/budget.h"
#include "dp/rng.h"
#include "hist/ag.h"
#include "hist/dawa.h"
#include "hist/hierarchy.h"
#include "hist/kdtree.h"
#include "hist/ug.h"
#include "hist/wavelet.h"
#include "release/registry.h"
#include "spatial/box.h"
#include "spatial/point_set.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

constexpr std::uint64_t kSeed = 0xFEEDBEEF;
constexpr double kEpsilon = 0.7;

PointSet TestPoints() {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (int i = 0; i < 600; ++i) {
    p[0] = rng.NextDouble() * rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries() {
  std::vector<Box> queries;
  Rng rng(0x0B0E5);
  for (int i = 0; i < 25; ++i) {
    const double x = rng.NextDouble() * 0.7;
    const double y = rng.NextDouble() * 0.7;
    queries.emplace_back(std::vector<double>{x, y},
                         std::vector<double>{x + 0.3, y + 0.3});
  }
  return queries;
}

/// Fits `name` through the registry under (kSeed, kEpsilon) and answers
/// the shared query set with per-query Query.
std::vector<double> AdapterAnswers(const std::string& name,
                                   const release::MethodOptions& options = {}) {
  auto method = release::GlobalMethodRegistry().Create(name, options);
  PrivacyBudget budget(kEpsilon);
  Rng rng(kSeed);
  method->Fit(TestPoints(), Box::UnitCube(2), budget, rng);
  std::vector<double> out;
  for (const Box& q : TestQueries()) out.push_back(method->Query(q));
  return out;
}

/// EXPECT_EQ on doubles: bit-for-bit, no tolerance.
void ExpectIdentical(const std::vector<double>& adapter,
                     const std::vector<double>& legacy) {
  ASSERT_EQ(adapter.size(), legacy.size());
  for (std::size_t i = 0; i < adapter.size(); ++i) {
    EXPECT_EQ(adapter[i], legacy[i]) << "query " << i;
  }
}

TEST(MethodParityTest, PrivTree) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const SpatialHistogram hist = BuildPrivTreeHistogram(
      points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(hist.Query(q));
  ExpectIdentical(AdapterAnswers("privtree"), legacy);
}

TEST(MethodParityTest, SimpleTree) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const SpatialHistogram hist = BuildSimpleTreeHistogram(
      points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(hist.Query(q));
  ExpectIdentical(AdapterAnswers("simpletree"), legacy);
}

TEST(MethodParityTest, UniformGrid) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const GridHistogram grid =
      BuildUniformGrid(points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(grid.Query(q));
  ExpectIdentical(AdapterAnswers("ug"), legacy);
}

TEST(MethodParityTest, AdaptiveGrid) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const AdaptiveGrid grid(points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(grid.Query(q));
  ExpectIdentical(AdapterAnswers("ag"), legacy);
}

TEST(MethodParityTest, KdTree) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const KdTreeHistogram tree(points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(tree.Query(q));
  ExpectIdentical(AdapterAnswers("kdtree"), legacy);
}

TEST(MethodParityTest, Dawa) {
  const PointSet points = TestPoints();
  DawaOptions options;
  options.target_total_cells = 4096;
  Rng rng(kSeed);
  const GridHistogram grid =
      BuildDawaHistogram(points, Box::UnitCube(2), kEpsilon, options, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(grid.Query(q));
  ExpectIdentical(
      AdapterAnswers("dawa", {{"target_total_cells", "4096"}}), legacy);
}

TEST(MethodParityTest, Hierarchy) {
  const PointSet points = TestPoints();
  Rng rng(kSeed);
  const HierarchyHistogram hier(points, Box::UnitCube(2), kEpsilon, {}, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(hier.Query(q));
  ExpectIdentical(AdapterAnswers("hierarchy"), legacy);
}

TEST(MethodParityTest, Wavelet) {
  const PointSet points = TestPoints();
  PriveletOptions options;
  options.target_total_cells = 4096;
  Rng rng(kSeed);
  const GridHistogram grid = BuildPriveletHistogram(
      points, Box::UnitCube(2), kEpsilon, options, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(grid.Query(q));
  ExpectIdentical(
      AdapterAnswers("wavelet", {{"target_total_cells", "4096"}}), legacy);
}

// Non-default options must also round-trip through the string bag into the
// native option structs.
TEST(MethodParityTest, PrivTreeWithOptions) {
  const PointSet points = TestPoints();
  PrivTreeHistogramOptions options;
  options.dims_per_split = 1;
  options.tree_budget_fraction = 0.3;
  Rng rng(kSeed);
  const SpatialHistogram hist = BuildPrivTreeHistogram(
      points, Box::UnitCube(2), kEpsilon, options, rng);
  std::vector<double> legacy;
  for (const Box& q : TestQueries()) legacy.push_back(hist.Query(q));
  ExpectIdentical(
      AdapterAnswers("privtree", {{"dims_per_split", "1"},
                                  {"tree_budget_fraction", "0.3"}}),
      legacy);
}

}  // namespace
}  // namespace privtree
