// End-to-end integration of the sequence pipeline: synthetic behaviour
// data → truncation → private models (PrivTree-PST, N-gram, EM) → top-k
// mining and synthetic-data generation — miniature Figures 6 and 7.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/seq_gen.h"
#include "dp/budget.h"
#include "dp/quantile.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "seq/em_topk.h"
#include "seq/ngram.h"
#include "seq/pst_privtree.h"
#include "seq/topk.h"

namespace privtree {
namespace {

class SequencePipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 30000;
  static constexpr std::size_t kLTop = 30;
  static constexpr std::size_t kMaxLen = 5;

  void SetUp() override {
    Rng data_rng(4242);
    raw_ = std::make_unique<SequenceDataset>(GenerateMoocLike(kN, data_rng));
    truncated_ = std::make_unique<SequenceDataset>(raw_->Truncate(kLTop));
    exact_topk_ = ExactTopKStrings(*truncated_, 50, kMaxLen);
  }

  double PstPrecision(double epsilon, Rng& rng) const {
    PrivatePstOptions options;
    options.l_top = kLTop;
    const auto result = BuildPrivatePst(*truncated_, epsilon, options, rng);
    const auto found = TopKFromModel(result.model, 50, kMaxLen);
    return TopKPrecision(exact_topk_, found);
  }

  std::unique_ptr<SequenceDataset> raw_;
  std::unique_ptr<SequenceDataset> truncated_;
  TopKStrings exact_topk_;
};

TEST_F(SequencePipelineTest, PstPrecisionGrowsWithEpsilon) {
  Rng rng(1);
  double low = 0.0, high = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    low += PstPrecision(0.05, rng);
    high += PstPrecision(1.6, rng);
  }
  EXPECT_GE(high, low);
  EXPECT_GT(high / kReps, 0.5);
}

TEST_F(SequencePipelineTest, PstBeatsEmAtModerateBudget) {
  // Figure 6's headline: PrivTree ≫ EM.
  Rng rng(2);
  double pst_precision = 0.0, em_precision = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    pst_precision += PstPrecision(0.8, rng);
    EmTopKOptions em_options;
    em_options.l_top = kLTop;
    const auto em = EmTopKStrings(*truncated_, 0.8, 50, em_options, rng);
    em_precision += TopKPrecision(exact_topk_, em);
  }
  EXPECT_GT(pst_precision, em_precision);
}

TEST_F(SequencePipelineTest, PstAtLeastMatchesNgramAtModerateBudget) {
  Rng rng(3);
  double pst_precision = 0.0, ngram_precision = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    pst_precision += PstPrecision(0.8, rng);
    NgramOptions ngram_options;
    ngram_options.l_top = kLTop;
    const NgramModel ngram(*truncated_, 0.8, ngram_options, rng);
    ngram_precision +=
        TopKPrecision(exact_topk_, TopKFromModel(ngram, 50, kMaxLen));
  }
  EXPECT_GE(pst_precision + 0.15, ngram_precision);
}

TEST_F(SequencePipelineTest, SyntheticLengthDistributionIsClose) {
  // Figure 7: the PST's synthetic data approximates the length
  // distribution well at large ε.
  Rng rng(4);
  PrivatePstOptions options;
  options.l_top = kLTop;
  const auto result = BuildPrivatePst(*truncated_, 1.6, options, rng);
  SequenceDataset synthetic(truncated_->alphabet_size());
  for (std::size_t i = 0; i < 5000; ++i) {
    synthetic.Add(result.model.SampleSequence(rng, kLTop));
  }
  const auto real_hist = truncated_->LengthHistogram();
  const auto synth_hist = synthetic.LengthHistogram();
  const double tvd = TotalVariationDistance(
      std::vector<double>(real_hist.begin(), real_hist.end()),
      std::vector<double>(synth_hist.begin(), synth_hist.end()));
  EXPECT_LT(tvd, 0.2);
}

TEST_F(SequencePipelineTest, PrivateQuantileDrivesTheLengthCap) {
  // Footnote 2's recipe end to end: spend a slice of budget on a private
  // ~95% quantile, use it as l_top, then build the model with the rest.
  Rng rng(6);
  PrivacyBudget budget(1.0);
  std::vector<double> lengths(raw_->size());
  for (std::size_t i = 0; i < raw_->size(); ++i) {
    lengths[i] = static_cast<double>(raw_->LengthWithEnd(i));
  }
  const double quantile_epsilon = budget.SpendFraction(0.05);
  const double q =
      PrivateQuantile(lengths, 0.95, 1.0, 200.0, quantile_epsilon, rng);
  const auto l_top = static_cast<std::size_t>(q) + 1;
  // The mooc generator's 95% quantile is around 30-40.
  EXPECT_GT(l_top, 15u);
  EXPECT_LT(l_top, 80u);
  PrivatePstOptions options;
  options.l_top = l_top;
  const auto result = BuildPrivatePst(raw_->Truncate(l_top),
                                      budget.SpendRemaining(), options, rng);
  EXPECT_GE(result.model.size(), 1u);
}

TEST_F(SequencePipelineTest, TruncateBaselineIsAnUpperReference) {
  // The non-private Truncate baseline answers from the truncated data
  // itself; its "precision" against its own top-k is 1 by construction,
  // and any private method stays at or below it.
  Rng rng(5);
  const double pst = PstPrecision(1.6, rng);
  EXPECT_LE(pst, 1.0 + 1e-12);
}

}  // namespace
}  // namespace privtree
