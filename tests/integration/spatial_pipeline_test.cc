// End-to-end integration of the spatial pipeline: synthetic data →
// private synopses (PrivTree + all baselines) → range-query workloads →
// relative-error metrics.  These mirror miniature versions of Figure 5 and
// assert the paper's *qualitative* findings.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/spatial_gen.h"
#include "dp/rng.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "hist/ag.h"
#include "hist/dawa.h"
#include "hist/hierarchy.h"
#include "hist/ug.h"
#include "hist/wavelet.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

class SpatialPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 60000;

  void SetUp() override {
    Rng data_rng(99);
    points_ = std::make_unique<PointSet>(GenerateRoadLike(kN, data_rng));
    domain_ = Box::UnitCube(2);
    Rng workload_rng(7);
    queries_ = GenerateRangeQueries(domain_, 150, kMediumQueries,
                                    workload_rng);
    exact_ = ExactAnswers(queries_, *points_);
  }

  double PrivTreeError(double epsilon, Rng& rng) const {
    const auto hist =
        BuildPrivTreeHistogram(*points_, domain_, epsilon, {}, rng);
    return MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return hist.Query(q); }, kN);
  }

  std::unique_ptr<PointSet> points_;
  Box domain_;
  std::vector<Box> queries_;
  std::vector<double> exact_;
};

TEST_F(SpatialPipelineTest, PrivTreeErrorDecreasesWithEpsilon) {
  Rng rng(1);
  const double coarse = PrivTreeError(0.05, rng);
  const double fine = PrivTreeError(1.6, rng);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.10);
}

TEST_F(SpatialPipelineTest, PrivTreeBeatsUniformGridOnSkewedData) {
  // Figure 5(a–c): on road-like data PrivTree ≪ UG.
  Rng rng(2);
  double privtree_error = 0.0, ug_error = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    privtree_error += PrivTreeError(0.4, rng);
    const auto ug = BuildUniformGrid(*points_, domain_, 0.4, {}, rng);
    ug_error += MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return ug.Query(q); }, kN);
  }
  EXPECT_LT(privtree_error, ug_error);
}

TEST_F(SpatialPipelineTest, PrivTreeBeatsHierarchyOnSkewedData) {
  Rng rng(3);
  double privtree_error = 0.0, hierarchy_error = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    privtree_error += PrivTreeError(0.4, rng);
    const HierarchyHistogram hier(*points_, domain_, 0.4, {}, rng);
    hierarchy_error += MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return hier.Query(q); }, kN);
  }
  EXPECT_LT(privtree_error, hierarchy_error);
}

TEST_F(SpatialPipelineTest, AgBeatsUg) {
  // Consistent with Figure 5 and [41]: AG improves on UG.
  Rng rng(4);
  double ag_error = 0.0, ug_error = 0.0;
  constexpr int kReps = 4;
  for (int rep = 0; rep < kReps; ++rep) {
    const AdaptiveGrid ag(*points_, domain_, 0.2, {}, rng);
    ag_error += MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return ag.Query(q); }, kN);
    const auto ug = BuildUniformGrid(*points_, domain_, 0.2, {}, rng);
    ug_error += MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return ug.Query(q); }, kN);
  }
  EXPECT_LT(ag_error, ug_error);
}

TEST_F(SpatialPipelineTest, AllMethodsProduceFiniteErrors) {
  Rng rng(5);
  PriveletOptions privelet_options;
  privelet_options.target_total_cells = 1 << 14;
  DawaOptions dawa_options;
  dawa_options.target_total_cells = 1 << 14;
  const auto privelet = BuildPriveletHistogram(*points_, domain_, 0.8,
                                               privelet_options, rng);
  const auto dawa =
      BuildDawaHistogram(*points_, domain_, 0.8, dawa_options, rng);
  for (const auto* grid : {&privelet, &dawa}) {
    const double error = MeanRelativeError(
        queries_, exact_, [&](const Box& q) { return grid->Query(q); }, kN);
    EXPECT_TRUE(std::isfinite(error));
    EXPECT_LT(error, 10.0);
  }
}

TEST_F(SpatialPipelineTest, FourDimensionalPipelineRuns) {
  Rng data_rng(6);
  const PointSet nyc = GenerateNycLike(20000, data_rng);
  const Box domain = Box::UnitCube(4);
  Rng workload_rng(8);
  const auto queries =
      GenerateRangeQueries(domain, 60, kLargeQueries, workload_rng);
  const auto exact = ExactAnswers(queries, nyc);
  Rng rng(9);
  const auto hist = BuildPrivTreeHistogram(nyc, domain, 1.6, {}, rng);
  const double error = MeanRelativeError(
      queries, exact, [&](const Box& q) { return hist.Query(q); },
      nyc.size());
  EXPECT_TRUE(std::isfinite(error));
  EXPECT_LT(error, 1.0);
}

}  // namespace
}  // namespace privtree
