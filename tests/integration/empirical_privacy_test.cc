// End-to-end empirical differential-privacy checks of the *released tree
// shapes*, run through the full production stacks (Morton-index spatial
// policy; posting-list PST policy).  These catch sensitivity bugs — e.g.
// an off-by-one in occurrence counting — that unit tests of the abstract
// algorithm cannot see.
//
// Method: run the builder many times on neighboring datasets D ⊂ D'
// (one extra record), histogram the released shapes, and check that
// frequency ratios stay within e^ε_shape up to sampling slack.  Counts are
// continuous and cannot be histogrammed; the shape is the part whose
// privacy Theorem 3.1 covers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "core/privtree.h"
#include "core/privtree_params.h"
#include "dp/rng.h"
#include "seq/pst_privtree.h"
#include "spatial/morton_index.h"
#include "spatial/quadtree_policy.h"

namespace privtree {
namespace {

template <typename Domain>
std::string ShapeSignature(const DecompTree<Domain>& tree) {
  std::string signature;
  signature.reserve(tree.size());
  for (const auto& node : tree.nodes()) {
    signature.push_back(static_cast<char>('0' + node.children.size() % 10));
  }
  return signature;
}

std::string ModelShapeSignature(const PstModel& model) {
  std::string signature;
  signature.reserve(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    signature.push_back(static_cast<char>(
        '0' + model.node(static_cast<NodeId>(i)).children.size() % 10));
  }
  return signature;
}

TEST(EmpiricalPrivacyTest, SpatialTreeShapeThroughMortonStack) {
  // D: 3 copies of one point; D': 4 copies.  The point-count score changes
  // by exactly 1 on the point's root-to-leaf path — sensitivity 1.
  const double epsilon = 1.0;
  PointSet d_small(2), d_large(2);
  const std::vector<double> p = {0.31, 0.77};
  for (int i = 0; i < 3; ++i) d_small.Add(p);
  for (int i = 0; i < 4; ++i) d_large.Add(p);
  const Box domain = Box::UnitCube(2);
  const MortonIndex index_small(d_small, domain);
  const MortonIndex index_large(d_large, domain);
  const QuadtreePolicy policy_small(index_small, domain, 2);
  const QuadtreePolicy policy_large(index_large, domain, 2);
  auto params = PrivTreeParams::ForEpsilon(epsilon, 4);
  params.max_depth = 4;  // Keeps the output space histogrammable.

  constexpr int kTrials = 30000;
  Rng rng(0xE9);
  std::map<std::string, int> counts_small, counts_large;
  for (int trial = 0; trial < kTrials; ++trial) {
    counts_small[ShapeSignature(RunPrivTree(policy_small, params, rng))]++;
    counts_large[ShapeSignature(RunPrivTree(policy_large, params, rng))]++;
  }
  const double bound = std::exp(epsilon);
  int comparable = 0;
  for (const auto& [signature, count] : counts_small) {
    const auto it = counts_large.find(signature);
    const int other = it == counts_large.end() ? 0 : it->second;
    if (count < 300 || other < 300) continue;
    ++comparable;
    const double ratio = static_cast<double>(count) / other;
    EXPECT_LT(ratio, bound * 1.3) << signature;
    EXPECT_GT(ratio, 1.0 / (bound * 1.3)) << signature;
  }
  EXPECT_GE(comparable, 2);  // The test must actually test something.
}

TEST(EmpiricalPrivacyTest, PstTreeShapeThroughPostingStack) {
  // Alphabet {0}, l⊤ = 2.  D: 4 copies of "00"; D': 5 copies.  One extra
  // sequence changes each node's Eq.-13 score by at most l⊤ = 2, which is
  // what the builder's sensitivity parameter assumes.
  const double epsilon = 2.0;
  SequenceDataset d_small(1), d_large(1);
  const std::vector<Symbol> s = {0, 0};
  for (int i = 0; i < 4; ++i) d_small.Add(s);
  for (int i = 0; i < 5; ++i) d_large.Add(s);
  const SequenceDataset t_small = d_small.Truncate(2);
  const SequenceDataset t_large = d_large.Truncate(2);
  PrivatePstOptions options;
  options.l_top = 2;

  constexpr int kTrials = 20000;
  Rng rng(0xEA);
  std::map<std::string, int> counts_small, counts_large;
  for (int trial = 0; trial < kTrials; ++trial) {
    counts_small[ModelShapeSignature(
        BuildPrivatePst(t_small, epsilon, options, rng).model)]++;
    counts_large[ModelShapeSignature(
        BuildPrivatePst(t_large, epsilon, options, rng).model)]++;
  }
  // Whole-release budget ε; the shape alone consumed only ε/β = ε/2, so
  // shape-frequency ratios must respect e^{ε/2}... the counts consumed the
  // rest but are not part of the signature.
  const double bound = std::exp(epsilon / 2.0);
  int comparable = 0;
  for (const auto& [signature, count] : counts_small) {
    const auto it = counts_large.find(signature);
    const int other = it == counts_large.end() ? 0 : it->second;
    if (count < 300 || other < 300) continue;
    ++comparable;
    const double ratio = static_cast<double>(count) / other;
    EXPECT_LT(ratio, bound * 1.3) << signature;
    EXPECT_GT(ratio, 1.0 / (bound * 1.3)) << signature;
  }
  EXPECT_GE(comparable, 1);
}

}  // namespace
}  // namespace privtree
