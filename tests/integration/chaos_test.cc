// Chaos-hardening end to end: the epoll serving stack under deterministic
// injected faults (core/fault.h).  A torn spill write that "succeeded"
// before a crash must be quarantined on warm restart and never poison
// serving; mid-frame connection resets and torn frames must be absorbed by
// the client's reconnect + resend discipline with zero failed requests; a
// stuck fit must be failed by the engine watchdog instead of wedging its
// reply slot; and a closed-loop client must survive a full server-loop
// restart transparently.  Every scenario asserts bit-for-bit parity with
// the in-process ReleaseSession oracle — chaos may slow answers down, but
// it must never change them.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fault.h"
#include "dp/rng.h"
#include "dp/status.h"
#include "eval/workload.h"
#include "release/dataset.h"
#include "release/registry.h"
#include "release/session.h"
#include "serve/synopsis_cache.h"
#include "serve/thread_pool.h"
#include "server/client.h"
#include "server/dataset_registry.h"
#include "server/dispatcher.h"
#include "server/event/event_loop.h"
#include "server/protocol.h"
#include "server/socket.h"
#include "spatial/box.h"
#include "spatial/point_set.h"

namespace privtree::server {
namespace {

namespace fs = std::filesystem;

constexpr double kEpsilon = 1.0;

PointSet TestPoints(std::size_t n = 300) {
  Rng rng(0xDA7A);
  PointSet points(2);
  std::vector<double> p(2);
  for (std::size_t i = 0; i < n; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble() * rng.NextDouble();
    points.Add(p);
  }
  return points;
}

std::vector<Box> TestQueries(std::size_t n = 20) {
  Rng rng(0xBEEF);
  return GenerateRangeQueries(Box::UnitCube(2), n, kMediumQueries, rng);
}

/// The in-process ground truth for one (method, seed) release.
std::vector<double> OracleAnswers(const PointSet& points,
                                  const std::string& method,
                                  std::uint64_t seed,
                                  const std::vector<Box>& queries) {
  release::ReleaseSession session(points, Box::UnitCube(2), kEpsilon, seed);
  return session.Release(method, kEpsilon)->QueryBatch(queries);
}

/// One complete epoll serving stack, restartable onto the same spill
/// directory (simulating a process restart after a crash).
struct ServingStack {
  ServingStack(const PointSet& points, const std::string& spill_dir,
               std::uint16_t port) {
    pool = std::make_unique<serve::ThreadPool>(4);
    cache = std::make_unique<serve::SynopsisCache>(
        1, serve::SpillOptions{spill_dir, 16});
    registry = std::make_unique<DatasetRegistry>(*pool, *cache);
    auto registered = registry->Register(
        "test", release::Dataset(points, Box::UnitCube(2)));
    EXPECT_TRUE(registered.ok()) << registered.status().ToString();
    dispatcher = std::make_unique<Dispatcher>(*registry);
    auto listener = ListenSocket::Listen(port);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    loop = std::make_unique<EventLoop>(*dispatcher,
                                       std::move(listener).value(),
                                       EventLoopOptions{});
    serving = std::thread([this] { EXPECT_TRUE(loop->Run().ok()); });
  }

  ~ServingStack() { Stop(); }

  void Stop() {
    if (!serving.joinable()) return;
    loop->Stop();
    serving.join();
  }

  std::uint16_t port() const { return loop->port(); }

  std::unique_ptr<serve::ThreadPool> pool;
  std::unique_ptr<serve::SynopsisCache> cache;
  std::unique_ptr<DatasetRegistry> registry;
  std::unique_ptr<Dispatcher> dispatcher;
  std::unique_ptr<EventLoop> loop;
  std::thread serving;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Injector::Global().Reset();
    fault::Injector::Global().SetSeed(0xC4A05);
    spill_dir_ = fs::path(::testing::TempDir()) /
                 ("privtree_chaos_" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(spill_dir_);
  }
  void TearDown() override {
    fault::Injector::Global().Reset();
    fs::remove_all(spill_dir_);
  }

  std::string spill_dir() const { return spill_dir_.string(); }

  fs::path spill_dir_;
};

TEST_F(ChaosTest, TornSpillWriteIsQuarantinedOnRestartAndAnswersMatchOracle) {
  const PointSet points = TestPoints();
  const std::vector<Box> queries = TestQueries();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};

  // Phase A: serve with a torn envelope.save — the second spill write
  // persists only half its bytes but reports success, exactly what a crash
  // between write and rename leaves under the final name.
  {
    ASSERT_TRUE(fault::Injector::Global()
                    .ArmFromSpec("envelope.save=partial:after=1:count=1")
                    .ok());
    ServingStack stack(points, spill_dir(), 0);
    auto connected = Client::Connect("127.0.0.1", stack.port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    Client client = std::move(connected).value();
    for (const std::uint64_t seed : seeds) {
      const FitSpec spec{"ug", {}, kEpsilon, seed};
      auto answers = client.QueryBatch(spec, queries);
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    }
    stack.cache->FlushSpill();
    // The fault really fired: one of the on-disk envelopes is torn.
    EXPECT_EQ(fault::Injector::Global().StatsFor("envelope.save").fired, 1u);
  }  // "Crash": the whole stack dies; only the spill directory survives.

  // Phase B: a fresh stack on the same directory must quarantine the torn
  // file during its warm-restart scan and serve every query bit-for-bit
  // from the oracle — healthy spills rehydrated, the torn one re-fitted.
  fault::Injector::Global().Reset();
  ServingStack stack(points, spill_dir(), 0);
  EXPECT_EQ(stack.cache->stats().spill_quarantined, 1u);
  auto connected = Client::Connect("127.0.0.1", stack.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();
  for (const std::uint64_t seed : seeds) {
    const FitSpec spec{"ug", {}, kEpsilon, seed};
    auto answers = client.QueryBatch(spec, queries);
    ASSERT_TRUE(answers.ok()) << "seed " << seed << ": "
                              << answers.status().ToString();
    const std::vector<double> want = OracleAnswers(points, "ug", seed, queries);
    ASSERT_EQ(answers.value().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(answers.value()[i], want[i])
          << "seed " << seed << " query " << i << " diverged after recovery";
    }
  }
  // Zero corrupt envelopes surfaced while serving: the quarantine happened
  // at scan time, before any request could touch the torn file.
  EXPECT_EQ(stack.cache->stats().spill_failures, 0u);
}

TEST_F(ChaosTest, ResetsAndTornFramesAreAbsorbedWithZeroFailedRequests) {
  // The epoll loop does its own buffered I/O, so these socket fault points
  // fire on the client's blocking Connection — mid-frame resets and a torn
  // half-frame send, each forcing a reconnect + resend.  Every request must
  // still succeed and match the oracle.
  const PointSet points = TestPoints();
  const std::vector<Box> queries = TestQueries();
  ServingStack stack(points, spill_dir(), 0);

  ClientOptions options;
  options.max_attempts = 8;
  options.base_backoff_millis = 5;
  auto connected = Client::Connect("127.0.0.1", stack.port(), options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();

  // Hello consumed send/recv hit 0; the faults land mid-run (p=1, so the
  // schedule is exact regardless of the seed).
  ASSERT_TRUE(fault::Injector::Global()
                  .ArmFromSpec("socket.recv=reset:after=4:count=2;"
                               "socket.send=partial:after=11:count=1")
                  .ok());

  std::size_t failed = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t seed = 1 + (i % 2);
    const FitSpec spec{"ug", {}, kEpsilon, seed};
    auto answers = client.QueryBatch(spec, queries);
    if (!answers.ok()) {
      ++failed;
      ADD_FAILURE() << "request " << i << ": "
                    << answers.status().ToString();
      continue;
    }
    const std::vector<double> want = OracleAnswers(points, "ug", seed, queries);
    ASSERT_EQ(answers.value(), want) << "request " << i << " diverged";
  }
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(fault::Injector::Global().StatsFor("socket.recv").fired, 2u);
  EXPECT_EQ(fault::Injector::Global().StatsFor("socket.send").fired, 1u);
  // Three transport faults fired, but two can land inside one call's retry
  // sequence (a reset hitting the reconnect's own Hello).  Retries count
  // actual resends only — a failed reconnect sends nothing — so both
  // telemetry fields can sit below the fault count, never above it.
  EXPECT_GE(client.telemetry().retries, 2u);
  EXPECT_LE(client.telemetry().retries, 3u);
  EXPECT_GE(client.telemetry().reconnects, 2u);
  fault::Injector::Global().Reset();  // Let teardown's Shutdown run clean.
}

TEST_F(ChaosTest, StuckFitIsFailedByTheWatchdogNotWedged) {
  const PointSet points = TestPoints();
  ServingStack stack(points, spill_dir(), 0);
  auto connected = Client::Connect("127.0.0.1", stack.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();

  // The first fit stalls 800ms inside the executor; its 100ms deadline
  // passes while it is *running*, which only the watchdog can see.
  ASSERT_TRUE(fault::Injector::Global()
                  .ArmFromSpec("engine.fit=delay:delay=800:count=1")
                  .ok());
  const FitSpec spec{"ug", {}, kEpsilon, 0xF17};
  const auto start = std::chrono::steady_clock::now();
  auto stuck = client.Fit(spec, /*deadline_millis=*/100);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  ASSERT_FALSE(stuck.ok());
  EXPECT_EQ(stuck.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(waited, 700);  // Failed by the watchdog, not by waiting it out.

  // The reply slot is not wedged: the same spec (and the same connection)
  // fits fine once the chaos clears.
  fault::Injector::Global().Reset();
  auto retried = client.Fit(spec, /*deadline_millis=*/0);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().metadata.method, "ug");
  EXPECT_GE(stack.registry->Find(0)->Stats().watchdog_fired, 1u);
}

TEST_F(ChaosTest, ClosedLoopClientSurvivesServerRestartWithZeroFailures) {
  const PointSet points = TestPoints();
  const std::vector<Box> queries = TestQueries();
  serve::ThreadPool pool(4);
  serve::SynopsisCache cache(8, serve::SpillOptions{spill_dir(), 16});
  DatasetRegistry registry(pool, cache);
  ASSERT_TRUE(
      registry.Register("test", release::Dataset(points, Box::UnitCube(2)))
          .ok());
  Dispatcher dispatcher(registry);

  auto listener = ListenSocket::Listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  auto loop = std::make_unique<EventLoop>(dispatcher,
                                          std::move(listener).value(),
                                          EventLoopOptions{});
  std::thread serving([&loop] { EXPECT_TRUE(loop->Run().ok()); });

  ClientOptions options;
  options.max_attempts = 10;
  options.base_backoff_millis = 20;
  auto connected = Client::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Client client = std::move(connected).value();

  std::size_t failed = 0;
  for (int i = 0; i < 30; ++i) {
    if (i == 15) {
      // Restart the serving loop on the same port mid-run; the registry,
      // cache, and dispatcher survive (a front-end bounce, the common
      // deployment restart).
      loop->Stop();
      serving.join();
      auto relisten = ListenSocket::Listen(port);
      ASSERT_TRUE(relisten.ok()) << relisten.status().ToString();
      loop = std::make_unique<EventLoop>(dispatcher,
                                         std::move(relisten).value(),
                                         EventLoopOptions{});
      serving = std::thread([&loop] { EXPECT_TRUE(loop->Run().ok()); });
    }
    const std::uint64_t seed = 1 + (i % 3);
    const FitSpec spec{"ug", {}, kEpsilon, seed};
    auto answers = client.QueryBatch(spec, queries);
    if (!answers.ok()) {
      ++failed;
      ADD_FAILURE() << "request " << i << ": "
                    << answers.status().ToString();
      continue;
    }
    EXPECT_EQ(answers.value(), OracleAnswers(points, "ug", seed, queries))
        << "request " << i << " diverged across the restart";
  }
  EXPECT_EQ(failed, 0u);
  EXPECT_GE(client.telemetry().reconnects, 1u);

  loop->Stop();
  serving.join();
}

}  // namespace
}  // namespace privtree::server
