// Failure-injection and boundary-condition tests across the whole
// pipeline: empty and singleton datasets, duplicate-heavy data, extreme
// privacy budgets, unusual dimensionalities and alphabets.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "hist/ug.h"
#include "seq/ngram.h"
#include "seq/pst_privtree.h"
#include "seq/topk.h"
#include "spatial/spatial_histogram.h"

namespace privtree {
namespace {

TEST(EdgeCaseTest, EmptyPointSetProducesWorkingHistogram) {
  Rng rng(1);
  const PointSet empty(2);
  const auto hist =
      BuildPrivTreeHistogram(empty, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_GE(hist.tree.size(), 1u);
  const double answer = hist.Query(Box({0.1, 0.1}, {0.9, 0.9}));
  EXPECT_TRUE(std::isfinite(answer));
  // Pure noise, but centered at 0.
  EXPECT_LT(std::abs(answer), 100.0);
}

TEST(EdgeCaseTest, SinglePointDataset) {
  Rng rng(2);
  PointSet points(2);
  const std::vector<double> p = {0.3, 0.7};
  points.Add(p);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_TRUE(std::isfinite(hist.Query(Box::UnitCube(2))));
}

TEST(EdgeCaseTest, AllPointsIdentical) {
  // 50k copies of one point: the tree must not loop forever, and the
  // point's cell must be resolvable.
  Rng rng(3);
  PointSet points(2);
  const std::vector<double> p = {0.123456, 0.654321};
  for (int i = 0; i < 50000; ++i) points.Add(p);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  // Identical points keep counts maximal along one path; the structural
  // bit budget (63 levels in 2-d) must stop the recursion.
  EXPECT_LE(hist.tree.Height(), 63);
  const Box tight({0.12, 0.65}, {0.13, 0.66});
  EXPECT_NEAR(hist.Query(tight), 50000.0, 2500.0);
}

TEST(EdgeCaseTest, OneDimensionalData) {
  Rng rng(4);
  PointSet points(1);
  for (int i = 0; i < 10000; ++i) {
    const std::vector<double> p = {0.5 + 0.001 * rng.NextDouble()};
    points.Add(p);
  }
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(1), 0.8, {}, rng);
  EXPECT_NEAR(hist.Query(Box({0.49}, {0.51})), 10000.0, 1000.0);
  EXPECT_NEAR(hist.Query(Box({0.6}, {0.9})), 0.0, 500.0);
}

TEST(EdgeCaseTest, ThreeDimensionalData) {
  Rng rng(5);
  PointSet points(3);
  double p[3];
  for (int i = 0; i < 20000; ++i) {
    for (auto& x : p) x = 0.5 * rng.NextDouble();
    points.Add(p);
  }
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(3), 1.0, {}, rng);
  EXPECT_NEAR(hist.Query(Box({0.0, 0.0, 0.0}, {0.5, 0.5, 0.5})), 20000.0,
              2000.0);
}

TEST(EdgeCaseTest, TinyEpsilonStillTerminatesAndIsFinite) {
  Rng rng(6);
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 5000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1e-4, {}, rng);
  EXPECT_LT(hist.tree.size(), 10000u);
  EXPECT_TRUE(std::isfinite(hist.Query(Box::UnitCube(2))));
}

TEST(EdgeCaseTest, HugeEpsilonApproachesExactCounts) {
  Rng rng(7);
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 5000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1000.0, {}, rng);
  const Box q({0.0, 0.0}, {0.5, 1.0});
  EXPECT_NEAR(hist.Query(q),
              static_cast<double>(points.ExactRangeCount(q)), 100.0);
}

TEST(EdgeCaseTest, PointsOutsideTheDeclaredDomainAreClamped) {
  Rng rng(8);
  PointSet points(2);
  const std::vector<double> inside = {0.5, 0.5};
  const std::vector<double> outside = {3.0, -2.0};
  for (int i = 0; i < 1000; ++i) points.Add(i % 2 ? inside : outside);
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_TRUE(std::isfinite(hist.Query(Box::UnitCube(2))));
}

TEST(EdgeCaseTest, UgOnEmptyData) {
  Rng rng(9);
  const PointSet empty(2);
  const auto grid = BuildUniformGrid(empty, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_TRUE(std::isfinite(grid.Query(Box::UnitCube(2))));
}

TEST(EdgeCaseTest, EmptySequenceDatasetProducesWorkingPst) {
  Rng rng(10);
  const SequenceDataset empty(3);
  PrivatePstOptions options;
  options.l_top = 5;
  const auto result = BuildPrivatePst(empty, 1.0, options, rng);
  EXPECT_GE(result.model.size(), 1u);
  const std::vector<Symbol> s = {0, 1};
  EXPECT_TRUE(std::isfinite(result.model.EstimateStringFrequency(s)));
  // Sampling terminates (possibly empty sequences).
  const auto sampled = result.model.SampleSequence(rng, 5);
  EXPECT_LE(sampled.size(), 5u);
}

TEST(EdgeCaseTest, SingleSymbolAlphabet) {
  Rng rng(11);
  SequenceDataset data(1);
  for (int i = 0; i < 1000; ++i) {
    data.Add(std::vector<Symbol>(3, 0));
  }
  PrivatePstOptions options;
  options.l_top = 4;
  const auto result = BuildPrivatePst(data.Truncate(4), 1.6, options, rng);
  const std::vector<Symbol> s = {0, 0};
  EXPECT_GT(result.model.EstimateStringFrequency(s), 0.0);
}

TEST(EdgeCaseTest, SequencesOfEmptyStrings) {
  Rng rng(12);
  SequenceDataset data(2);
  for (int i = 0; i < 500; ++i) data.Add(std::vector<Symbol>{});
  PrivatePstOptions options;
  options.l_top = 3;
  const auto result = BuildPrivatePst(data, 1.0, options, rng);
  // The model should predict immediate termination almost always.
  int empties = 0;
  for (int i = 0; i < 100; ++i) {
    if (result.model.SampleSequence(rng, 3).empty()) ++empties;
  }
  EXPECT_GT(empties, 60);
}

TEST(EdgeCaseTest, NgramOnTinyData) {
  Rng rng(13);
  SequenceDataset data(2);
  data.Add(std::vector<Symbol>{0});
  NgramOptions options;
  options.l_top = 2;
  const NgramModel model(data, 0.5, options, rng);
  EXPECT_TRUE(std::isfinite(model.InitialCount(0)));
  const auto sampled = model.SampleSequence(rng, 4);
  EXPECT_LE(sampled.size(), 4u);
}

TEST(EdgeCaseTest, TopKWithKOne) {
  SequenceDataset data(2);
  for (int i = 0; i < 10; ++i) data.Add(std::vector<Symbol>{0, 1});
  const auto topk = ExactTopKStrings(data, 1, 3);
  ASSERT_EQ(topk.strings.size(), 1u);
}

TEST(EdgeCaseTest, QueryCrossingTheDomainBoundary) {
  Rng rng(14);
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Add(p);
  }
  const auto hist =
      BuildPrivTreeHistogram(points, Box::UnitCube(2), 1.6, {}, rng);
  // A query extending past the domain sees only the inside part.
  const Box crossing({0.5, 0.5}, {2.0, 2.0});
  const Box inside({0.5, 0.5}, {1.0, 1.0});
  EXPECT_NEAR(hist.Query(crossing), hist.Query(inside), 1e-9);
}

}  // namespace
}  // namespace privtree
