#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "spatial/box.h"

namespace privtree {
namespace {

TEST(RelativeErrorTest, UsesTruthWhenLarge) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0, 1.0), 0.1);
}

TEST(RelativeErrorTest, SmoothingKicksInForSmallTruth) {
  // |5 − 0| / max(0, 10) = 0.5.
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0, 10.0), 0.5);
}

TEST(RelativeErrorTest, DefaultSmoothingIsTenthOfAPercent) {
  EXPECT_DOUBLE_EQ(DefaultSmoothing(1000000), 1000.0);
}

TEST(MeanRelativeErrorTest, AveragesOverQueries) {
  PointSet points(1);
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> p = {(i + 0.5) / 1000.0};
    points.Add(p);
  }
  const std::vector<Box> queries = {Box({0.0}, {0.5}), Box({0.0}, {1.0})};
  const auto exact = ExactAnswers(queries, points);
  EXPECT_DOUBLE_EQ(exact[0], 500.0);
  EXPECT_DOUBLE_EQ(exact[1], 1000.0);
  // An estimator that always answers 550 and 1100: errors 0.1 each.
  const auto answer = [](const Box& q) {
    return q.Volume() < 0.75 ? 550.0 : 1100.0;
  };
  EXPECT_NEAR(MeanRelativeError(queries, exact, answer, points.size()), 0.1,
              1e-12);
}

TEST(TotalVariationTest, IdenticalDistributionsAreZero) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}),
                   0.0);  // Same after normalization.
}

TEST(TotalVariationTest, DisjointDistributionsAreOne) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0, 0.0}, {0.0, 1.0}), 1.0);
}

TEST(TotalVariationTest, HandlesDifferentLengths) {
  // (1,0) vs (0.5, 0.5) padded: TV = 0.5... second histogram (1,1) over
  // slots {0,1}; first is all mass at 0 → TV = 0.5.
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0}, {1.0, 1.0}), 0.5);
}

TEST(TotalVariationTest, NegativeEntriesAreClampedToZero) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0, -5.0}, {1.0, 0.0}), 0.0);
}

TEST(TotalVariationTest, EmptyHistogramIsMaximallyFar) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({}, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({0.0, 0.0}, {1.0}), 1.0);
}

TEST(TotalVariationTest, SymmetricAndBounded) {
  const std::vector<double> a = {3.0, 1.0, 0.0, 2.0};
  const std::vector<double> b = {1.0, 1.0, 1.0, 1.0};
  const double ab = TotalVariationDistance(a, b);
  const double ba = TotalVariationDistance(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
}

TEST(MetricsDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(RelativeError(1.0, 1.0, 0.0), "PRIVTREE_CHECK");
  const std::vector<Box> queries = {Box::UnitCube(1)};
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_DEATH(MeanRelativeError(queries, wrong_size,
                                 [](const Box&) { return 0.0; }, 10),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
