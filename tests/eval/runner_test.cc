#include "eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "eval/table.h"

namespace privtree {
namespace {

TEST(RunnerTest, PaperEpsilonsMatchSection6) {
  const auto& eps = PaperEpsilons();
  ASSERT_EQ(eps.size(), 6u);
  EXPECT_DOUBLE_EQ(eps.front(), 0.05);
  EXPECT_DOUBLE_EQ(eps.back(), 1.6);
}

TEST(RunnerTest, RepetitionsHonorsEnvironment) {
  setenv("PRIVTREE_REPS", "17", 1);
  EXPECT_EQ(Repetitions(5), 17u);
  unsetenv("PRIVTREE_REPS");
  unsetenv("PRIVTREE_PAPER_SCALE");
  EXPECT_EQ(Repetitions(5), 5u);
}

TEST(RunnerTest, PaperScaleSwitchesDefaults) {
  setenv("PRIVTREE_PAPER_SCALE", "1", 1);
  unsetenv("PRIVTREE_REPS");
  EXPECT_TRUE(PaperScale());
  EXPECT_EQ(Repetitions(5), 100u);
  EXPECT_EQ(ScaledCardinality(1000000, 1000), 1000000u);
  setenv("PRIVTREE_PAPER_SCALE", "0", 1);
  EXPECT_FALSE(PaperScale());
  EXPECT_EQ(ScaledCardinality(1000000, 1000), 1000u);
  unsetenv("PRIVTREE_PAPER_SCALE");
}

TEST(RunnerTest, ScaledCardinalityNeverExceedsPaperN) {
  unsetenv("PRIVTREE_PAPER_SCALE");
  EXPECT_EQ(ScaledCardinality(500, 1000), 500u);
}

TEST(RunnerTest, MeanOverRepsIsDeterministic) {
  const auto body = [](Rng& rng) { return rng.NextDouble(); };
  const double a = MeanOverReps(10, 42, body);
  const double b = MeanOverReps(10, 42, body);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = MeanOverReps(10, 43, body);
  EXPECT_NE(a, c);
}

TEST(RunnerTest, MeanOverRepsAverages) {
  int calls = 0;
  const double mean = MeanOverReps(4, 1, [&calls](Rng&) {
    return static_cast<double>(calls++);
  });
  EXPECT_DOUBLE_EQ(mean, 1.5);  // (0+1+2+3)/4.
}

TEST(TablePrinterTest, FormatsCells) {
  EXPECT_EQ(FormatCell(0.12345), "0.1235");
  EXPECT_EQ(FormatCell(std::nan("")), "-");
  EXPECT_EQ(FormatCell(12000.0), "1.2e+04");
}

TEST(TablePrinterTest, PrintsWithoutCrashing) {
  TablePrinter table("demo", "epsilon", {"PrivTree", "UG"});
  table.AddRow("0.1", {0.01, 0.05});
  table.AddRow("1.6", {0.001, std::nan("")});
  table.Print();  // Smoke test; output inspected by the bench harness.
}

TEST(TablePrinterDeathTest, ColumnMismatchAborts) {
  TablePrinter table("demo", "epsilon", {"a", "b"});
  EXPECT_DEATH(table.AddRow("x", {1.0}), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
