#include "eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "eval/table.h"
#include "release/sequence_query.h"
#include "seq/sequence.h"
#include "seq/topk.h"

namespace privtree {
namespace {

TEST(RunnerTest, PaperEpsilonsMatchSection6) {
  const auto& eps = PaperEpsilons();
  ASSERT_EQ(eps.size(), 6u);
  EXPECT_DOUBLE_EQ(eps.front(), 0.05);
  EXPECT_DOUBLE_EQ(eps.back(), 1.6);
}

TEST(RunnerTest, RepetitionsHonorsEnvironment) {
  setenv("PRIVTREE_REPS", "17", 1);
  EXPECT_EQ(Repetitions(5), 17u);
  unsetenv("PRIVTREE_REPS");
  unsetenv("PRIVTREE_PAPER_SCALE");
  EXPECT_EQ(Repetitions(5), 5u);
}

TEST(RunnerTest, PaperScaleSwitchesDefaults) {
  setenv("PRIVTREE_PAPER_SCALE", "1", 1);
  unsetenv("PRIVTREE_REPS");
  EXPECT_TRUE(PaperScale());
  EXPECT_EQ(Repetitions(5), 100u);
  EXPECT_EQ(ScaledCardinality(1000000, 1000), 1000000u);
  setenv("PRIVTREE_PAPER_SCALE", "0", 1);
  EXPECT_FALSE(PaperScale());
  EXPECT_EQ(ScaledCardinality(1000000, 1000), 1000u);
  unsetenv("PRIVTREE_PAPER_SCALE");
}

TEST(RunnerTest, ScaledCardinalityNeverExceedsPaperN) {
  unsetenv("PRIVTREE_PAPER_SCALE");
  EXPECT_EQ(ScaledCardinality(500, 1000), 500u);
}

TEST(RunnerTest, MeanOverRepsIsDeterministic) {
  const auto body = [](Rng& rng) { return rng.NextDouble(); };
  const double a = MeanOverReps(10, 42, body);
  const double b = MeanOverReps(10, 42, body);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = MeanOverReps(10, 43, body);
  EXPECT_NE(a, c);
}

TEST(RunnerTest, MeanOverRepsAverages) {
  int calls = 0;
  const double mean = MeanOverReps(4, 1, [&calls](Rng&) {
    return static_cast<double>(calls++);
  });
  EXPECT_DOUBLE_EQ(mean, 1.5);  // (0+1+2+3)/4.
}

TEST(RunnerTest, SequenceSpecsCoverBothMethodsWithLTop) {
  const auto specs = SequenceSpecs(17);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "ngram");
  EXPECT_EQ(specs[1].name, "pst_privtree");
  for (const MethodSpec& spec : specs) {
    EXPECT_EQ(spec.options.GetInt("l_top", 0), 17);
  }
}

TEST(RunnerTest, RegistrySequenceMethodErrorIsDeterministicAndFinite) {
  Rng data_rng(0x5EC);
  SequenceDataset data(3);
  std::vector<Symbol> s;
  for (int i = 0; i < 200; ++i) {
    s.clear();
    const std::size_t len = 1 + data_rng.NextBounded(6);
    for (std::size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<Symbol>(data_rng.NextBounded(3)));
    }
    data.Add(s);
  }
  // Frequency queries with exact substring counts as ground truth.
  const auto counts = CountAllSubstrings(data, 2);
  std::vector<release::SequenceQuery> queries;
  std::vector<double> exact;
  for (Symbol a = 0; a < 3; ++a) {
    for (Symbol b = 0; b < 3; ++b) {
      std::vector<Symbol> str = {a, b};
      queries.push_back(release::SequenceQuery::Frequency(str));
      const auto it = counts.find(PackString(str));
      exact.push_back(it == counts.end() ? 0.0 : it->second);
    }
  }
  for (const MethodSpec& spec : SequenceSpecs(8)) {
    SCOPED_TRACE(spec.name);
    const double first = RegistrySequenceMethodError(spec, data, 1.0,
                                                     queries, exact,
                                                     /*reps=*/2, 0xF1);
    const double second = RegistrySequenceMethodError(spec, data, 1.0,
                                                      queries, exact, 2,
                                                      0xF1);
    EXPECT_TRUE(std::isfinite(first));
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(first, second);
  }
}

TEST(TablePrinterTest, FormatsCells) {
  EXPECT_EQ(FormatCell(0.12345), "0.1235");
  EXPECT_EQ(FormatCell(std::nan("")), "-");
  EXPECT_EQ(FormatCell(12000.0), "1.2e+04");
}

TEST(TablePrinterTest, PrintsWithoutCrashing) {
  TablePrinter table("demo", "epsilon", {"PrivTree", "UG"});
  table.AddRow("0.1", {0.01, 0.05});
  table.AddRow("1.6", {0.001, std::nan("")});
  table.Print();  // Smoke test; output inspected by the bench harness.
}

TEST(TablePrinterDeathTest, ColumnMismatchAborts) {
  TablePrinter table("demo", "epsilon", {"a", "b"});
  EXPECT_DEATH(table.AddRow("x", {1.0}), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
