#include "eval/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dp/rng.h"

namespace privtree {
namespace {

PointSet ThreeBlobPoints(std::size_t per_blob, Rng& rng) {
  PointSet points(2);
  const double centers[3][2] = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}};
  double p[2];
  for (int blob = 0; blob < 3; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      p[0] = centers[blob][0] + 0.02 * (rng.NextDouble() - 0.5);
      p[1] = centers[blob][1] + 0.02 * (rng.NextDouble() - 0.5);
      points.Add(p);
    }
  }
  return points;
}

TEST(KMeansTest, FindsWellSeparatedBlobs) {
  Rng rng(1);
  const PointSet points = ThreeBlobPoints(500, rng);
  const KMeansResult result = KMeans(points, 3, 50, rng);
  // Each true center must be close to some found center.
  const double centers[3][2] = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}};
  for (const auto& truth : centers) {
    double best = 1e9;
    for (std::size_t c = 0; c < 3; ++c) {
      const double dx = result.centers[c * 2] - truth[0];
      const double dy = result.centers[c * 2 + 1] - truth[1];
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LT(best, 0.05);
  }
}

TEST(KMeansTest, CostIsSmallOnTightBlobs) {
  Rng rng(2);
  const PointSet points = ThreeBlobPoints(300, rng);
  const KMeansResult result = KMeans(points, 3, 50, rng);
  // Within-blob squared radius is at most 2·0.01² = 2e-4.
  EXPECT_LT(KMeansCost(points, result), 2e-4);
}

TEST(KMeansTest, MoreClustersNeverIncreaseCostMuch) {
  Rng rng(3);
  const PointSet points = ThreeBlobPoints(300, rng);
  const double cost3 = KMeansCost(points, KMeans(points, 3, 50, rng));
  const double cost6 = KMeansCost(points, KMeans(points, 6, 50, rng));
  EXPECT_LE(cost6, cost3 * 1.05);
}

TEST(KMeansTest, SingleClusterIsTheCentroid) {
  PointSet points(1);
  for (double x : {0.0, 0.2, 0.4, 0.6}) {
    const std::vector<double> p = {x};
    points.Add(p);
  }
  Rng rng(4);
  const KMeansResult result = KMeans(points, 1, 20, rng);
  EXPECT_NEAR(result.centers[0], 0.3, 1e-9);
}

TEST(KMeansTest, KLargerThanPointsStillTerminates) {
  PointSet points(2);
  const std::vector<double> p = {0.5, 0.5};
  points.Add(p);
  Rng rng(5);
  const KMeansResult result = KMeans(points, 4, 10, rng);
  EXPECT_EQ(result.k, 4u);
  EXPECT_NEAR(KMeansCost(points, result), 0.0, 1e-12);
}

TEST(KMeansDeathTest, InvalidInputsAbort) {
  Rng rng(6);
  PointSet empty(2);
  EXPECT_DEATH(KMeans(empty, 2, 10, rng), "PRIVTREE_CHECK");
  PointSet points(2);
  const std::vector<double> p = {0.5, 0.5};
  points.Add(p);
  EXPECT_DEATH(KMeans(points, 0, 10, rng), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
