#include "eval/workload.h"

#include <gtest/gtest.h>

#include "dp/rng.h"
#include "spatial/box.h"

namespace privtree {
namespace {

TEST(WorkloadTest, GeneratesRequestedCount) {
  Rng rng(1);
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 123, kSmallQueries, rng);
  EXPECT_EQ(queries.size(), 123u);
}

TEST(WorkloadTest, VolumesAreInsideTheBand) {
  Rng rng(2);
  for (const auto& band : {kSmallQueries, kMediumQueries, kLargeQueries}) {
    const auto queries =
        GenerateRangeQueries(Box::UnitCube(2), 300, band, rng);
    for (const Box& q : queries) {
      const double fraction = q.Volume();
      EXPECT_GE(fraction, band.min_fraction * 0.999);
      EXPECT_LT(fraction, band.max_fraction * 1.001);
    }
  }
}

TEST(WorkloadTest, QueriesFitInsideTheDomain) {
  Rng rng(3);
  const Box domain({-2.0, 5.0}, {3.0, 6.0});
  const auto queries = GenerateRangeQueries(domain, 500, kLargeQueries, rng);
  for (const Box& q : queries) {
    EXPECT_TRUE(domain.ContainsBox(q)) << q.ToString();
  }
}

TEST(WorkloadTest, VolumeFractionScalesWithDomainVolume) {
  Rng rng(4);
  const Box domain({0.0, 0.0}, {10.0, 10.0});  // Volume 100.
  const auto queries =
      GenerateRangeQueries(domain, 200, kMediumQueries, rng);
  for (const Box& q : queries) {
    const double fraction = q.Volume() / domain.Volume();
    EXPECT_GE(fraction, kMediumQueries.min_fraction * 0.999);
    EXPECT_LT(fraction, kMediumQueries.max_fraction * 1.001);
  }
}

TEST(WorkloadTest, FourDimensionalQueries) {
  Rng rng(5);
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(4), 200, kSmallQueries, rng);
  for (const Box& q : queries) {
    EXPECT_EQ(q.dim(), 4u);
    EXPECT_GE(q.Volume(), kSmallQueries.min_fraction * 0.999);
  }
}

TEST(WorkloadTest, AspectRatiosVary) {
  Rng rng(6);
  const auto queries =
      GenerateRangeQueries(Box::UnitCube(2), 500, kLargeQueries, rng);
  // Not all queries should be near-square: look for meaningful spread in
  // width/height ratios.
  int elongated = 0;
  for (const Box& q : queries) {
    const double ratio = q.Width(0) / q.Width(1);
    if (ratio > 2.0 || ratio < 0.5) ++elongated;
  }
  EXPECT_GT(elongated, 50);
}

TEST(WorkloadDeathTest, InvalidBandAborts) {
  Rng rng(7);
  EXPECT_DEATH(GenerateRangeQueries(Box::UnitCube(2), 10,
                                    {"bad", 0.5, 0.1}, rng),
               "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
