#include "core/privtree_params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privtree {
namespace {

TEST(PrivTreeParamsTest, CorollaryOneQuadtree) {
  // β = 4, ε = 1: λ = 7/3, δ = λ·ln4.
  const auto params = PrivTreeParams::ForEpsilon(1.0, 4);
  EXPECT_NEAR(params.lambda, 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(params.delta, params.lambda * std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(params.theta, 0.0);
  EXPECT_NEAR(params.GuaranteedEpsilon(), 1.0, 1e-12);
}

TEST(PrivTreeParamsTest, EpsilonScalesLambdaInversely) {
  const auto loose = PrivTreeParams::ForEpsilon(0.1, 4);
  const auto tight = PrivTreeParams::ForEpsilon(1.6, 4);
  EXPECT_NEAR(loose.lambda / tight.lambda, 16.0, 1e-9);
}

TEST(PrivTreeParamsTest, SensitivityMultipliesLambda) {
  // Theorem 4.1: the PST score has sensitivity l⊤.
  const auto unit = PrivTreeParams::ForEpsilon(1.0, 8);
  const auto scaled = PrivTreeParams::ForEpsilon(1.0, 8, 20.0);
  EXPECT_NEAR(scaled.lambda, 20.0 * unit.lambda, 1e-9);
  // δ/λ (= γ) is unchanged, so the guaranteed ε for a sensitivity-l⊤ score
  // is still ε.
  EXPECT_NEAR(scaled.delta / scaled.lambda, unit.delta / unit.lambda, 1e-12);
}

TEST(PrivTreeParamsTest, LargerFanoutNeedsLessNoise) {
  // (2β−1)/(β−1) decreases toward 2 as β grows.
  const auto b2 = PrivTreeParams::ForEpsilon(1.0, 2);
  const auto b16 = PrivTreeParams::ForEpsilon(1.0, 16);
  EXPECT_GT(b2.lambda, b16.lambda);
  EXPECT_NEAR(b2.lambda, 3.0, 1e-12);    // (4−1)/(2−1) = 3.
  EXPECT_NEAR(b16.lambda, 31.0 / 15.0, 1e-12);
}

TEST(PrivTreeParamsTest, GammaFormMatchesTheorem31) {
  const double gamma = 0.7, epsilon = 0.4;
  const auto params = PrivTreeParams::ForEpsilonGamma(epsilon, gamma);
  EXPECT_NEAR(params.delta / params.lambda, gamma, 1e-12);
  EXPECT_NEAR(params.GuaranteedEpsilon(), epsilon, 1e-12);
}

TEST(PrivTreeParamsTest, GammaLnBetaEqualsForEpsilon) {
  const auto a = PrivTreeParams::ForEpsilon(0.8, 4);
  const auto b = PrivTreeParams::ForEpsilonGamma(0.8, std::log(4.0));
  EXPECT_NEAR(a.lambda, b.lambda, 1e-12);
  EXPECT_NEAR(a.delta, b.delta, 1e-12);
}

TEST(PrivTreeParamsDeathTest, InvalidInputsAbort) {
  EXPECT_DEATH(PrivTreeParams::ForEpsilon(0.0, 4), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivTreeParams::ForEpsilon(1.0, 1), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivTreeParams::ForEpsilon(1.0, 4, 0.0), "PRIVTREE_CHECK");
  EXPECT_DEATH(PrivTreeParams::ForEpsilonGamma(1.0, 0.0), "PRIVTREE_CHECK");
  PrivTreeParams bad;
  bad.lambda = -1.0;
  EXPECT_DEATH(bad.Validate(), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
