#include "core/privtree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/privtree_params.h"
#include "dp/rng.h"
#include "tests/core/test_policy.h"

namespace privtree {
namespace {

std::vector<double> UniformData(std::size_t n, Rng& rng) {
  std::vector<double> data(n);
  for (auto& x : data) x = rng.NextDouble();
  return data;
}

std::vector<double> ClusteredData(std::size_t n, Rng& rng) {
  // All mass in [0.25, 0.2500001): forces deep splits along one path.
  std::vector<double> data(n);
  for (auto& x : data) x = 0.25 + 1e-7 * rng.NextDouble();
  return data;
}

TEST(PrivTreeTest, EmptyDataYieldsTinyTree) {
  Rng rng(1);
  IntervalPolicy policy({});
  const auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  double total_nodes = 0.0;
  for (int rep = 0; rep < 30; ++rep) {
    const auto tree = RunPrivTree(policy, params, rng);
    total_nodes += static_cast<double>(tree.size());
  }
  // Lemma 3.2: E[|T|] <= 2·|T*| and |T*| = 1 here; allow generous slack
  // (the lemma's bound technically requires |T*| > 1, a root-only reference
  // tree can still split occasionally).
  EXPECT_LT(total_nodes / 30.0, 6.0);
}

TEST(PrivTreeTest, DenseDataSplitsRoot) {
  Rng rng(2);
  IntervalPolicy policy(UniformData(100000, rng));
  const auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  int split_count = 0;
  for (int rep = 0; rep < 20; ++rep) {
    const auto tree = RunPrivTree(policy, params, rng);
    if (tree.size() > 1) ++split_count;
  }
  // 100k points vs noise of scale 3: the root must essentially always
  // split.
  EXPECT_EQ(split_count, 20);
}

TEST(PrivTreeTest, AdaptsDepthToDataDensity) {
  Rng rng(3);
  IntervalPolicy sparse_policy(UniformData(64, rng));
  IntervalPolicy dense_policy(ClusteredData(100000, rng));
  const auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  double sparse_height = 0.0, dense_height = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    sparse_height += RunPrivTree(sparse_policy, params, rng).Height();
    dense_height += RunPrivTree(dense_policy, params, rng).Height();
  }
  // The cluster of 100k identical-ish points sustains splits far beyond
  // anything 64 uniform points can.
  EXPECT_GT(dense_height / 10.0, sparse_height / 10.0 + 5.0);
}

TEST(PrivTreeTest, NoHeightLimitUnlikeSimpleTree) {
  // The headline property: with a fixed constant λ, PrivTree grows as deep
  // as the data requires.  A cluster of ~10^5 co-located points drives the
  // decomposition >15 levels deep even though λ stays (2β−1)/(β−1)/ε.
  Rng rng(4);
  IntervalPolicy policy(ClusteredData(100000, rng));
  const auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  const auto tree = RunPrivTree(policy, params, rng);
  EXPECT_GT(tree.Height(), 15);
}

TEST(PrivTreeTest, RespectsStructuralMaxDepth) {
  Rng rng(5);
  IntervalPolicy policy(ClusteredData(100000, rng));
  auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  params.max_depth = 3;
  const auto tree = RunPrivTree(policy, params, rng);
  EXPECT_LE(tree.Height(), 3);
}

TEST(PrivTreeTest, StatsAreConsistent) {
  Rng rng(6);
  IntervalPolicy policy(UniformData(10000, rng));
  const auto params = PrivTreeParams::ForEpsilon(0.5, 2);
  DecompositionStats stats;
  const auto tree = RunPrivTree(policy, params, rng, &stats);
  EXPECT_EQ(stats.nodes_visited, tree.size());
  EXPECT_EQ(stats.nodes_split, tree.size() - tree.LeafCount());
  EXPECT_EQ(stats.height, tree.Height());
}

TEST(PrivTreeTest, FanoutChildrenPerSplit) {
  Rng rng(7);
  IntervalPolicy policy(UniformData(10000, rng));
  const auto params = PrivTreeParams::ForEpsilon(1.0, 2);
  const auto tree = RunPrivTree(policy, params, rng);
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_EQ(node.children.size(), 2u);
    }
  }
}

TEST(PrivTreeTest, BiasFloorPreventsRunawayGrowth) {
  // With a moderate dataset and tiny ε (huge λ, huge δ), the algorithm
  // must still terminate quickly: the θ−δ floor caps every node's split
  // probability at 1/(2β).
  Rng rng(8);
  IntervalPolicy policy(UniformData(1000, rng));
  const auto params = PrivTreeParams::ForEpsilon(0.01, 2);
  const auto tree = RunPrivTree(policy, params, rng);
  EXPECT_LT(tree.size(), 2000u);
}

TEST(NoiselessTreeTest, MatchesThresholdSemantics) {
  Rng rng(9);
  // 10 points in [0, 0.5), none elsewhere; θ = 5.
  std::vector<double> data(10, 0.3);
  IntervalPolicy policy(data);
  const auto tree = RunNoiselessTree(policy, 5.0);
  // Root (10 > 5) splits; left child [0,0.5) has 10 > 5, splits; right has
  // 0.  The chain continues while the cluster stays together: [0.25,0.5)
  // keeps all 10 points... 0.3 ∈ [0.25,0.5) etc.
  EXPECT_GT(tree.size(), 3u);
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_GT(policy.Score(node.domain), 5.0);
    }
  }
}

TEST(NoiselessTreeTest, RootOnlyWhenBelowThreshold) {
  IntervalPolicy policy(std::vector<double>(3, 0.5));
  const auto tree = RunNoiselessTree(policy, 5.0);
  EXPECT_EQ(tree.size(), 1u);
}

}  // namespace
}  // namespace privtree
