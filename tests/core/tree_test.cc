#include "core/tree.h"

#include <gtest/gtest.h>

#include <string>

namespace privtree {
namespace {

TEST(DecompTreeTest, RootOnly) {
  DecompTree<int> tree;
  EXPECT_TRUE(tree.empty());
  const NodeId root = tree.AddRoot(7);
  EXPECT_EQ(root, 0);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.node(root).domain, 7);
  EXPECT_EQ(tree.node(root).parent, kInvalidNode);
  EXPECT_EQ(tree.node(root).depth, 0);
  EXPECT_TRUE(tree.node(root).is_leaf());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_EQ(tree.LeafCount(), 1u);
}

TEST(DecompTreeTest, ChildrenTrackDepthAndParent) {
  DecompTree<std::string> tree;
  tree.AddRoot("root");
  const NodeId a = tree.AddChild(0, "a");
  const NodeId b = tree.AddChild(0, "b");
  const NodeId aa = tree.AddChild(a, "aa");
  EXPECT_EQ(tree.node(a).depth, 1);
  EXPECT_EQ(tree.node(aa).depth, 2);
  EXPECT_EQ(tree.node(aa).parent, a);
  EXPECT_FALSE(tree.node(0).is_leaf());
  EXPECT_FALSE(tree.node(a).is_leaf());
  EXPECT_TRUE(tree.node(b).is_leaf());
  EXPECT_TRUE(tree.node(aa).is_leaf());
  EXPECT_EQ(tree.Height(), 2);
}

TEST(DecompTreeTest, LeafIdsAreSortedAndComplete) {
  DecompTree<int> tree;
  tree.AddRoot(0);
  tree.AddChild(0, 1);
  tree.AddChild(0, 2);
  tree.AddChild(1, 3);
  tree.AddChild(1, 4);
  const auto leaves = tree.LeafIds();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0], 2);
  EXPECT_EQ(leaves[1], 3);
  EXPECT_EQ(leaves[2], 4);
  EXPECT_EQ(tree.LeafCount(), 3u);
}

TEST(DecompTreeTest, ChildIdsAlwaysExceedParentIds) {
  // The count-aggregation passes rely on this ordering invariant.
  DecompTree<int> tree;
  tree.AddRoot(0);
  tree.AddChild(0, 1);
  tree.AddChild(1, 2);
  tree.AddChild(0, 3);
  tree.AddChild(2, 4);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (NodeId child : tree.node(static_cast<NodeId>(i)).children) {
      EXPECT_GT(child, static_cast<NodeId>(i));
    }
  }
}

TEST(DecompTreeDeathTest, DoubleRootAborts) {
  DecompTree<int> tree;
  tree.AddRoot(1);
  EXPECT_DEATH(tree.AddRoot(2), "PRIVTREE_CHECK");
}

TEST(DecompTreeDeathTest, BadParentAborts) {
  DecompTree<int> tree;
  tree.AddRoot(1);
  EXPECT_DEATH(tree.AddChild(5, 2), "PRIVTREE_CHECK");
  EXPECT_DEATH(tree.node(9), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
