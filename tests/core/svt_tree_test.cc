#include "core/svt_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dp/rng.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "spatial/svt_histogram.h"
#include "tests/core/test_policy.h"

namespace privtree {
namespace {

std::vector<double> UniformData(std::size_t n, Rng& rng) {
  std::vector<double> data(n);
  for (auto& x : data) x = rng.NextDouble();
  return data;
}

TEST(SvtTreeParamsTest, ForEpsilonMatchesLemmaA1) {
  const auto params = SvtTreeParams::ForEpsilon(0.5, 32);
  EXPECT_DOUBLE_EQ(params.lambda, 4.0);
  EXPECT_EQ(params.t, 32);
  const auto scaled = SvtTreeParams::ForEpsilon(0.5, 32, 10.0);
  EXPECT_DOUBLE_EQ(scaled.lambda, 40.0);
}

TEST(SvtTreeTest, SplitCapIsRespected) {
  Rng rng(1);
  IntervalPolicy policy(UniformData(1000000, rng));
  auto params = SvtTreeParams::ForEpsilon(10.0, 5);
  int max_internal = 0;
  for (int rep = 0; rep < 10; ++rep) {
    const auto tree = RunSvtTree(policy, params, rng);
    const int internal =
        static_cast<int>(tree.size() - tree.LeafCount());
    max_internal = std::max(max_internal, internal);
  }
  EXPECT_LE(max_internal, 5);
}

TEST(SvtTreeTest, DenseDataSplitsUpToTheCap) {
  Rng rng(2);
  IntervalPolicy policy(UniformData(1000000, rng));
  // Huge budget: decisions are near-exact; every visited dense node splits
  // until the cap is exhausted.
  const auto params = SvtTreeParams::ForEpsilon(100.0, 7);
  const auto tree = RunSvtTree(policy, params, rng);
  EXPECT_EQ(tree.size() - tree.LeafCount(), 7u);
}

TEST(SvtTreeTest, EmptyDataRarelySplits) {
  Rng rng(3);
  IntervalPolicy policy({});
  auto params = SvtTreeParams::ForEpsilon(1.0, 4);
  params.theta = 100.0;
  int split_reps = 0;
  for (int rep = 0; rep < 30; ++rep) {
    if (RunSvtTree(policy, params, rng).size() > 1) ++split_reps;
  }
  EXPECT_LT(split_reps, 8);
}

TEST(SvtHistogramTest, ProducesFiniteAnswers) {
  Rng rng(4);
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 20000; ++i) {
    p[0] = 0.2 + 0.1 * rng.NextDouble();
    p[1] = 0.6 + 0.1 * rng.NextDouble();
    points.Add(p);
  }
  const auto hist =
      BuildSvtTreeHistogram(points, Box::UnitCube(2), 1.0, {}, rng);
  EXPECT_GE(hist.tree.size(), 1u);
  EXPECT_NEAR(hist.Query(Box::UnitCube(2)), 20000.0, 4000.0);
}

TEST(SvtHistogramTest, PrivTreeBeatsSvtTreeOnSkewedWorkloads) {
  // The Appendix A conclusion as a unit test: over a medium-query
  // workload on multi-cluster data, PrivTree's constant-noise splits beat
  // the SVT tree at every cap t (a single query can occasionally favour
  // SVT when its split budget happens to chase exactly that region, so a
  // workload-level comparison is the meaningful one).
  Rng rng(5);
  PointSet points(2);
  double p[2];
  for (int i = 0; i < 100000; ++i) {
    const double mode = rng.NextDouble();
    if (mode < 0.4) {
      p[0] = 0.3 + 0.01 * rng.NextDouble();
      p[1] = 0.3 + 0.01 * rng.NextDouble();
    } else if (mode < 0.8) {
      p[0] = 0.7 + 0.03 * rng.NextDouble();
      p[1] = 0.2 + 0.03 * rng.NextDouble();
    } else {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
    }
    points.Add(p);
  }
  const Box domain = Box::UnitCube(2);
  const auto queries = GenerateRangeQueries(domain, 100, kMediumQueries, rng);
  const auto exact = ExactAnswers(queries, points);
  double privtree_error = 0.0, svt_error = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto pt = BuildPrivTreeHistogram(points, domain, 0.4, {}, rng);
    privtree_error += MeanRelativeError(
        queries, exact, [&](const Box& q) { return pt.Query(q); },
        points.size());
    const auto svt = BuildSvtTreeHistogram(points, domain, 0.4, {}, rng);
    svt_error += MeanRelativeError(
        queries, exact, [&](const Box& q) { return svt.Query(q); },
        points.size());
  }
  EXPECT_LT(privtree_error, svt_error);
}

TEST(SvtTreeDeathTest, InvalidParamsAbort) {
  EXPECT_DEATH(SvtTreeParams::ForEpsilon(0.0, 4), "PRIVTREE_CHECK");
  EXPECT_DEATH(SvtTreeParams::ForEpsilon(1.0, 0), "PRIVTREE_CHECK");
}

}  // namespace
}  // namespace privtree
