// The envelope compression primitives (core/codec.h): exact round-trips
// over adversarial value shapes, canonical (deterministic) encodings, and
// total decoders — every malformed input returns false instead of reading
// out of bounds or trusting a lying length.
#include "core/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dp/rng.h"

namespace privtree {
namespace {

// ── PackDeltaI32 / UnpackDeltaI32 ──────────────────────────────────────────

TEST(DeltaI32Test, RoundTripsRepresentativeShapes) {
  const std::vector<std::vector<std::int32_t>> cases = {
      {},                                   // Empty.
      {0},                                  // Single zero.
      {-1},                                 // Single negative (root parent).
      {42},                                 //
      {0, 0, 0, 0, 0, 0, 0},                // Constant.
      {-1, 0, 0, 1, 1, 2, 2, 3},            // A parent-link array.
      {5, 4, 3, 2, 1, 0, -1, -2},           // Descending (negative deltas).
      {std::numeric_limits<std::int32_t>::min(),
       std::numeric_limits<std::int32_t>::max(), 0,
       std::numeric_limits<std::int32_t>::min()},  // Extreme swings.
  };
  for (const auto& values : cases) {
    const std::string packed = PackDeltaI32(values);
    std::vector<std::int32_t> got;
    ASSERT_TRUE(UnpackDeltaI32(packed, values.size(), &got))
        << "n=" << values.size();
    EXPECT_EQ(got, values);
  }
}

TEST(DeltaI32Test, RoundTripsRandomArraysAcrossBlockBoundaries) {
  Rng rng(0xC0DEC);
  // Sizes straddling the 128-value block boundary, plus a multi-block one.
  for (const std::size_t n : {1u, 127u, 128u, 129u, 255u, 256u, 1000u}) {
    std::vector<std::int32_t> values(n);
    std::int32_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      // Mostly small deltas (the parent-link regime) with occasional jumps.
      const double u = rng.NextDouble();
      const std::int32_t delta =
          u < 0.9 ? static_cast<std::int32_t>(rng.NextDouble() * 8.0)
                  : static_cast<std::int32_t>(rng.NextDouble() * 1e6) - 500000;
      prev += delta;
      values[i] = prev;
    }
    const std::string packed = PackDeltaI32(values);
    std::vector<std::int32_t> got;
    ASSERT_TRUE(UnpackDeltaI32(packed, n, &got)) << "n=" << n;
    EXPECT_EQ(got, values) << "n=" << n;
  }
}

TEST(DeltaI32Test, ParentLinksCompressWellBelowRawWidth) {
  // A realistic parent array: sorted, small deltas.  Raw i32 storage is
  // 4 bytes per value; the packed form must beat 1 byte per value.
  std::vector<std::int32_t> parents;
  parents.push_back(-1);
  for (std::int32_t i = 1; i < 4096; ++i) parents.push_back((i - 1) / 4);
  const std::string packed = PackDeltaI32(parents);
  EXPECT_LT(packed.size(), parents.size());
}

TEST(DeltaI32Test, EncodingIsDeterministic) {
  const std::vector<std::int32_t> values = {-1, 0, 0, 1, 2, 2, 5};
  EXPECT_EQ(PackDeltaI32(values), PackDeltaI32(values));
}

TEST(DeltaI32Test, RejectsMalformedInput) {
  // Deltas wide enough (>1 byte each) that a lying element count changes
  // the byte footprint — sub-byte slack would make n-1 undetectable.
  const std::vector<std::int32_t> values = {-1, 300, 1, 1, 2, 3, 3, 7};
  const std::string packed = PackDeltaI32(values);
  std::vector<std::int32_t> out;
  // Truncation at every prefix length must fail (n > 0 needs bytes).
  for (std::size_t cut = 0; cut < packed.size(); ++cut) {
    EXPECT_FALSE(UnpackDeltaI32(packed.substr(0, cut), values.size(), &out))
        << "cut=" << cut;
  }
  // Trailing garbage is not silently ignored.
  EXPECT_FALSE(UnpackDeltaI32(packed + std::string(1, '\0'), values.size(),
                              &out));
  // A lying element count fails both ways.
  EXPECT_FALSE(UnpackDeltaI32(packed, values.size() + 1, &out));
  EXPECT_FALSE(UnpackDeltaI32(packed, values.size() - 1, &out));
  // An impossible bit width in the block header (> 32) fails.
  std::string bad_width = packed;
  bad_width[0] = static_cast<char>(33);
  EXPECT_FALSE(UnpackDeltaI32(bad_width, values.size(), &out));
  // Empty input round-trips only for n = 0.
  EXPECT_TRUE(UnpackDeltaI32("", 0, &out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(UnpackDeltaI32("", 1, &out));
}

// ── PackVarintGB / UnpackVarintGB ──────────────────────────────────────────

TEST(VarintGBTest, RoundTripsRepresentativeShapes) {
  const std::vector<std::vector<std::uint64_t>> cases = {
      {},
      {0},
      {1, 2, 3},                                  // Partial final group.
      {0, 255, 256, 65535},                       // Width-1/2 boundaries.
      {65536, 1u << 31, (1ull << 32) - 1},        // Width-4 boundary.
      {1ull << 32, 1ull << 63,
       std::numeric_limits<std::uint64_t>::max()},  // Width 8.
      {7, 7, 7, 7, 7, 7, 7, 7, 7},                // Multiple groups.
  };
  for (const auto& values : cases) {
    const std::string packed = PackVarintGB(values);
    std::vector<std::uint64_t> got;
    ASSERT_TRUE(UnpackVarintGB(packed, values.size(), &got))
        << "n=" << values.size();
    EXPECT_EQ(got, values);
  }
}

TEST(VarintGBTest, RoundTripsRandomArrays) {
  Rng rng(0x6B);
  for (const std::size_t n : {1u, 3u, 4u, 5u, 100u, 1024u}) {
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) {
      // Spread across all four width classes.
      const double u = rng.NextDouble();
      const unsigned shift = u < 0.25 ? 7 : u < 0.5 ? 15 : u < 0.75 ? 31 : 63;
      v = static_cast<std::uint64_t>(rng.NextDouble() *
                                     static_cast<double>(1ull << shift));
    }
    const std::string packed = PackVarintGB(values);
    std::vector<std::uint64_t> got;
    ASSERT_TRUE(UnpackVarintGB(packed, n, &got)) << "n=" << n;
    EXPECT_EQ(got, values) << "n=" << n;
  }
}

TEST(VarintGBTest, SmallValuesCompressToOneBytePlusControl) {
  // 4 small values = 1 control byte + 4 data bytes, vs 32 raw bytes.
  const std::vector<std::uint64_t> values = {3, 250, 17, 0};
  EXPECT_EQ(PackVarintGB(values).size(), 5u);
}

TEST(VarintGBTest, RejectsMalformedInput) {
  const std::vector<std::uint64_t> values = {1, 300, 70000, 5000000000ull, 9};
  const std::string packed = PackVarintGB(values);
  std::vector<std::uint64_t> out;
  for (std::size_t cut = 0; cut < packed.size(); ++cut) {
    EXPECT_FALSE(UnpackVarintGB(packed.substr(0, cut), values.size(), &out))
        << "cut=" << cut;
  }
  EXPECT_FALSE(UnpackVarintGB(packed + std::string(1, '\0'), values.size(),
                              &out));
  EXPECT_FALSE(UnpackVarintGB(packed, values.size() + 1, &out));
  EXPECT_FALSE(UnpackVarintGB(packed, values.size() - 1, &out));
  EXPECT_TRUE(UnpackVarintGB("", 0, &out));
  EXPECT_FALSE(UnpackVarintGB("", 1, &out));
}

// ── BitWriter / BitReader ──────────────────────────────────────────────────

TEST(BitStreamTest, RoundTripsMixedWidths) {
  std::string buffer;
  BitWriter writer(&buffer);
  // The envelope's real use is 2-bit codes; mix widths to stress carries.
  const std::vector<std::pair<std::uint32_t, unsigned>> fields = {
      {0b10, 2},  {0b01, 2}, {0b11, 2}, {0, 2},       {0x5, 3},
      {0x1ff, 9}, {1, 1},    {0x7f, 7}, {0xdead, 16}, {0xffffffffu, 32},
  };
  for (const auto& [v, bits] : fields) writer.Put(v, bits);
  writer.Finish();

  BitReader reader(buffer);
  for (const auto& [want, bits] : fields) {
    std::uint32_t got = 0;
    ASSERT_TRUE(reader.Get(bits, &got)) << "bits=" << bits;
    EXPECT_EQ(got, want) << "bits=" << bits;
  }
  // The stream is exhausted up to zero padding: a full extra byte is gone.
  std::uint32_t spare = 0;
  EXPECT_FALSE(reader.Get(8, &spare));
}

TEST(BitStreamTest, TwoBitCodesPackFourPerByte) {
  std::string buffer;
  BitWriter writer(&buffer);
  for (int i = 0; i < 8; ++i) writer.Put(static_cast<std::uint32_t>(i % 3), 2);
  writer.Finish();
  EXPECT_EQ(buffer.size(), 2u);  // 16 bits exactly.
  BitReader reader(buffer);
  for (int i = 0; i < 8; ++i) {
    std::uint32_t v = 0;
    ASSERT_TRUE(reader.Get(2, &v));
    EXPECT_EQ(v, static_cast<std::uint32_t>(i % 3));
  }
}

TEST(BitStreamTest, ReaderFailsCleanlyOnUnderflow) {
  std::string buffer;
  BitWriter writer(&buffer);
  writer.Put(0b101, 3);
  writer.Finish();
  BitReader reader(buffer);
  std::uint32_t v = 0;
  ASSERT_TRUE(reader.Get(3, &v));
  EXPECT_EQ(v, 0b101u);
  EXPECT_TRUE(reader.Get(5, &v));   // The zero padding of the final byte.
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(reader.Get(1, &v));  // Now truly empty.
}

// ── QuantizeCount ──────────────────────────────────────────────────────────

TEST(QuantizeCountTest, SnapsToGridAndKeepsExactReproducibility) {
  EXPECT_EQ(QuantizeCount(3.24, 0.5), 3.0);
  EXPECT_EQ(QuantizeCount(3.26, 0.5), 3.5);
  EXPECT_EQ(QuantizeCount(-3.26, 0.5), -3.5);
  EXPECT_EQ(QuantizeCount(0.0, 0.5), 0.0);
  // The codec's invariant: the result is bitwise multiple × quantum.
  const double quantum = 0.25;
  Rng rng(0x9);
  for (int i = 0; i < 1000; ++i) {
    const double count = (rng.NextDouble() - 0.5) * 2e6;
    const double q = QuantizeCount(count, quantum);
    const double k = std::nearbyint(q / quantum);
    EXPECT_EQ(q, k * quantum) << "count=" << count;
  }
}

TEST(QuantizeCountTest, IdentityOutsideTheContract) {
  EXPECT_EQ(QuantizeCount(3.24, 0.0), 3.24);    // Quantum off.
  EXPECT_EQ(QuantizeCount(3.24, -1.0), 3.24);   // Negative quantum.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(QuantizeCount(inf, 0.5), inf);      // Non-finite count.
  EXPECT_TRUE(std::isnan(QuantizeCount(std::nan(""), 0.5)));
  // A magnitude whose multiple index exceeds 2^53 is returned untouched.
  EXPECT_EQ(QuantizeCount(1e300, 1e-10), 1e300);
}

}  // namespace
}  // namespace privtree
