#include "core/simpletree.h"

#include <gtest/gtest.h>

#include <vector>

#include "dp/rng.h"
#include "tests/core/test_policy.h"

namespace privtree {
namespace {

std::vector<double> UniformData(std::size_t n, Rng& rng) {
  std::vector<double> data(n);
  for (auto& x : data) x = rng.NextDouble();
  return data;
}

TEST(SimpleTreeParamsTest, LambdaIsHeightOverEpsilon) {
  const auto params = SimpleTreeParams::ForEpsilon(0.5, 6);
  EXPECT_DOUBLE_EQ(params.lambda, 12.0);
  EXPECT_EQ(params.height, 6);
}

TEST(SimpleTreeParamsTest, SensitivityMultiplies) {
  const auto params = SimpleTreeParams::ForEpsilon(1.0, 4, 10.0);
  EXPECT_DOUBLE_EQ(params.lambda, 40.0);
}

TEST(SimpleTreeTest, HeightIsHardCapped) {
  Rng rng(1);
  IntervalPolicy policy(UniformData(1000000, rng));
  const auto params = SimpleTreeParams::ForEpsilon(10.0, 4);
  for (int rep = 0; rep < 5; ++rep) {
    const auto result = RunSimpleTree(policy, params, rng);
    // depth < h−1 when splitting ⇒ max node depth is h−1 = 3.
    EXPECT_LE(result.tree.Height(), 3);
  }
}

TEST(SimpleTreeTest, ReleasesNoisyScorePerNode) {
  Rng rng(2);
  IntervalPolicy policy(UniformData(10000, rng));
  const auto params = SimpleTreeParams::ForEpsilon(1.0, 3);
  const auto result = RunSimpleTree(policy, params, rng);
  ASSERT_EQ(result.noisy_score.size(), result.tree.size());
  // The root's noisy count should be near 10000 (noise scale is only 3).
  EXPECT_NEAR(result.noisy_score[0], 10000.0, 100.0);
}

TEST(SimpleTreeTest, DeepTreesRequireProportionallyMoreNoise) {
  // The dilemma of Section 3.1 made concrete: at fixed ε, raising h blows
  // up the noise scale.
  const auto h4 = SimpleTreeParams::ForEpsilon(0.5, 4);
  const auto h12 = SimpleTreeParams::ForEpsilon(0.5, 12);
  EXPECT_DOUBLE_EQ(h12.lambda / h4.lambda, 3.0);
}

TEST(SimpleTreeTest, EmptyDataRarelySplits) {
  Rng rng(3);
  IntervalPolicy policy({});
  auto params = SimpleTreeParams::ForEpsilon(1.0, 4);
  params.theta = 10.0;  // Noise scale 4, threshold 10.
  int splits = 0;
  for (int rep = 0; rep < 50; ++rep) {
    const auto result = RunSimpleTree(policy, params, rng);
    if (result.tree.size() > 1) ++splits;
  }
  // P(Lap(4) > 10) ≈ 4%; the root alone decides.
  EXPECT_LT(splits, 10);
}

TEST(SimpleTreeTest, HeightOneNeverSplits) {
  Rng rng(4);
  IntervalPolicy policy(UniformData(100000, rng));
  const auto params = SimpleTreeParams::ForEpsilon(1.0, 1);
  const auto result = RunSimpleTree(policy, params, rng);
  EXPECT_EQ(result.tree.size(), 1u);
}

}  // namespace
}  // namespace privtree
