// Property-based tests of PrivTree's theoretical guarantees, parameterized
// over data shapes and privacy budgets:
//   * Lemma 3.2:  E[|T|] <= 2·|T*| (output-size bound);
//   * empirical ε-DP of the released tree shape on a worst-case-style pair
//     of neighboring datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/privtree.h"
#include "core/privtree_params.h"
#include "dp/rng.h"
#include "tests/core/test_policy.h"

namespace privtree {
namespace {

struct SizeBoundCase {
  const char* name;
  std::size_t n;
  double epsilon;
  double cluster_center;  // < 0 means uniform data.
};

class Lemma32Test : public ::testing::TestWithParam<SizeBoundCase> {};

TEST_P(Lemma32Test, ExpectedSizeAtMostTwiceNoiseless) {
  const SizeBoundCase& config = GetParam();
  Rng data_rng(1234);
  std::vector<double> data(config.n);
  for (auto& x : data) {
    x = config.cluster_center >= 0.0
            ? config.cluster_center + 1e-4 * data_rng.NextDouble()
            : data_rng.NextDouble();
  }
  IntervalPolicy policy(std::move(data));
  const auto params = PrivTreeParams::ForEpsilon(config.epsilon, 2);
  const auto reference = RunNoiselessTree(policy, params.theta);
  if (reference.size() <= 1) GTEST_SKIP() << "Lemma requires |T*| > 1";

  Rng rng(777);
  double total = 0.0;
  constexpr int kReps = 60;
  for (int rep = 0; rep < kReps; ++rep) {
    total += static_cast<double>(RunPrivTree(policy, params, rng).size());
  }
  const double mean_size = total / kReps;
  // 2·|T*| plus Monte-Carlo slack (15%).
  EXPECT_LE(mean_size, 2.3 * static_cast<double>(reference.size()))
      << config.name << ": mean " << mean_size << " vs |T*| "
      << reference.size();
}

INSTANTIATE_TEST_SUITE_P(
    DataShapes, Lemma32Test,
    ::testing::Values(
        SizeBoundCase{"uniform_small_eps", 5000, 0.1, -1.0},
        SizeBoundCase{"uniform_large_eps", 5000, 1.6, -1.0},
        SizeBoundCase{"cluster_small_eps", 20000, 0.1, 0.37},
        SizeBoundCase{"cluster_large_eps", 20000, 1.6, 0.37},
        SizeBoundCase{"tiny_data", 50, 0.8, -1.0}),
    [](const auto& info) { return info.param.name; });

/// Empirical differential privacy of the released tree shape.  We run
/// PrivTree on neighboring datasets D (n copies of one point) and D' (n+1
/// copies) many times, histogram the released output (tree shapes, keyed by
/// the sorted multiset of (depth, leaf) signatures), and check that
/// frequency ratios stay within e^ε up to sampling slack.
struct DpCase {
  const char* name;
  double epsilon;
  std::size_t n;
};

class EmpiricalDpTest : public ::testing::TestWithParam<DpCase> {};

std::string TreeSignature(const DecompTree<Interval>& tree) {
  // Serialize structure: for each node in id order, its child count.
  std::string signature;
  signature.reserve(tree.size());
  for (const auto& node : tree.nodes()) {
    signature.push_back(static_cast<char>('0' + node.children.size()));
  }
  return signature;
}

TEST_P(EmpiricalDpTest, OutputFrequenciesWithinEpsilonBound) {
  const DpCase& config = GetParam();
  // The paths of both datasets coincide, so the released randomness is a
  // function of the per-node noisy comparisons; small n keeps the output
  // space small enough to histogram.
  IntervalPolicy policy_d(std::vector<double>(config.n, 0.7), 8);
  IntervalPolicy policy_dp(std::vector<double>(config.n + 1, 0.7), 8);
  auto params = PrivTreeParams::ForEpsilon(config.epsilon, 2);

  constexpr int kTrials = 40000;
  Rng rng(2024);
  std::map<std::string, int> counts_d, counts_dp;
  for (int trial = 0; trial < kTrials; ++trial) {
    counts_d[TreeSignature(RunPrivTree(policy_d, params, rng))]++;
    counts_dp[TreeSignature(RunPrivTree(policy_dp, params, rng))]++;
  }
  const double bound = std::exp(config.epsilon);
  for (const auto& [signature, count] : counts_d) {
    const auto it = counts_dp.find(signature);
    const int other = it == counts_dp.end() ? 0 : it->second;
    if (count < 400 || other < 400) continue;  // Too noisy to test.
    const double ratio = static_cast<double>(count) / other;
    EXPECT_LT(ratio, bound * 1.25) << config.name << " sig=" << signature;
    EXPECT_GT(ratio, 1.0 / (bound * 1.25)) << config.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, EmpiricalDpTest,
    ::testing::Values(DpCase{"eps_half_n3", 0.5, 3},
                      DpCase{"eps_one_n3", 1.0, 3},
                      DpCase{"eps_two_n8", 2.0, 8}),
    [](const auto& info) { return info.param.name; });

/// The split decision is scale-equivariant in the sense of Equation (8):
/// raising θ and the floor together shifts with it.  Check the exposed
/// behaviour: larger θ produces (stochastically) smaller trees.
TEST(PrivTreeMonotonicityTest, LargerThetaShrinksTrees) {
  Rng data_rng(5);
  std::vector<double> data(20000);
  for (auto& x : data) x = data_rng.NextDouble();
  IntervalPolicy policy(std::move(data));
  auto params_low = PrivTreeParams::ForEpsilon(0.8, 2);
  auto params_high = params_low;
  params_high.theta = 3000.0;

  Rng rng(6);
  double low_total = 0.0, high_total = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    low_total += static_cast<double>(RunPrivTree(policy, params_low, rng).size());
    high_total +=
        static_cast<double>(RunPrivTree(policy, params_high, rng).size());
  }
  EXPECT_LT(high_total, low_total);
}

}  // namespace
}  // namespace privtree
