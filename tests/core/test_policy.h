// A minimal 1-dimensional decomposition policy used by the core algorithm
// tests: the domain is the interval [0,1), split by bisection (fanout 2),
// and the score is the number of data values inside the interval.
#ifndef PRIVTREE_TESTS_CORE_TEST_POLICY_H_
#define PRIVTREE_TESTS_CORE_TEST_POLICY_H_

#include <algorithm>
#include <cmath>
#include <vector>

namespace privtree {

struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

class IntervalPolicy {
 public:
  using Domain = Interval;

  explicit IntervalPolicy(std::vector<double> data, int max_levels = 40)
      : data_(std::move(data)), max_levels_(max_levels) {
    std::sort(data_.begin(), data_.end());
  }

  Domain Root() const { return Interval{0.0, 1.0}; }

  bool CanSplit(const Domain& d) const {
    return (d.hi - d.lo) > std::ldexp(1.0, -max_levels_);
  }

  std::vector<Domain> Split(const Domain& d) const {
    const double mid = 0.5 * (d.lo + d.hi);
    return {Interval{d.lo, mid}, Interval{mid, d.hi}};
  }

  double Score(const Domain& d) const {
    const auto begin = std::lower_bound(data_.begin(), data_.end(), d.lo);
    const auto end = std::lower_bound(data_.begin(), data_.end(), d.hi);
    return static_cast<double>(end - begin);
  }

  int fanout() const { return 2; }

 private:
  std::vector<double> data_;
  int max_levels_;
};

}  // namespace privtree

#endif  // PRIVTREE_TESTS_CORE_TEST_POLICY_H_
