// Tests for the deterministic fault-injection framework (core/fault.h).
#include "core/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace privtree::fault {
namespace {

/// Every test starts and ends with a clean global injector (it is process
/// state shared with every other test in this binary).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Injector::Global().Reset(); }
  void TearDown() override { Injector::Global().Reset(); }
};

TEST_F(FaultTest, DisarmedPointsNeverFire) {
  EXPECT_FALSE(Injector::Global().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(static_cast<bool>(PRIVTREE_FAULT("spill.write")));
  }
  EXPECT_EQ(Injector::Global().StatsFor("spill.write").hits, 0u);
}

TEST_F(FaultTest, ArmedPointFiresWithItsKind) {
  Injector::Global().Arm({"socket.send", Kind::kConnReset, 1.0, 0, 0, 0});
  const Action a = PRIVTREE_FAULT("socket.send");
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(a.kind, Kind::kConnReset);
  // A different point stays silent.
  EXPECT_FALSE(static_cast<bool>(PRIVTREE_FAULT("socket.recv")));
}

TEST_F(FaultTest, AfterSkipsLeadingHitsAndCountCapsFires) {
  PointSpec spec;
  spec.point = "spill.write";
  spec.kind = Kind::kError;
  spec.after = 3;
  spec.max_triggers = 2;
  Injector::Global().Arm(spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (PRIVTREE_FAULT("spill.write")) {
      ++fired;
      // The first fire happens exactly at hit index `after`.
      EXPECT_GE(i, 3);
    }
  }
  EXPECT_EQ(fired, 2);
  const auto stats = Injector::Global().StatsFor("spill.write");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fired, 2u);
}

TEST_F(FaultTest, ProbabilityScheduleIsDeterministicInSeed) {
  const auto run = [](std::uint64_t seed) {
    Injector::Global().Reset();
    Injector::Global().SetSeed(seed);
    PointSpec spec;
    spec.point = "p";
    spec.kind = Kind::kError;
    spec.probability = 0.3;
    Injector::Global().Arm(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(static_cast<bool>(PRIVTREE_FAULT("p")));
    }
    return fires;
  };
  const std::vector<bool> a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);   // Same seed → identical schedule.
  EXPECT_NE(a, c);   // Different seed → different schedule.
  // p=0.3 over 200 draws: loosely in range, never all-or-nothing.
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 120);
}

TEST_F(FaultTest, ScheduleIsIndependentOfThreadInterleaving) {
  // With `after` picking exactly hit indices [10, 20) of one point, every
  // run fires exactly 10 times no matter how threads interleave: the hit
  // counter serializes per point.
  PointSpec spec;
  spec.point = "t";
  spec.kind = Kind::kError;
  spec.after = 10;
  spec.max_triggers = 10;
  Injector::Global().Arm(spec);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (PRIVTREE_FAULT("t")) fired.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 10);
  EXPECT_EQ(Injector::Global().StatsFor("t").hits, 400u);
}

TEST_F(FaultTest, SpecStringParsesAllFields) {
  ASSERT_TRUE(Injector::Global()
                  .ArmFromSpec("spill.write=partial:p=0.5:after=2:count=3;"
                               "socket.recv=delay:delay=120")
                  .ok());
  EXPECT_TRUE(Injector::Global().armed());
  // Fire the delay point and inspect the action (no sleep taken here).
  const Action a = Injector::Global().Hit("socket.recv");
  EXPECT_EQ(a.kind, Kind::kDelay);
  EXPECT_EQ(a.delay_millis, 120);
  // First two spill hits are skipped by after=2.
  EXPECT_FALSE(static_cast<bool>(Injector::Global().Hit("spill.write")));
  EXPECT_FALSE(static_cast<bool>(Injector::Global().Hit("spill.write")));
}

TEST_F(FaultTest, MalformedSpecsArmNothing) {
  EXPECT_FALSE(Injector::Global().ArmFromSpec("nokind").ok());
  EXPECT_FALSE(Injector::Global().ArmFromSpec("x=frobnicate").ok());
  EXPECT_FALSE(Injector::Global().ArmFromSpec("x=error:p=banana").ok());
  EXPECT_FALSE(Injector::Global().ArmFromSpec("x=error:p=2.0").ok());
  EXPECT_FALSE(Injector::Global().ArmFromSpec("x=error:bogus=1").ok());
  EXPECT_FALSE(Injector::Global().armed());
}

TEST_F(FaultTest, DelayActionSleepsButDoesNotFail) {
  Action delay{Kind::kDelay, 1};
  EXPECT_FALSE(delay.MaybeSleep());  // Not a failure once slept.
  Action error{Kind::kError, 0};
  EXPECT_TRUE(error.MaybeSleep());   // Errors still demand failure.
  EXPECT_EQ(error.ToStatus("x").code(), StatusCode::kIOError);
}

TEST_F(FaultTest, DisarmAndResetClearState) {
  Injector::Global().Arm({"a", Kind::kError, 1.0, 0, 0, 0});
  Injector::Global().Arm({"b", Kind::kError, 1.0, 0, 0, 0});
  EXPECT_TRUE(static_cast<bool>(Injector::Global().Hit("a")));
  Injector::Global().Disarm("a");
  EXPECT_FALSE(static_cast<bool>(Injector::Global().Hit("a")));
  EXPECT_TRUE(Injector::Global().armed());  // "b" still armed.
  Injector::Global().Reset();
  EXPECT_FALSE(Injector::Global().armed());
  EXPECT_EQ(Injector::Global().AllStats().size(), 0u);
}

}  // namespace
}  // namespace privtree::fault
